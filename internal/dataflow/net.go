// Multi-process execution: the network edge plane.
//
// A NetPlane extends one in-process execution into a slice of a cluster run.
// Placement is component-granular — every task of a component lives on the
// same worker — which keeps both control planes' envelope traffic (adaptive
// barriers and migrations, recovery kills and restores) process-local: the
// manager goroutine of a protected component runs on the worker hosting it,
// peers exchange state through ordinary inboxes, and only *data* envelopes
// (batches, frames, singles, EOS) ever cross a socket. What the control
// planes need from remote workers is a small RPC set carried on the same
// connections: gate pause/resume, quiesce tokens that flush in-flight data
// ahead of control markers, replay requests against remote producers' replay
// buffers, trim commits, and abort propagation.
//
// Flow control replaces channel blocking with per-(destination task) credit
// windows: a producer acquires one credit per envelope before writing, the
// receiving plane grants credits back as envelopes drain out of its staging
// queues into task inboxes. Readers never block on inboxes — each link has a
// single read loop that stages inbound envelopes and returns immediately, so
// credit grants and control RPCs can never deadlock behind a slow consumer.
package dataflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"squall/internal/adaptive"
	"squall/internal/recovery"
	"squall/internal/transport"
	"squall/internal/wire"
)

// ErrLink marks a run failure caused by cluster infrastructure — a lost or
// corrupted link, a peer-loss declaration, or an abort relayed from a worker
// that itself failed on infrastructure — rather than by the job. The cluster
// layer retries or recovers failures carrying this sentinel; anything else
// (an operator error, a bad plan) is permanent and escalates as-is.
var ErrLink = errors.New("cluster infrastructure failure")

// Dataflow-plane message kinds (all below transport.KindUser; kind 1 is the
// transport handshake).
const (
	mkFrame      byte = 2  // packed batch frame        A=node B=task C=from D=seq
	mkBatch      byte = 3  // encoded tuple batch       A=node B=task C=from D=seq
	mkSingle     byte = 4  // one encoded tuple         A=node B=task C=from D=seq
	mkEOS        byte = 5  // end of stream             A=node B=task C=from
	mkCredit     byte = 6  // flow-control grant        A=node B=task C=count
	mkAbort      byte = 7  // run failed here           Payload=error text
	mkGatePause  byte = 8  // close a producer gate     A=plane
	mkGatePaused byte = 9  // gate closed ack           A=plane C=local live count
	mkGateResume byte = 10 // reopen a producer gate    A=plane B=rows C=cols
	mkSendToken  byte = 11 // flush your sends to A/B   A=node B=task C=token id
	mkToken      byte = 12 // flush token (data path)   A=node B=task C=token id
	mkReplayReq  byte = 13 // replay retained input     Payload=replayReq JSON
	mkTrim       byte = 14 // checkpoint trim commit    Payload=trimMsg JSON
)

// Gate planes addressed by mkGatePause/mkGateResume.
const (
	planeAdapt = 0
	planeRec   = 1
)

// replayReq asks a worker to re-deliver the retained input of its hosted
// producers to a recovering task, filtered past the checkpoint cursors, then
// emit the flush token on the data path.
type replayReq struct {
	Node    string             // protected component
	Victim  int                // recovering task
	Token   int64              // flush token id
	Streams map[string][]int64 // producer component -> per-task checkpoint cursor
}

// trimMsg carries a checkpoint commit to remote producers so their replay
// buffers can drop everything the checkpoint already covers.
type trimMsg struct {
	Task    int
	Cursors map[string][]int64
}

// NetConfig describes one process's slice of a cluster run.
type NetConfig struct {
	Self    int            // this process's worker index
	Workers int            // total processes
	Place   map[string]int // component name -> hosting worker (missing = 0)
	// Links[w] is the connection to worker w (nil at Self). The plane owns
	// reading from every link from construction on; writes stay shared with
	// the session layer (transport.Conn serializes them).
	Links []*transport.Conn
	// OnPeerMsg receives session-layer messages (Kind >= transport.KindUser)
	// on the link's read goroutine. The payload is copied.
	OnPeerMsg func(from int, m transport.Msg)
}

// gateOp is one ordered pause/resume request against a local producer gate.
type gateOp struct {
	pause      bool
	rows, cols int
}

type stageKey struct {
	node int
	task int
}

// stagedEnv is one inbound envelope parked between the link read loop and the
// destination inbox. credited entries consumed a sender credit that the pump
// grants back once the envelope moves on.
type stagedEnv struct {
	env      envelope
	lk       *netLink
	flow     int64
	credited bool
}

// staging is the per-(node, task) queue the read loops append to and one pump
// goroutine drains into the task inbox. The queue is unbounded but its depth
// is capped by the credit windows: at most window entries per producing flow
// are un-granted at any moment.
type staging struct {
	node *node
	task int
	mu   sync.Mutex
	q    []stagedEnv
	wake chan struct{}
}

// netLink is the plane's per-connection state.
type netLink struct {
	worker  int
	conn    *transport.Conn
	credMu  sync.Mutex
	creds   map[int64]*transport.Credit // sender-side windows, keyed by flow
	dec     wire.BatchDecoder           // read-loop-owned batch decoder
	gateOps [2]chan gateOp
}

func flowKey(node, task int) int64 { return int64(node)<<32 | int64(task) }

// credit returns the sender-side window for one (destination node, task)
// flow on this link, creating it on first use.
func (lk *netLink) credit(flow int64, window int) *transport.Credit {
	lk.credMu.Lock()
	c := lk.creds[flow]
	if c == nil {
		c = transport.NewCredit(window)
		lk.creds[flow] = c
	}
	lk.credMu.Unlock()
	return c
}

// NetPlane is the network edge transport of one process in a cluster run.
// Create it with NewNetPlane once the links are established, pass it in
// Options.Net, and Shut it down after the session's completion exchange.
type NetPlane struct {
	cfg   NetConfig
	links []*netLink // indexed by worker, nil at Self

	mu       sync.Mutex
	ex       *execution
	preErr   error
	pending  []pendMsg
	nodeIdx  map[string]int
	nodes    []*node
	stagings map[stageKey]*staging
	window   int // credit window, = Options.ChannelBuf
	quantum  int // batched grant threshold

	tokMu   sync.Mutex
	tokNext int64
	tokWait map[int64]chan struct{}

	gateAcks [2]chan int64

	closed    chan struct{}
	closeOnce sync.Once
}

type pendMsg struct {
	lk *netLink
	m  transport.Msg
}

// NewNetPlane starts the read loops over cfg.Links. Envelope delivery begins
// when a Run binds the plane (messages arriving earlier are parked).
func NewNetPlane(cfg NetConfig) *NetPlane {
	p := &NetPlane{
		cfg:     cfg,
		links:   make([]*netLink, len(cfg.Links)),
		tokWait: make(map[int64]chan struct{}),
		closed:  make(chan struct{}),
	}
	for i := range p.gateAcks {
		p.gateAcks[i] = make(chan int64, cfg.Workers)
	}
	for w, c := range cfg.Links {
		if c == nil {
			continue
		}
		lk := &netLink{worker: w, conn: c, creds: make(map[int64]*transport.Credit)}
		for i := range lk.gateOps {
			lk.gateOps[i] = make(chan gateOp, 8)
		}
		p.links[w] = lk
		go p.readLoop(lk)
	}
	return p
}

// Shutdown marks the session complete: subsequent link EOFs are a clean
// teardown, not a worker failure. It does not close the connections — the
// session layer owns those.
func (p *NetPlane) Shutdown() {
	p.closeOnce.Do(func() { close(p.closed) })
}

func (p *NetPlane) workerOf(comp string) int {
	if w, ok := p.cfg.Place[comp]; ok {
		return w
	}
	return 0
}

func (p *NetPlane) owns(n *node) bool      { return p.workerOf(n.name) == p.cfg.Self }
func (p *NetPlane) ownsName(c string) bool { return p.workerOf(c) == p.cfg.Self }

func (p *NetPlane) nodeAt(i int) *node {
	if i < 0 || i >= len(p.nodes) {
		return nil
	}
	return p.nodes[i]
}

// fail aborts the bound execution (or poisons the pending bind).
func (p *NetPlane) fail(err error) {
	p.mu.Lock()
	ex := p.ex
	if ex == nil {
		if p.preErr == nil {
			p.preErr = err
		}
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	ex.fail(err)
}

// broadcastAbort tells every peer the run failed here. Write errors are
// ignored: a dead link's worker learns of the failure from the EOF instead.
func (p *NetPlane) broadcastAbort(err error) {
	var infra int64
	if errors.Is(err, ErrLink) || errors.Is(err, transport.ErrPeerLost) {
		infra = 1
	}
	m := transport.Msg{Kind: mkAbort, A: infra, Payload: []byte(err.Error())}
	for _, lk := range p.links {
		if lk != nil {
			_ = lk.conn.WriteMsg(&m)
		}
	}
}

// bind attaches an execution to the plane: builds the node index, spins up
// staging pumps for locally hosted tasks and the gate workers, then drains
// messages that arrived before the run started.
func (p *NetPlane) bind(ex *execution) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ex != nil {
		return fmt.Errorf("dataflow: NetPlane already bound to a run")
	}
	if p.preErr != nil {
		return p.preErr
	}
	p.ex = ex
	p.window = ex.opts.ChannelBuf
	p.quantum = p.window / 4
	if p.quantum < 1 {
		p.quantum = 1
	}
	p.nodes = ex.topo.nodes
	p.nodeIdx = make(map[string]int, len(p.nodes))
	for i, n := range p.nodes {
		p.nodeIdx[n.name] = i
	}
	p.stagings = make(map[stageKey]*staging)
	for i, n := range p.nodes {
		if !p.owns(n) {
			continue
		}
		for t := 0; t < n.par; t++ {
			s := &staging{node: n, task: t, wake: make(chan struct{}, 1)}
			p.stagings[stageKey{i, t}] = s
			go p.pump(s)
		}
	}
	for _, lk := range p.links {
		if lk == nil {
			continue
		}
		go p.gateWorker(lk, planeAdapt)
		go p.gateWorker(lk, planeRec)
	}
	// Drain parked messages under the lock: a read loop observing ex != nil
	// is thereby guaranteed the backlog has already been handled, preserving
	// per-link arrival order.
	for i := range p.pending {
		p.handle(p.pending[i].lk, &p.pending[i].m)
	}
	p.pending = nil
	return nil
}

func (p *NetPlane) readLoop(lk *netLink) {
	var m transport.Msg
	for {
		if err := lk.conn.ReadMsg(&m); err != nil {
			select {
			case <-p.closed:
			default:
				p.fail(fmt.Errorf("dataflow: link to worker %d lost: %w (%w)", lk.worker, err, ErrLink))
			}
			return
		}
		p.mu.Lock()
		if p.ex == nil {
			c := m
			c.Payload = append([]byte(nil), m.Payload...)
			p.pending = append(p.pending, pendMsg{lk, c})
			p.mu.Unlock()
			continue
		}
		p.mu.Unlock()
		p.handle(lk, &m)
	}
}

// handle dispatches one inbound message on the link's read goroutine. It must
// never block on a task inbox — data lands in staging queues, RPCs complete
// inline or hand off to dedicated goroutines.
func (p *NetPlane) handle(lk *netLink, m *transport.Msg) {
	if m.Kind >= transport.KindUser {
		if p.cfg.OnPeerMsg != nil {
			c := *m
			c.Payload = append([]byte(nil), m.Payload...)
			p.cfg.OnPeerMsg(lk.worker, c)
		}
		return
	}
	switch m.Kind {
	case mkCredit:
		lk.credit(flowKey(int(m.A), int(m.B)), p.window).Grant(int(m.C))
	case mkFrame, mkBatch, mkSingle, mkEOS:
		p.recvData(lk, m)
	case mkToken:
		// A flush token rides the data path: staged behind every data message
		// this link delivered to (A, B), seen by the task as ctrlNetFlush.
		n := p.nodeAt(int(m.A))
		if n == nil || !p.owns(n) {
			p.fail(fmt.Errorf("dataflow: worker %d sent a flush token for a component not hosted here", lk.worker))
			return
		}
		p.stage(lk, int(m.A), int(m.B), envelope{ctrl: ctrlNetFlush, seq: m.C}, 0, false)
	case mkSendToken:
		// The owner of (A, B) asks us to flush: reply with a token on the same
		// connection, ordered after every data message already written to it.
		// Producer gates are paused at this point, so no write races the token.
		if err := lk.conn.WriteMsg(&transport.Msg{Kind: mkToken, A: m.A, B: m.B, C: m.C}); err != nil {
			p.fail(fmt.Errorf("dataflow: flush token to worker %d: %w", lk.worker, err))
		}
	case mkGatePause:
		p.gateRequest(lk, int(m.A), gateOp{pause: true})
	case mkGateResume:
		p.gateRequest(lk, int(m.A), gateOp{rows: int(m.B), cols: int(m.C)})
	case mkGatePaused:
		if m.A != planeAdapt && m.A != planeRec {
			p.fail(fmt.Errorf("dataflow: worker %d acked an unknown gate plane %d", lk.worker, m.A))
			return
		}
		p.gateAcks[m.A] <- m.C // cap = Workers: never blocks the read loop
	case mkReplayReq:
		var req replayReq
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			p.fail(fmt.Errorf("dataflow: worker %d sent a bad replay request: %w", lk.worker, err))
			return
		}
		go p.serveReplay(lk, req)
	case mkTrim:
		var tr trimMsg
		if err := json.Unmarshal(m.Payload, &tr); err != nil {
			p.fail(fmt.Errorf("dataflow: worker %d sent a bad trim commit: %w", lk.worker, err))
			return
		}
		if p.ex.rec != nil {
			p.ex.rec.commitTrims(tr.Task, tr.Cursors)
		}
	case mkAbort:
		err := fmt.Errorf("dataflow: run aborted by worker %d: %s", lk.worker, m.Payload)
		if m.A == 1 {
			// The worker failed on infrastructure, not on the job: keep the
			// classification so the coordinator's policy can act on it.
			err = fmt.Errorf("%w (%w)", err, ErrLink)
		}
		p.fail(err)
	default:
		p.fail(fmt.Errorf("dataflow: worker %d sent unknown message kind %d", lk.worker, m.Kind))
	}
}

func (p *NetPlane) gateRequest(lk *netLink, plane int, op gateOp) {
	if plane != planeAdapt && plane != planeRec {
		p.fail(fmt.Errorf("dataflow: worker %d addressed unknown gate plane %d", lk.worker, plane))
		return
	}
	select {
	case lk.gateOps[plane] <- op:
	case <-p.closed:
	}
}

// recvData admits one data message into the local staging queues. Frames get
// the full untrusted-bytes admission check; payloads on recovery-tracked
// edges (seq > 0) are copied into unpooled buffers because the consumer's
// stash or dedup may retain them, everything else recycles pool boxes exactly
// like the in-process transport.
func (p *NetPlane) recvData(lk *netLink, m *transport.Msg) {
	ni, task := int(m.A), int(m.B)
	n := p.nodeAt(ni)
	if n == nil || task < 0 || task >= n.par || !p.owns(n) {
		p.fail(fmt.Errorf("dataflow: worker %d sent data for a task not hosted here (node %d task %d)", lk.worker, ni, task))
		return
	}
	env := envelope{stream: m.Stream, from: int(m.C), seq: m.D}
	switch m.Kind {
	case mkEOS:
		env.eos = true
	case mkFrame:
		cnt, err := wire.ValidateBatchFrame(m.Payload)
		if err != nil {
			p.fail(fmt.Errorf("dataflow: worker %d sent a malformed frame for %s[%d]: %w", lk.worker, n.name, task, err))
			return
		}
		env.count = cnt
		if env.seq > 0 {
			env.frame = append([]byte(nil), m.Payload...)
		} else {
			box := getFrameBox()
			*box = append((*box)[:0], m.Payload...)
			env.frame, env.pframe = *box, box
		}
	case mkSingle:
		t, _, err := wire.Decode(m.Payload)
		if err != nil {
			p.fail(fmt.Errorf("dataflow: worker %d sent a malformed tuple for %s[%d]: %w", lk.worker, n.name, task, err))
			return
		}
		env.single = t
	case mkBatch:
		if env.seq > 0 {
			t, _, err := lk.dec.Decode(m.Payload)
			if err != nil {
				p.fail(fmt.Errorf("dataflow: worker %d sent a malformed batch for %s[%d]: %w", lk.worker, n.name, task, err))
				return
			}
			env.batch = t
		} else {
			box := getBatchBox()
			t, _, err := lk.dec.DecodeReuse(m.Payload, (*box)[:0])
			if err != nil {
				putBatchBox(box)
				p.fail(fmt.Errorf("dataflow: worker %d sent a malformed batch for %s[%d]: %w", lk.worker, n.name, task, err))
				return
			}
			env.batch, env.pbatch = t, box
		}
	}
	// Every data message (EOS included) consumed one sender credit.
	p.stage(lk, ni, task, env, flowKey(ni, task), true)
}

// stage parks one envelope for the (node, task) pump.
func (p *NetPlane) stage(lk *netLink, ni, task int, env envelope, flow int64, credited bool) {
	s := p.stagings[stageKey{ni, task}]
	if s == nil {
		p.fail(fmt.Errorf("dataflow: no staging for node %d task %d", ni, task))
		return
	}
	s.mu.Lock()
	s.q = append(s.q, stagedEnv{env: env, lk: lk, flow: flow, credited: credited})
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves one staging queue into its task inbox, granting credits back in
// batches: a grant goes out once a flow accumulates quantum deliveries, and
// every owed grant is flushed whenever the queue runs dry, so a sender can
// never starve waiting on a withheld grant.
func (p *NetPlane) pump(s *staging) {
	type gk struct {
		lk   *netLink
		flow int64
	}
	owed := make(map[gk]int)
	flush := func() {
		for k, cnt := range owed {
			p.sendCredit(k.lk, k.flow, cnt)
		}
		clear(owed)
	}
	for {
		s.mu.Lock()
		if len(s.q) == 0 {
			s.mu.Unlock()
			flush()
			select {
			case <-s.wake:
				continue
			case <-p.closed:
				return
			case <-p.ex.abort:
				return
			}
		}
		e := s.q[0]
		s.q[0] = stagedEnv{}
		s.q = s.q[1:]
		s.mu.Unlock()
		if !p.ex.send(s.node, s.task, e.env) {
			return // aborted
		}
		if e.credited {
			k := gk{e.lk, e.flow}
			owed[k]++
			if owed[k] >= p.quantum {
				p.sendCredit(e.lk, e.flow, owed[k])
				delete(owed, k)
			}
		}
	}
}

func (p *NetPlane) sendCredit(lk *netLink, flow int64, n int) {
	m := transport.Msg{Kind: mkCredit, A: flow >> 32, B: flow & (1<<32 - 1), C: int64(n)}
	if err := lk.conn.WriteMsg(&m); err != nil {
		p.fail(fmt.Errorf("dataflow: credit grant to worker %d: %w", lk.worker, err))
	}
}

// sendRemote ships one data envelope to the worker hosting its destination.
// It blocks on the flow's credit window (the cross-process equivalent of a
// full inbox), serializes batch payloads through a pooled scratch buffer, and
// recycles the envelope's pool boxes once the bytes are on the wire.
func (p *NetPlane) sendRemote(to *node, task int, env envelope) bool {
	if env.ctrl != ctrlNone || env.rec != nil || env.mig != nil || env.cmd != nil {
		p.fail(fmt.Errorf("dataflow: control envelope for %s[%d] would cross a process boundary (placement bug)", to.name, task))
		return false
	}
	ni := p.nodeIdx[to.name]
	lk := p.links[p.workerOf(to.name)]
	if lk == nil {
		p.fail(fmt.Errorf("dataflow: no link to worker %d hosting %s", p.workerOf(to.name), to.name))
		return false
	}
	if !lk.credit(flowKey(ni, task), p.window).Acquire(p.ex.abort) {
		return false
	}
	m := transport.Msg{Stream: env.stream, A: int64(ni), B: int64(task), C: int64(env.from), D: env.seq}
	var scratch *[]byte
	switch {
	case env.eos:
		m.Kind = mkEOS
	case env.frame != nil:
		m.Kind = mkFrame
		m.Payload = env.frame
	case env.batch != nil:
		m.Kind = mkBatch
		scratch = getFrameBox()
		m.Payload = wire.EncodeBatch((*scratch)[:0], env.batch)
	default:
		m.Kind = mkSingle
		scratch = getFrameBox()
		m.Payload = wire.Encode((*scratch)[:0], env.single)
	}
	err := lk.conn.WriteMsg(&m)
	if scratch != nil {
		*scratch = m.Payload[:0]
		putFrameBox(scratch)
	}
	if err != nil {
		p.fail(fmt.Errorf("dataflow: send to %s[%d] on worker %d: %w", to.name, task, lk.worker, err))
		return false
	}
	// The payload is on the wire; recycle the boxes the local consumer would
	// have returned.
	releaseEnv(&env)
	return true
}

// gateWorker applies one link's pause/resume requests against the local
// producer gates in arrival order, acking pauses with the local live count
// (the adaptive controller sums these into its cluster-wide early-out check).
func (p *NetPlane) gateWorker(lk *netLink, plane int) {
	for {
		var op gateOp
		select {
		case op = <-lk.gateOps[plane]:
		case <-p.closed:
			return
		}
		switch {
		case plane == planeAdapt && p.ex.adapt == nil, plane == planeRec && p.ex.rec == nil:
			p.fail(fmt.Errorf("dataflow: worker %d drove a gate for a control plane this run does not have", lk.worker))
			return
		case op.pause && plane == planeAdapt:
			if !p.ex.adapt.pause() {
				return
			}
			live := p.ex.adapt.live.Load()
			if err := lk.conn.WriteMsg(&transport.Msg{Kind: mkGatePaused, A: planeAdapt, C: live}); err != nil {
				p.fail(fmt.Errorf("dataflow: gate ack to worker %d: %w", lk.worker, err))
				return
			}
		case op.pause:
			if !p.ex.rec.pause() {
				return
			}
			if err := lk.conn.WriteMsg(&transport.Msg{Kind: mkGatePaused, A: planeRec}); err != nil {
				p.fail(fmt.Errorf("dataflow: gate ack to worker %d: %w", lk.worker, err))
				return
			}
		case plane == planeAdapt:
			p.ex.adapt.resume(adaptive.Matrix{Rows: op.rows, Cols: op.cols})
		default:
			p.ex.rec.resume()
		}
	}
}

// remoteProducerWorkers lists the workers (other than self) hosting producers
// into prot, deduplicated and sorted for deterministic RPC order.
func (p *NetPlane) remoteProducerWorkers(prot *node) []int {
	seen := make(map[int]bool)
	for _, e := range prot.inputs {
		if w := p.workerOf(e.from.name); w != p.cfg.Self {
			seen[w] = true
		}
	}
	ws := make([]int, 0, len(seen))
	for w := range seen {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	return ws
}

// pauseRemote closes the given plane's producer gate on every remote worker
// feeding prot and waits for the acks, returning the sum of the remote live
// producer counts. Rounds are serialized by roundMu, so at most one
// pauseRemote per plane is ever outstanding.
func (p *NetPlane) pauseRemote(plane int, prot *node) (int64, bool) {
	ws := p.remoteProducerWorkers(prot)
	for _, w := range ws {
		if err := p.links[w].conn.WriteMsg(&transport.Msg{Kind: mkGatePause, A: int64(plane)}); err != nil {
			p.fail(fmt.Errorf("dataflow: gate pause to worker %d: %w", w, err))
			return 0, false
		}
	}
	var live int64
	for range ws {
		select {
		case v := <-p.gateAcks[plane]:
			live += v
		case <-p.ex.abort:
			return 0, false
		}
	}
	return live, true
}

// resumeRemote reopens the plane's gate on every remote producer worker. For
// the adaptive plane the new routing matrix shape rides along so remote
// producers reroute against the post-reshape placement.
func (p *NetPlane) resumeRemote(plane int, prot *node, rows, cols int) bool {
	for _, w := range p.remoteProducerWorkers(prot) {
		msg := transport.Msg{Kind: mkGateResume, A: int64(plane), B: int64(rows), C: int64(cols)}
		if err := p.links[w].conn.WriteMsg(&msg); err != nil {
			p.fail(fmt.Errorf("dataflow: gate resume to worker %d: %w", w, err))
			return false
		}
	}
	return true
}

func (p *NetPlane) newToken() (int64, chan struct{}) {
	p.tokMu.Lock()
	p.tokNext++
	id := p.tokNext
	ch := make(chan struct{})
	p.tokWait[id] = ch
	p.tokMu.Unlock()
	return id, ch
}

// tokenSeen is called by a task draining a ctrlNetFlush envelope: the token's
// round-trip through the staging queue proves every data message the issuing
// link wrote before it has been delivered to (and processed by) the task.
func (p *NetPlane) tokenSeen(id int64) {
	p.tokMu.Lock()
	ch := p.tokWait[id]
	delete(p.tokWait, id)
	p.tokMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

func (p *NetPlane) waitTokens(chs []chan struct{}) bool {
	for _, ch := range chs {
		select {
		case <-ch:
		case <-p.ex.abort:
			return false
		}
	}
	return true
}

// quiesce flushes every remote producer's in-flight data to the given tasks
// of prot: one token per (remote worker, task), each delivered through the
// data path and therefore ordered behind everything that worker had already
// sent. Both control planes call this after closing the gates and before
// enqueueing any control marker — the cluster equivalent of the in-process
// invariant that a paused gate leaves nothing between a producer and the
// inbox.
func (p *NetPlane) quiesce(prot *node, tasks []int) bool {
	ni := p.nodeIdx[prot.name]
	var waits []chan struct{}
	for _, w := range p.remoteProducerWorkers(prot) {
		for _, t := range tasks {
			id, ch := p.newToken()
			if err := p.links[w].conn.WriteMsg(&transport.Msg{Kind: mkSendToken, A: int64(ni), B: int64(t), C: id}); err != nil {
				p.fail(fmt.Errorf("dataflow: quiesce token to worker %d: %w", w, err))
				return false
			}
			waits = append(waits, ch)
		}
	}
	return p.waitTokens(waits)
}

// allTasks returns [0, n.par).
func allTasks(n *node) []int {
	ts := make([]int, n.par)
	for i := range ts {
		ts[i] = i
	}
	return ts
}

// replayRemote asks every remote worker hosting checkpoint-routed producers
// to re-deliver its retained input to the recovering task, past the
// checkpoint cursors in manifest (nil when no checkpoint exists). It returns
// once every worker's flush token has come back through the victim's inbox,
// so the caller may enqueue ctrlRecDone knowing it cannot overtake replayed
// input.
func (p *NetPlane) replayRemote(prot *node, victim int, routes []int, relOfEdge []int, manifest *recovery.Manifest) bool {
	byWorker := make(map[int]*replayReq)
	for i, e := range prot.inputs {
		if routes[relOfEdge[i]] >= 0 {
			continue // peer-routed relation: no replay
		}
		w := p.workerOf(e.from.name)
		if w == p.cfg.Self {
			continue // the local replay loop already delivered these
		}
		r := byWorker[w]
		if r == nil {
			r = &replayReq{Node: prot.name, Victim: victim, Streams: make(map[string][]int64)}
			byWorker[w] = r
		}
		curs := make([]int64, e.from.par)
		if manifest != nil {
			for t := range curs {
				curs[t] = manifest.CursorFor(e.from.name, t)
			}
		}
		r.Streams[e.from.name] = curs
	}
	workers := make([]int, 0, len(byWorker))
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	var waits []chan struct{}
	for _, w := range workers {
		r := byWorker[w]
		id, ch := p.newToken()
		r.Token = id
		body, err := json.Marshal(r)
		if err != nil {
			p.fail(fmt.Errorf("dataflow: encoding replay request: %w", err))
			return false
		}
		if err := p.links[w].conn.WriteMsg(&transport.Msg{Kind: mkReplayReq, Payload: body}); err != nil {
			p.fail(fmt.Errorf("dataflow: replay request to worker %d: %w", w, err))
			return false
		}
		waits = append(waits, ch)
	}
	return p.waitTokens(waits)
}

// serveReplay re-delivers this worker's retained input to a recovering remote
// task: for each hosted producer of the protected component, every replay
// buffer entry past the checkpoint cursor goes out as an ordinary seq-tagged
// data message (the victim dedups, so over-replay is harmless), then the
// flush token closes the stream. Runs on its own goroutine; replay data
// flows under the normal credit windows.
func (p *NetPlane) serveReplay(lk *netLink, req replayReq) {
	ex := p.ex
	if ex.rec == nil {
		p.fail(fmt.Errorf("dataflow: replay request without a recovery plane"))
		return
	}
	prot := ex.topo.byN[req.Node]
	if prot == nil {
		p.fail(fmt.Errorf("dataflow: replay request for unknown component %q", req.Node))
		return
	}
	ni := p.nodeIdx[req.Node]
	rm := &ex.metrics.Recovery
	for _, e := range prot.inputs {
		curs, ok := req.Streams[e.from.name]
		if !ok || !p.owns(e.from) {
			continue
		}
		base := ex.rec.pidBase[e.from]
		for t := 0; t < e.from.par; t++ {
			var ckptCur int64
			if t < len(curs) {
				ckptCur = curs[t]
			}
			for _, ent := range ex.rec.snapshotBuf(base+t, req.Victim) {
				if ent.seq <= ckptCur {
					continue
				}
				if ent.frame == nil {
					p.fail(fmt.Errorf("dataflow: replay entry on %s has no serialized payload", e.from.name))
					return
				}
				m := transport.Msg{Kind: mkFrame, Stream: e.from.name, A: int64(ni), B: int64(req.Victim), C: int64(t), D: ent.seq, Payload: ent.frame}
				if ent.single {
					m.Kind = mkSingle
				}
				if !lk.credit(flowKey(ni, req.Victim), p.window).Acquire(ex.abort) {
					return
				}
				if err := lk.conn.WriteMsg(&m); err != nil {
					p.fail(fmt.Errorf("dataflow: replaying to worker %d: %w", lk.worker, err))
					return
				}
				rm.ReplayedEnvelopes.Add(1)
				rm.ReplayedTuples.Add(int64(ent.count))
			}
		}
	}
	if err := lk.conn.WriteMsg(&transport.Msg{Kind: mkToken, A: int64(ni), B: int64(req.Victim), C: req.Token}); err != nil {
		p.fail(fmt.Errorf("dataflow: replay token to worker %d: %w", lk.worker, err))
	}
}

// trimBroadcast forwards a checkpoint commit to every remote producer worker
// so their replay buffers drop what the checkpoint covers.
func (p *NetPlane) trimBroadcast(prot *node, task int, cursors map[string][]int64) {
	ws := p.remoteProducerWorkers(prot)
	if len(ws) == 0 {
		return
	}
	body, err := json.Marshal(trimMsg{Task: task, Cursors: cursors})
	if err != nil {
		return
	}
	for _, w := range ws {
		// Best effort: a lost trim only delays buffer pruning; the next
		// commit (or the link failure handling) catches up.
		_ = p.links[w].conn.WriteMsg(&transport.Msg{Kind: mkTrim, Payload: body})
	}
}

// TaskCounters is one task's metrics flattened for the completion exchange.
type TaskCounters struct {
	Received, Emitted, Sent, Batches, BytesOut, MaxMem, VecRows int64
}

// MetricsSnapshot is one worker's contribution to the run metrics, shipped
// to the coordinator in the session's completion message. Component counters
// are authoritative for the components the worker hosts; control-plane
// counters are additive across workers except the final-matrix shape, which
// only the adaptive component's host reports.
type MetricsSnapshot struct {
	Worker                                                        int
	Components                                                    map[string][]TaskCounters
	AdaptOwner                                                    bool
	Reshapes, MigratedTuples, MigratedBytes, FinalRows, FinalCols int64
	RecOwner                                                      bool
	Faults, Kills, Panics, PeerRels, CheckpointRels               int64
	RestoredTuples, RestoredBytes                                 int64
	ReplayedEnvelopes, ReplayedTuples                             int64
	Checkpoints, CheckpointBytes                                  int64
	RecoveryNS, LastRecoveryNS                                    int64
}

// LocalSnapshot captures this worker's slice of the run metrics after Run
// returns.
func (p *NetPlane) LocalSnapshot(m *RunMetrics) *MetricsSnapshot {
	s := &MetricsSnapshot{Worker: p.cfg.Self, Components: make(map[string][]TaskCounters)}
	for _, n := range p.nodes {
		if !p.owns(n) {
			continue
		}
		cm := m.Components[n.name]
		tcs := make([]TaskCounters, len(cm.Tasks))
		for i, t := range cm.Tasks {
			tcs[i] = TaskCounters{
				Received: t.Received.Load(), Emitted: t.Emitted.Load(), Sent: t.Sent.Load(),
				Batches: t.Batches.Load(), BytesOut: t.BytesOut.Load(), MaxMem: t.MaxMem.Load(),
				VecRows: t.VecRows.Load(),
			}
		}
		s.Components[n.name] = tcs
	}
	s.AdaptOwner = p.ex.adapt != nil && p.owns(p.ex.adapt.node)
	s.Reshapes = m.Adapt.Reshapes.Load()
	s.MigratedTuples = m.Adapt.MigratedTuples.Load()
	s.MigratedBytes = m.Adapt.MigratedBytes.Load()
	s.FinalRows = m.Adapt.FinalRows.Load()
	s.FinalCols = m.Adapt.FinalCols.Load()
	s.RecOwner = p.ex.rec != nil && p.owns(p.ex.rec.node)
	r := &m.Recovery
	s.Faults, s.Kills, s.Panics = r.Faults.Load(), r.Kills.Load(), r.Panics.Load()
	s.PeerRels, s.CheckpointRels = r.PeerRels.Load(), r.CheckpointRels.Load()
	s.RestoredTuples, s.RestoredBytes = r.RestoredTuples.Load(), r.RestoredBytes.Load()
	s.ReplayedEnvelopes, s.ReplayedTuples = r.ReplayedEnvelopes.Load(), r.ReplayedTuples.Load()
	s.Checkpoints, s.CheckpointBytes = r.Checkpoints.Load(), r.CheckpointBytes.Load()
	s.RecoveryNS, s.LastRecoveryNS = r.RecoveryNS.Load(), r.LastRecoveryNS.Load()
	return s
}

// ApplySnapshot merges a remote worker's snapshot into the coordinator's run
// metrics: hosted-component counters overwrite (the coordinator's local
// values for those components are zero), control-plane counters add.
func (p *NetPlane) ApplySnapshot(m *RunMetrics, s *MetricsSnapshot) {
	for name, tcs := range s.Components {
		cm := m.Components[name]
		if cm == nil {
			continue
		}
		for i, tc := range tcs {
			if i >= len(cm.Tasks) {
				break
			}
			t := cm.Tasks[i]
			t.Received.Store(tc.Received)
			t.Emitted.Store(tc.Emitted)
			t.Sent.Store(tc.Sent)
			t.Batches.Store(tc.Batches)
			t.BytesOut.Store(tc.BytesOut)
			t.MaxMem.Store(tc.MaxMem)
			t.VecRows.Store(tc.VecRows)
		}
	}
	m.Adapt.Reshapes.Add(s.Reshapes)
	m.Adapt.MigratedTuples.Add(s.MigratedTuples)
	m.Adapt.MigratedBytes.Add(s.MigratedBytes)
	if s.AdaptOwner {
		m.Adapt.FinalRows.Store(s.FinalRows)
		m.Adapt.FinalCols.Store(s.FinalCols)
	}
	r := &m.Recovery
	r.Faults.Add(s.Faults)
	r.Kills.Add(s.Kills)
	r.Panics.Add(s.Panics)
	r.PeerRels.Add(s.PeerRels)
	r.CheckpointRels.Add(s.CheckpointRels)
	r.RestoredTuples.Add(s.RestoredTuples)
	r.RestoredBytes.Add(s.RestoredBytes)
	r.ReplayedEnvelopes.Add(s.ReplayedEnvelopes)
	r.ReplayedTuples.Add(s.ReplayedTuples)
	r.Checkpoints.Add(s.Checkpoints)
	r.CheckpointBytes.Add(s.CheckpointBytes)
	r.RecoveryNS.Add(s.RecoveryNS)
	if s.RecOwner {
		r.LastRecoveryNS.Store(s.LastRecoveryNS)
	}
}
