// Live fault tolerance (§5): the control plane that lets a joiner task die —
// by an injected kill or a captured panic — and come back with its exact
// state and exactly-once semantics, instead of aborting the run.
//
// The moving parts:
//
//   - Sequence-tagged transport. Every envelope on an edge into the protected
//     component carries a per-(producer task, destination task) sequence
//     number, and producers retain recently sent envelopes in a replay
//     buffer. A consumer task tracks, per (stream, producer task), the
//     sequence of the last envelope it fully applied; anything at or below
//     the cursor is silently dropped, which makes re-delivery idempotent.
//
//   - Incremental checkpoints. Every CheckpointEvery applied tuples a task
//     snapshots its per-relation state as wire batch frames (blitted from
//     the slab arenas via FrameExporter — no tuple re-materialization) plus
//     a manifest of its cursors, into a pluggable recovery.CheckpointStore.
//     A committed checkpoint trims the producers' replay buffers up to its
//     cursors, which is what keeps them bounded. After a live reshape
//     (adapt.go) each task re-checkpoints immediately: migration moves state
//     between tasks without consuming input, so an older checkpoint plus
//     replay could not reconstruct the new placement.
//
//   - Quiesced kills. An injected fault (Options.Recovery.Fault) fires
//     through the manager: it serializes with reshape rounds (roundMu),
//     closes a pause gate on the tracked edges, and only then enqueues the
//     kill marker, so FIFO inboxes guarantee the dying task has applied
//     every delivered envelope and flushed every pending output. The loss is
//     then pure state loss at a consistent point.
//
//   - Recovery routes. Per relation, the manager picks the cheapest source
//     (ft.RecoveryPlan made live): a peer task holding an identical
//     partition — the scheme replicated the relation, so any machine sharing
//     the failed task's coordinates on the relation's own dimensions is a
//     complete copy; for the adaptive 1-Bucket matrix, the other cells of
//     the failed cell's row (R) or column (S) — or, when nothing replicates,
//     the last checkpoint plus a replay of the retained envelopes past its
//     cursors. Restores are silent inserts: every delta these tuples could
//     produce was already emitted before the fault.
//
//   - Panic capture. A panic inside Bolt.Execute is converted into a fault.
//     The poisoned envelope is only partially applied, so the task flushes
//     its pending outputs, drops its state, restores from checkpoint +
//     replay (peer snapshots are unusable here: a peer has applied tuples
//     whose deltas the dying task never emitted), silently re-imports the
//     applied prefix of the poisoned batch, and reprocesses the rest plus
//     every stashed later envelope with full emission. Exactly-once holds
//     because the engine's operators emit a tuple's deltas only after its
//     OnTuple returns — a panic never leaves a tuple half-emitted. Capture
//     requires a non-adaptive run: a reshape barrier already enqueued in
//     the panicking task's inbox cannot be reconciled with its state loss,
//     so adaptive runs surface panics as run errors (injected kills recover
//     on adaptive runs too — the manager serializes them with reshape
//     rounds via roundMu before delivering the marker).
//
// See DESIGN.md ("Fault tolerance") for the protocol walkthrough and the
// substitution-table row for recovery traffic.
package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squall/internal/recovery"
	"squall/internal/slab"
	"squall/internal/types"
	"squall/internal/wire"
)

// FaultPlan injects one deterministic task kill: the protected component's
// task Task is killed once it has received AfterTuples tuples. The kill is
// delivered at a quiesced point (see package comment), so the run must stay
// exactly-once; squallbench's `recover` experiment and the enginetest chaos
// dimension are built on it.
type FaultPlan struct {
	Task        int
	AfterTuples int
}

// RecoveryPolicy enables the live fault-tolerance subsystem on one component.
type RecoveryPolicy struct {
	// Component names the protected bolt; its bolts must implement
	// Repartitioner (state export/import).
	Component string
	// RelOf maps each input stream (upstream component name) to its relation
	// index; NumRels is the relation count.
	RelOf   map[string]int
	NumRels int
	// PeersFor returns the tasks holding an identical copy of relation rel's
	// partition at `task` (empty when the scheme does not replicate rel).
	// When nil and the component runs adaptively, peers come from the live
	// matrix; otherwise recovery falls back to checkpoints.
	PeersFor func(task, rel int) []int
	// Store persists checkpoints (default: an in-memory store).
	Store recovery.CheckpointStore
	// CheckpointEvery is the number of applied tuples between checkpoints
	// (default 512).
	CheckpointEvery int
	// DisablePeer forces the checkpoint route even when peers exist — the
	// disk-recovery baseline the §5 claim is measured against.
	DisablePeer bool
	// Fault, when set, injects one deterministic kill.
	Fault *FaultPlan
}

func (p *RecoveryPolicy) withDefaults() RecoveryPolicy {
	q := *p
	if q.CheckpointEvery <= 0 {
		q.CheckpointEvery = 512
	}
	if q.Store == nil {
		q.Store = recovery.NewMemStore()
	}
	return q
}

// RecoveryMetrics counts fault-tolerance activity (all zero when no recovery
// policy is installed). Restored and replayed traffic is deliberately kept
// out of Sent/Received, which measure the query's own dataflow (§6); peer
// refetch bytes are charged to the serving task's BytesOut like any network
// transfer.
type RecoveryMetrics struct {
	Faults atomic.Int64 // recoveries completed (kills + panics)
	Kills  atomic.Int64 // injected kills recovered
	Panics atomic.Int64 // captured panics recovered
	// PeerRels / CheckpointRels count per-relation recovery routes taken.
	PeerRels       atomic.Int64
	CheckpointRels atomic.Int64
	// RestoredTuples / RestoredBytes measure state shipped during restores
	// (peer refetch frames + checkpoint frames).
	RestoredTuples atomic.Int64
	RestoredBytes  atomic.Int64
	// SegmentBytes measures sealed-segment blobs read back from the
	// checkpoint store during v2 (tiered) restores; a subset of
	// RestoredBytes.
	SegmentBytes atomic.Int64
	// ReplayedEnvelopes / ReplayedTuples measure re-delivered input.
	ReplayedEnvelopes atomic.Int64
	ReplayedTuples    atomic.Int64
	// Checkpoints / CheckpointBytes measure the steady-state checkpoint cost.
	Checkpoints     atomic.Int64
	CheckpointBytes atomic.Int64
	// RecoveryNS is the wall time spent inside recovery rounds (gate close to
	// ack); LastRecoveryNS is the most recent round's duration.
	RecoveryNS     atomic.Int64
	LastRecoveryNS atomic.Int64
}

// Additional control kinds for the recovery plane. They sort after the
// adaptive kinds so the executor can dispatch on the boundary.
const (
	// ctrlKill tells the fault-plan task to drop its state (quiesced kill).
	ctrlKill ctrlKind = iota + ctrlMigDone + 1
	// ctrlRecBegin opens a recovery round at the failed task: routes per
	// relation plus the checkpoint manifest restore starts from.
	ctrlRecBegin
	// ctrlRecBatch carries restored state tuples for one relation.
	ctrlRecBatch
	// ctrlRecDone marks the end of one relation's restore.
	ctrlRecDone
	// ctrlStateReq asks a peer task to export one relation to the failed
	// task's inbox.
	ctrlStateReq
	// ctrlNetFlush is a cluster flush token (see NetPlane.quiesce): it rides
	// the data path from a remote producer worker, so draining it proves
	// every data envelope that worker sent earlier has been processed. The
	// task reports it to the plane and carries on.
	ctrlNetFlush
)

// recMsg is the payload of recovery control envelopes.
type recMsg struct {
	rel      int
	target   int
	tuples   []types.Tuple
	routes   []int              // per rel: serving peer task, or -1 for checkpoint
	manifest *recovery.Manifest // checkpoint manifest (nil when none exists)
}

// replayEnt is one retained envelope in a producer's replay buffer.
type replayEnt struct {
	seq    int64
	frame  []byte        // encoded payload (nil on the NoSerialize path)
	single bool          // frame holds one wire.Encode tuple, not a batch
	tuples []types.Tuple // NoSerialize payload
	count  int
}

// faultNote is a task's fault notification to the manager.
type faultNote struct {
	task     int
	panicked bool
	void     bool // plan task reached end-of-stream without triggering
}

// recState is the per-run recovery control plane.
type recState struct {
	ex   *execution
	pol  RecoveryPolicy
	node *node // the protected component

	// relOfEdge[i] is the relation index of node.inputs[i].
	relOfEdge []int
	// pidBase assigns each tracked producer node a dense id range; a producer
	// task's pid is pidBase[node]+task.
	pidBase map[*node]int
	npids   int

	// bufs[pid][target] is the ordered replay buffer of one (producer task,
	// destination) pair; trims[pid][target] is the newest checkpoint cursor,
	// below which entries are pruned. bufMus[pid] guards that producer's
	// buffers: a pid's buffers are written only by its own (single-threaded)
	// producer task and read only by the manager during a restore, so
	// per-producer locks see no steady-state contention even on the
	// BatchSize=1 path, where every tuple copy records an entry.
	bufMus []sync.Mutex
	bufs   [][][]replayEnt
	trims  [][]atomic.Int64

	// Pause gate on the tracked edges (same protocol as the adaptive gate).
	mu       sync.Mutex
	paused   bool
	active   int
	resumeCh chan struct{}
	idleCh   chan struct{}

	faults chan faultNote
	// killAck reports the victim reached the kill marker; true means a
	// captured panic was already mid-restore there, so the round must run
	// with panic semantics (checkpoint routes only).
	killAck chan bool
	acks    chan int
	quit    chan struct{}
	done    chan struct{}
	// planDone is closed when the fault plan is resolved (recovered or
	// voided); protected tasks that finish their EOS set linger on it so a
	// late kill still finds every peer alive and draining.
	planDone  chan struct{}
	planOnce  sync.Once
	scheduled bool // a fault plan exists
}

// initRecovery validates the policy against the topology and installs the
// recovery plane on the execution.
func (ex *execution) initRecovery(pol *RecoveryPolicy) error {
	p := pol.withDefaults()
	n, ok := ex.topo.byN[p.Component]
	if !ok || n.bolt == nil {
		return fmt.Errorf("dataflow: recovery component %q is not a registered bolt", p.Component)
	}
	if p.NumRels <= 0 {
		return fmt.Errorf("dataflow: recovery needs NumRels >= 1")
	}
	a := &recState{
		ex:        ex,
		pol:       p,
		node:      n,
		relOfEdge: make([]int, len(n.inputs)),
		pidBase:   map[*node]int{},
		resumeCh:  make(chan struct{}),
		faults:    make(chan faultNote, 2+n.par),
		killAck:   make(chan bool, 1),
		acks:      make(chan int, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		planDone:  make(chan struct{}),
		scheduled: p.Fault != nil,
	}
	for i, e := range n.inputs {
		rel, ok := p.RelOf[e.from.name]
		if !ok {
			return fmt.Errorf("dataflow: recovery component %q input %q has no relation mapping", p.Component, e.from.name)
		}
		if rel < 0 || rel >= p.NumRels {
			return fmt.Errorf("dataflow: recovery relation %d of stream %q out of range [0,%d)", rel, e.from.name, p.NumRels)
		}
		a.relOfEdge[i] = rel
		if _, dup := a.pidBase[e.from]; dup {
			return fmt.Errorf("dataflow: recovery component %q has duplicate input %q", p.Component, e.from.name)
		}
		a.pidBase[e.from] = a.npids
		a.npids += e.from.par
	}
	if p.Fault != nil && (p.Fault.Task < 0 || p.Fault.Task >= n.par) {
		return fmt.Errorf("dataflow: fault plan task %d out of range [0,%d)", p.Fault.Task, n.par)
	}
	a.bufMus = make([]sync.Mutex, a.npids)
	a.bufs = make([][][]replayEnt, a.npids)
	a.trims = make([][]atomic.Int64, a.npids)
	for pid := range a.bufs {
		a.bufs[pid] = make([][]replayEnt, n.par)
		a.trims[pid] = make([]atomic.Int64, n.par)
	}
	if !a.scheduled {
		a.resolvePlan() // nothing to linger for
	}
	ex.rec = a
	return nil
}

// tracksFor returns, for one producer node, which output edges feed the
// protected component (nil when none do), plus the producer's pid base.
func (a *recState) tracksFor(n *node) ([]bool, int) {
	base, ok := a.pidBase[n]
	if !ok {
		return nil, 0
	}
	out := make([]bool, len(n.outputs))
	for i, e := range n.outputs {
		out[i] = e.to == a.node
	}
	return out, base
}

// record retains one sent envelope for replay, pruning entries the newest
// checkpoint has made obsolete. The prune cost is amortized O(1): a trim
// only advances at checkpoint commits, so the compaction copy runs once per
// commit, not once per append.
func (a *recState) record(pid, target int, ent replayEnt) {
	trim := a.trims[pid][target].Load()
	a.bufMus[pid].Lock()
	buf := a.bufs[pid][target]
	drop := 0
	for drop < len(buf) && buf[drop].seq <= trim {
		drop++
	}
	if drop > 0 {
		buf = buf[:copy(buf, buf[drop:])]
	}
	a.bufs[pid][target] = append(buf, ent)
	a.bufMus[pid].Unlock()
}

// snapshotBuf copies the retained entries of one (producer, target) pair.
func (a *recState) snapshotBuf(pid, target int) []replayEnt {
	a.bufMus[pid].Lock()
	out := append([]replayEnt(nil), a.bufs[pid][target]...)
	a.bufMus[pid].Unlock()
	return out
}

// commitTrims advances the replay trim cursors to a committed checkpoint's
// cursors: entries at or below them can never be replayed again.
func (a *recState) commitTrims(task int, cursors map[string][]int64) {
	for _, e := range a.node.inputs {
		base := a.pidBase[e.from]
		for p := 0; p < e.from.par; p++ {
			if cur := cursors[e.from.name][p]; cur > a.trims[base+p][task].Load() {
				a.trims[base+p][task].Store(cur)
			}
		}
	}
}

// resolvePlan marks the fault plan resolved, releasing lingering tasks.
func (a *recState) resolvePlan() {
	a.planOnce.Do(func() { close(a.planDone) })
}

// enter joins the pause gate, blocking while a recovery round is in flight;
// ok is false when the run aborted.
func (a *recState) enter() bool {
	a.mu.Lock()
	for a.paused {
		ch := a.resumeCh
		a.mu.Unlock()
		select {
		case <-ch:
		case <-a.ex.abort:
			return false
		}
		a.mu.Lock()
	}
	a.active++
	a.mu.Unlock()
	return true
}

// exit leaves the gate, waking a paused manager once drained.
func (a *recState) exit() {
	a.mu.Lock()
	a.active--
	if a.active == 0 && a.paused && a.idleCh != nil {
		close(a.idleCh)
		a.idleCh = nil
	}
	a.mu.Unlock()
}

// pause closes the gate and waits until no producer is inside it: every
// envelope sent under the open gate is then enqueued, so a control marker
// enqueued next is ordered after all of them.
func (a *recState) pause() bool {
	a.mu.Lock()
	a.paused = true
	a.resumeCh = make(chan struct{})
	if a.active == 0 {
		a.mu.Unlock()
		return true
	}
	idle := make(chan struct{})
	a.idleCh = idle
	a.mu.Unlock()
	select {
	case <-idle:
		return true
	case <-a.ex.abort:
		return false
	}
}

// resume reopens the gate.
func (a *recState) resume() {
	a.mu.Lock()
	a.paused = false
	ch := a.resumeCh
	a.mu.Unlock()
	close(ch)
}

func (a *recState) sendCtrl(task int, env envelope) bool {
	select {
	case a.ex.inboxes[a.node][task] <- env:
		return true
	case <-a.ex.abort:
		return false
	case <-a.quit:
		return false
	}
}

// run is the manager goroutine: it serializes fault handling with reshape
// rounds and orchestrates each recovery.
func (a *recState) run() {
	defer close(a.done)
	for {
		select {
		case f := <-a.faults:
			if f.void {
				a.resolvePlan()
				continue
			}
			if !a.handleFault(f) {
				return
			}
		case <-a.ex.abort:
			return
		case <-a.quit:
			return
		}
	}
}

// peersFor resolves the live peer set for one (task, relation): the policy's
// scheme-derived peers, or the adaptive matrix's row/column when the
// component runs adaptively (the matrix is stable here — reshape rounds and
// recovery rounds serialize on roundMu).
func (a *recState) peersFor(task, rel int) []int {
	if a.pol.PeersFor != nil {
		return a.pol.PeersFor(task, rel)
	}
	if ad := a.ex.adapt; ad != nil && rel < 2 {
		m := ad.cur
		if task >= m.Rows*m.Cols {
			return nil
		}
		row, col := task/m.Cols, task%m.Cols
		var out []int
		if rel == 0 { // R replicates across the row's columns
			for c := 0; c < m.Cols; c++ {
				if c != col {
					out = append(out, row*m.Cols+c)
				}
			}
		} else { // S replicates down the column's rows
			for r := 0; r < m.Rows; r++ {
				if r != row {
					out = append(out, r*m.Cols+col)
				}
			}
		}
		return out
	}
	return nil
}

// handleFault runs one recovery round end to end. It reports false when the
// run is shutting down.
func (a *recState) handleFault(f faultNote) bool {
	a.ex.roundMu.Lock()
	defer a.ex.roundMu.Unlock()
	if !a.pause() {
		return false
	}
	defer a.resume()
	start := time.Now()
	m := &a.ex.metrics.Recovery

	// Cluster round: close the recovery gate on every remote producer worker,
	// then flush their in-flight data ahead of any control marker with tokens
	// through the victim's (and, for kill rounds, every peer's) inbox. This
	// restores the in-process invariant that a closed gate leaves nothing
	// between a producer and the protected inboxes — without it, a kill
	// marker or state request could overtake data still staged on the wire.
	if a.ex.net != nil {
		if _, ok := a.ex.net.pauseRemote(planeRec, a.node); !ok {
			return false
		}
		defer a.ex.net.resumeRemote(planeRec, a.node, 0, 0)
		tasks := []int{f.task}
		if !f.panicked {
			tasks = allTasks(a.node)
		}
		if !a.ex.net.quiesce(a.node, tasks) {
			return false
		}
	}

	// An injected kill is delivered only now, behind the closed gate: FIFO
	// inboxes guarantee the task has applied every delivered envelope before
	// it sees the marker, so the loss is pure state loss at a quiesced point.
	// (A panicked task has already faulted and is draining in restore mode.)
	// The ack matters twice: the task may still commit checkpoints while
	// draining toward the marker, so the manifest read below must be the
	// final one (replay buffers are trimmed up to the newest commit), and a
	// panic may have beaten the marker to the task — the ack reports that,
	// downgrading this round to panic semantics (checkpoint routes only; a
	// peer snapshot would swallow the panicked task's unemitted deltas).
	killRound := !f.panicked
	if killRound {
		if !a.sendCtrl(f.task, envelope{ctrl: ctrlKill}) {
			return false
		}
		select {
		case alreadyPanicked := <-a.killAck:
			if alreadyPanicked {
				f.panicked = true
			}
		case <-a.ex.abort:
			return false
		case <-a.quit:
			return false
		}
	}

	// Route per relation: peer refetch when the scheme replicates the
	// relation and the fault is a quiesced kill (a panicked task has
	// unemitted deltas a peer snapshot would swallow), checkpoint otherwise.
	routes := make([]int, a.pol.NumRels)
	needCk := false
	for rel := range routes {
		routes[rel] = -1
		if !f.panicked && !a.pol.DisablePeer {
			if peers := a.peersFor(f.task, rel); len(peers) > 0 {
				routes[rel] = peers[0]
			}
		}
		if routes[rel] < 0 {
			needCk = true
		}
	}

	// Load the failed task's latest checkpoint only when some relation needs
	// it: a fully peer-recoverable machine never touches the checkpoint
	// medium at all — the whole point of the §5 optimization. The manifest
	// bounds the replay, and a disk store charges the read to the recovery
	// clock here.
	var ck *recovery.Checkpoint
	haveCk := false
	if needCk {
		var err error
		ck, haveCk, err = a.pol.Store.Get(a.node.name, f.task)
		if err != nil {
			a.ex.fail(fmt.Errorf("dataflow: recovery of %s[%d]: %w", a.node.name, f.task, err))
			return false
		}
	}

	begin := &recMsg{routes: routes}
	if haveCk {
		begin.manifest = &ck.Manifest
	}
	if !a.sendCtrl(f.task, envelope{ctrl: ctrlRecBegin, rec: begin}) {
		return false
	}

	var dec wire.BatchDecoder
	for rel, peer := range routes {
		if peer >= 0 {
			m.PeerRels.Add(1)
			if !a.sendCtrl(peer, envelope{ctrl: ctrlStateReq, rec: &recMsg{rel: rel, target: f.task}}) {
				return false
			}
			continue
		}
		m.CheckpointRels.Add(1)
		if haveCk && ck.Segments != nil && rel < len(ck.Segments) {
			// v2 manifest: the relation's sealed rows live in the store as
			// referenced segments; read each back, verify it byte-for-byte
			// against the manifest's CRC, and ship only the rows its
			// liveness bitmap kept. A corrupt or missing checkpoint segment
			// fails the run — fabricating state is worse than dying.
			if !a.restoreSegments(f.task, rel, ck.Segments[rel]) {
				return false
			}
		}
		if haveCk && rel < len(ck.Frames) {
			for _, frame := range ck.Frames[rel] {
				tuples, _, err := dec.Decode(frame)
				if err != nil {
					a.ex.fail(fmt.Errorf("dataflow: checkpoint of %s[%d] rel %d corrupt: %w", a.node.name, f.task, rel, err))
					return false
				}
				m.RestoredTuples.Add(int64(len(tuples)))
				m.RestoredBytes.Add(int64(len(frame)))
				if !a.sendCtrl(f.task, envelope{ctrl: ctrlRecBatch, rec: &recMsg{rel: rel, tuples: tuples}}) {
					return false
				}
			}
		}
	}

	// Replay the retained input past the checkpoint cursors for every
	// checkpoint-routed relation. The failed task dedups by sequence, so
	// over-replay is harmless; under-replay is impossible because trims only
	// advance at checkpoint commits.
	for i, e := range a.node.inputs {
		if routes[a.relOfEdge[i]] >= 0 {
			continue
		}
		base := a.pidBase[e.from]
		for p := 0; p < e.from.par; p++ {
			var ckptCur int64
			if haveCk {
				ckptCur = ck.Manifest.CursorFor(e.from.name, p)
			}
			for _, ent := range a.snapshotBuf(base+p, f.task) {
				if ent.seq <= ckptCur {
					continue
				}
				env := envelope{stream: e.from.name, from: p, seq: ent.seq}
				switch {
				case ent.frame == nil:
					env.batch = ent.tuples
				case ent.single:
					t, _, err := wire.Decode(ent.frame)
					if err != nil {
						a.ex.fail(fmt.Errorf("dataflow: replay corruption on %s->%s: %w", e.from.name, a.node.name, err))
						return false
					}
					env.single = t
				default:
					out, _, err := dec.Decode(ent.frame)
					if err != nil {
						a.ex.fail(fmt.Errorf("dataflow: replay corruption on %s->%s: %w", e.from.name, a.node.name, err))
						return false
					}
					env.batch = out
				}
				m.ReplayedEnvelopes.Add(1)
				m.ReplayedTuples.Add(int64(ent.count))
				if !a.ex.send(a.node, f.task, env) {
					return false
				}
			}
		}
	}
	// Remote producers replay their own retained input: each serving worker
	// streams seq-tagged data messages and a flush token; waiting on the
	// tokens (which traverse the victim's inbox behind the replayed data)
	// guarantees the ctrlRecDone markers below cannot overtake any of it.
	if a.ex.net != nil {
		var man *recovery.Manifest
		if haveCk {
			man = &ck.Manifest
		}
		if !a.ex.net.replayRemote(a.node, f.task, routes, a.relOfEdge, man) {
			return false
		}
	}
	for rel, peer := range routes {
		if peer < 0 {
			if !a.sendCtrl(f.task, envelope{ctrl: ctrlRecDone, rec: &recMsg{rel: rel}}) {
				return false
			}
		}
	}

	select {
	case <-a.acks:
	case <-a.ex.abort:
		return false
	case <-a.quit:
		return false
	}
	m.Faults.Add(1)
	if f.panicked {
		m.Panics.Add(1)
	} else {
		m.Kills.Add(1)
	}
	if killRound {
		// The fault plan is consumed even when the round downgraded to panic
		// semantics; lingering peers must release either way.
		a.resolvePlan()
	}
	ns := time.Since(start).Nanoseconds()
	m.RecoveryNS.Add(ns)
	m.LastRecoveryNS.Store(ns)
	return true
}

// poisonedEnv is the envelope a captured panic interrupted: tuples before
// idx were fully applied and emitted, tuples from idx on were not.
type poisonedEnv struct {
	env   envelope
	batch []types.Tuple
	idx   int
}

// recSession is the consumer-side state of one protected task.
type recSession struct {
	a    *recState
	task int
	// cursors[stream][fromTask] is the sequence of the last fully applied
	// envelope per input edge.
	cursors   map[string][]int64
	sinceCkpt int
	// Fault-plan state.
	armed     bool // this task is the plan target and the trigger hasn't fired
	requested bool // trigger sent to the manager, resolution pending
	// Recovery-round state.
	recovering bool
	panicked   bool
	began      bool
	routes     []int
	manifest   *recovery.Manifest
	dones      int
	stash      []envelope
	poisoned   *poisonedEnv
	scratch    []byte
}

// newSession prepares the consumer-side recovery state for one task of the
// protected component.
func (a *recState) newSession(task int) *recSession {
	s := &recSession{a: a, task: task, cursors: map[string][]int64{}}
	for _, e := range a.node.inputs {
		s.cursors[e.from.name] = make([]int64, e.from.par)
	}
	s.armed = a.pol.Fault != nil && a.pol.Fault.Task == task
	return s
}

// busy reports whether the task must keep draining its inbox even after its
// EOS set completed: a recovery round is open, or a fault trigger awaits its
// resolution marker.
func (s *recSession) busy() bool { return s.recovering || s.requested }

// dedup drops an envelope already covered by the cursor; it returns whether
// the envelope should be applied.
func (s *recSession) dedup(env *envelope) bool {
	return env.seq == 0 || env.seq > s.cursors[env.stream][env.from]
}

// applied advances the cursor after an envelope was fully applied.
func (s *recSession) applied(env *envelope) {
	if env.seq > 0 {
		s.cursors[env.stream][env.from] = env.seq
	}
}

// startRecovery flips the session into restore mode. The caller has already
// replaced the bolt and flushed the collector's pending output. requested is
// deliberately left alone: a panic that preempts an outstanding kill trigger
// still owes the manager's kill marker its ack, and the kill round then
// services this session with panic semantics.
func (s *recSession) startRecovery(panicked bool) {
	s.recovering = true
	s.panicked = panicked
	s.began = false
	s.routes = nil
	s.manifest = nil
	s.dones = 0
	s.stash = nil
}

// checkpoint snapshots the task's state and cursors into the store and trims
// the producers' replay buffers.
func (s *recSession) checkpoint(bolt Bolt) error {
	a := s.a
	rep, ok := bolt.(Repartitioner)
	if !ok {
		return fmt.Errorf("dataflow: recovery bolt %T cannot export state", bolt)
	}
	ck := &recovery.Checkpoint{
		Manifest: recovery.Manifest{Component: a.node.name, Task: s.task, Rels: a.pol.NumRels},
	}
	for _, e := range a.node.inputs {
		for p := 0; p < e.from.par; p++ {
			ck.Manifest.Cursors = append(ck.Manifest.Cursors,
				recovery.Cursor{Stream: e.from.name, FromTask: p, Seq: s.cursors[e.from.name][p]})
		}
	}
	batch := a.ex.opts.BatchSize

	// Tiered bolts checkpoint incrementally (PR 10): sealed segments were
	// persisted to the checkpoint store when they sealed (or spilled), so the
	// manifest references them by key + CRC + liveness bitmap and only the
	// hot (unsealed) rows are re-exported as frames. The v2 export is
	// all-or-nothing across relations — every relation shares one state
	// layout, so a single renege sends the whole checkpoint to the v1 path.
	if te, ok := bolt.(TierExporter); ok {
		if _, ok := a.pol.Store.(slab.SegmentStore); ok {
			tiered := true
			for rel := 0; rel < a.pol.NumRels && tiered; rel++ {
				var frames [][]byte
				cks, relOK, err := te.ExportStateTier(rel, batch, a.ex.opts.VecExec, func(frame []byte, count int) bool {
					frames = append(frames, append([]byte(nil), frame...))
					ck.Tuples += int64(count)
					return true
				})
				if err != nil {
					return err
				}
				if !relOK {
					tiered = false
					break
				}
				refs := make([]recovery.SegmentRef, len(cks))
				for i, c := range cks {
					refs[i] = recovery.SegmentRef{Key: c.Key, CRC: c.CRC, Rows: int64(c.Rows), Dead: c.Dead}
				}
				ck.Segments = append(ck.Segments, refs)
				ck.Frames = append(ck.Frames, frames)
			}
			if !tiered {
				ck.Segments, ck.Frames, ck.Tuples = nil, nil, 0
			}
		}
	}
	if ck.Segments == nil {
		for rel := 0; rel < a.pol.NumRels; rel++ {
			var frames [][]byte
			blitted := false
			if fe, ok := bolt.(FrameExporter); ok {
				blitted = fe.ExportStateFrames(rel, batch, a.ex.opts.VecExec, func(frame []byte, count int) bool {
					frames = append(frames, append([]byte(nil), frame...))
					ck.Tuples += int64(count)
					return true
				})
			}
			if !blitted {
				tuples := rep.ExportState(rel)
				for start := 0; start < len(tuples); start += batch {
					end := start + batch
					if end > len(tuples) {
						end = len(tuples)
					}
					s.scratch = wire.EncodeBatch(s.scratch[:0], tuples[start:end])
					frames = append(frames, append([]byte(nil), s.scratch...))
					ck.Tuples += int64(end - start)
				}
			}
			ck.Frames = append(ck.Frames, frames)
		}
	}
	var bytes int64
	for _, frames := range ck.Frames {
		for _, f := range frames {
			bytes += int64(len(f))
		}
	}
	if err := a.pol.Store.Put(a.node.name, s.task, ck); err != nil {
		return err
	}
	a.commitTrims(s.task, s.cursors)
	if a.ex.net != nil {
		// Producers on other workers hold their own replay buffers; forward
		// the commit so theirs trim too.
		a.ex.net.trimBroadcast(a.node, s.task, s.cursors)
	}
	s.sinceCkpt = 0
	m := &a.ex.metrics.Recovery
	m.Checkpoints.Add(1)
	m.CheckpointBytes.Add(bytes)
	return nil
}

// restoreSegments ships one relation's sealed checkpoint segments to the
// recovering task. Every blob read back from the store is verified
// byte-for-byte: the segment codec's own CRC must decode clean AND match the
// CRC the manifest recorded at checkpoint time, and the row count must match.
// Rows the manifest's liveness bitmap marks dead are skipped — a restore must
// not resurrect deleted state. Any failure fails the run: the alternatives
// are fabricating rows or silently dropping them.
func (a *recState) restoreSegments(task, rel int, refs []recovery.SegmentRef) bool {
	ss, ok := a.pol.Store.(slab.SegmentStore)
	if !ok {
		a.ex.fail(fmt.Errorf("dataflow: checkpoint of %s[%d] references segments but store %T cannot read them", a.node.name, task, a.pol.Store))
		return false
	}
	m := &a.ex.metrics.Recovery
	batch := a.ex.opts.BatchSize
	var tuples []types.Tuple
	flush := func() bool {
		if len(tuples) == 0 {
			return true
		}
		m.RestoredTuples.Add(int64(len(tuples)))
		if !a.sendCtrl(task, envelope{ctrl: ctrlRecBatch, rec: &recMsg{rel: rel, tuples: tuples}}) {
			return false
		}
		tuples = nil
		return true
	}
	for si, sr := range refs {
		blob, found, err := ss.GetSegment(sr.Key)
		if err == nil && !found {
			err = fmt.Errorf("segment %q missing from store", sr.Key)
		}
		var offs []uint32
		var payload []byte
		if err == nil {
			var crc uint32
			offs, payload, crc, err = slab.DecodeSegment(blob)
			switch {
			case err != nil:
			case crc != sr.CRC:
				err = fmt.Errorf("segment %q checksum %08x does not match manifest %08x", sr.Key, crc, sr.CRC)
			case int64(len(offs)-1) != sr.Rows:
				err = fmt.Errorf("segment %q holds %d rows, manifest says %d", sr.Key, len(offs)-1, sr.Rows)
			}
		}
		if err != nil {
			a.ex.fail(fmt.Errorf("dataflow: checkpoint of %s[%d] rel %d segment %d: %w", a.node.name, task, rel, si, err))
			return false
		}
		m.SegmentBytes.Add(int64(len(blob)))
		m.RestoredBytes.Add(int64(len(blob)))
		for i := 0; i+1 < len(offs); i++ {
			if i/64 < len(sr.Dead) && sr.Dead[i/64]>>(uint(i)%64)&1 == 1 {
				continue
			}
			span := payload[offs[i]:offs[i+1]]
			if len(span) == 0 {
				continue // compacted-away dead row
			}
			t, _, err := wire.Decode(span)
			if err != nil {
				a.ex.fail(fmt.Errorf("dataflow: checkpoint of %s[%d] rel %d segment %d row %d: %w", a.node.name, task, rel, si, i, err))
				return false
			}
			tuples = append(tuples, t)
			if len(tuples) >= batch {
				if !flush() {
					return false
				}
			}
		}
	}
	return flush()
}

// serveStateReq exports one relation to a recovering peer over its inbox, as
// decoded wire batch frames — the live form of ft's "recover from a peer
// machine" route. Bytes are charged to this (serving) task like any network
// transfer.
func (s *recSession) serveStateReq(bolt Bolt, tm *TaskMetrics, msg *recMsg) bool {
	a := s.a
	m := &a.ex.metrics.Recovery
	batch := a.ex.opts.BatchSize
	var dec wire.BatchDecoder
	ship := func(frame []byte, count int) bool {
		out, _, err := dec.Decode(frame)
		if err != nil {
			a.ex.fail(fmt.Errorf("dataflow: peer export corruption at %s[%d]: %w", a.node.name, s.task, err))
			return false
		}
		tm.BytesOut.Add(int64(len(frame)))
		m.RestoredBytes.Add(int64(len(frame)))
		m.RestoredTuples.Add(int64(count))
		return a.ex.send(a.node, msg.target, envelope{from: s.task, ctrl: ctrlRecBatch, rec: &recMsg{rel: msg.rel, tuples: out}})
	}
	served := false
	if fe, ok := bolt.(FrameExporter); ok && !a.ex.opts.NoSerialize {
		// Peer serving decodes each frame right here before shipping tuples,
		// so a footer would only inflate the charged bytes: always bare.
		served = fe.ExportStateFrames(msg.rel, batch, false, ship)
	}
	if !served {
		rep, ok := bolt.(Repartitioner)
		if !ok {
			a.ex.fail(fmt.Errorf("dataflow: recovery bolt %T cannot export state", bolt))
			return false
		}
		tuples := rep.ExportState(msg.rel)
		for start := 0; start < len(tuples); start += batch {
			end := start + batch
			if end > len(tuples) {
				end = len(tuples)
			}
			chunk := tuples[start:end]
			if a.ex.opts.NoSerialize {
				m.RestoredTuples.Add(int64(len(chunk)))
				if !a.ex.send(a.node, msg.target, envelope{from: s.task, ctrl: ctrlRecBatch, rec: &recMsg{rel: msg.rel, tuples: chunk}}) {
					return false
				}
				continue
			}
			s.scratch = wire.EncodeBatch(s.scratch[:0], chunk)
			if !ship(s.scratch, len(chunk)) {
				return false
			}
		}
	}
	return a.ex.send(a.node, msg.target, envelope{from: s.task, ctrl: ctrlRecDone, rec: &recMsg{rel: msg.rel}})
}
