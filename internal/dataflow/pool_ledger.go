// Pool lifecycle auditing. Every frame/batch pool box moves through the
// accessors below instead of touching the sync.Pools directly, so a debug
// ledger (installed by tests) can audit the transport's recycling protocol:
//
//   - a box must never be Put twice without an intervening Get — a double-put
//     lets the pool hand the same buffer to two producers at once, which
//     corrupts frames in ways that surface arbitrarily far downstream;
//   - a clean run must return every box it took. Leaks are not unsafe, but
//     they silently degrade the pools back into per-envelope allocation.
//
// Abort paths are allowed to leak (an envelope in flight when the run dies is
// dropped on the floor along with its box, by design); they must still never
// double-put. With no ledger installed the accessors compile down to the
// plain pool calls plus one atomic load.

package dataflow

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"squall/internal/types"
)

var ledger atomic.Pointer[poolLedger]

type poolLedger struct {
	mu   sync.Mutex
	out  map[any]string // boxes checked out -> site of the Get
	errs []string
}

// startPoolLedger installs a fresh ledger. Boxes already inside the pools are
// tracked from their next Get; boxes checked out by a concurrent run would be
// reported as foreign puts, so tests using the ledger must not overlap runs
// with other tests.
func startPoolLedger() {
	ledger.Store(&poolLedger{out: make(map[any]string)})
}

// stopPoolLedger uninstalls the ledger and reports the boxes still checked
// out and every lifecycle violation it saw.
func stopPoolLedger() (outstanding []string, errs []string) {
	l := ledger.Swap(nil)
	if l == nil {
		return nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, site := range l.out {
		outstanding = append(outstanding, site)
	}
	return outstanding, l.errs
}

func callSite() string {
	// Skip callSite, the ledger method, and the accessor: the caller's caller
	// is the interesting frame.
	pc, file, line, ok := runtime.Caller(3)
	if !ok {
		return "unknown"
	}
	fn := runtime.FuncForPC(pc)
	name := "?"
	if fn != nil {
		name = fn.Name()
	}
	return fmt.Sprintf("%s (%s:%d)", name, file, line)
}

func (l *poolLedger) get(box any) {
	site := callSite()
	l.mu.Lock()
	l.out[box] = site
	l.mu.Unlock()
}

func (l *poolLedger) put(box any) {
	site := callSite()
	l.mu.Lock()
	if _, ok := l.out[box]; !ok {
		if len(l.errs) < 16 {
			l.errs = append(l.errs, fmt.Sprintf("put of a box not checked out (double-put or foreign box) at %s", site))
		}
	} else {
		delete(l.out, box)
	}
	l.mu.Unlock()
}

func getFrameBox() *[]byte {
	p := framePool.Get().(*[]byte)
	if l := ledger.Load(); l != nil {
		l.get(p)
	}
	return p
}

func putFrameBox(p *[]byte) {
	if l := ledger.Load(); l != nil {
		l.put(p)
	}
	framePool.Put(p)
}

func getBatchBox() *[]types.Tuple {
	p := batchPool.Get().(*[]types.Tuple)
	if l := ledger.Load(); l != nil {
		l.get(p)
	}
	return p
}

func putBatchBox(p *[]types.Tuple) {
	if l := ledger.Load(); l != nil {
		l.put(p)
	}
	batchPool.Put(p)
}

// adoptBatchBox registers a box that entered circulation outside the pool
// (the first flush of a NoSerialize slot allocates its box directly).
func adoptBatchBox(p *[]types.Tuple) {
	if l := ledger.Load(); l != nil {
		l.get(p)
	}
}
