// Cluster execution tests (PR 7 tentpole): several NetPlanes wired over real
// loopback TCP inside one test process, each driving its own dataflow.Run
// over the identical topology with a placement that splits components across
// "workers". This exercises every network-plane path — packed-frame data,
// credit backpressure, EOS, gate pause/resume RPCs, quiesce tokens, remote
// checkpoint replay, trim broadcast and abort propagation — without the
// process-management scaffolding (cmd/squalld owns that; enginetest covers
// the true multi-process dimension).

package dataflow

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"squall/internal/recovery"
	"squall/internal/transport"
	"squall/internal/types"
)

// dialMesh opens a full loopback-TCP mesh between n in-process workers.
// mesh[i][j] is worker i's connection to worker j (nil on the diagonal).
func dialMesh(t *testing.T, n int) [][]*transport.Conn {
	t.Helper()
	mesh := make([][]*transport.Conn, n)
	for i := range mesh {
		mesh[i] = make([]*transport.Conn, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			acc := make(chan net.Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					close(acc)
					return
				}
				acc <- c
			}()
			dialed, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			accepted, ok := <-acc
			if !ok {
				t.Fatal("accept failed")
			}
			ln.Close()
			mesh[i][j] = transport.NewConn(dialed)
			mesh[j][i] = transport.NewConn(accepted)
		}
	}
	return mesh
}

type workerResult struct {
	m   *RunMetrics
	err error
}

// runNetCluster executes the topology produced by build on every worker of an
// in-process cluster. Each worker gets its own NetPlane over the mesh and its
// own copy of the topology (so spout/bolt state is never shared); gathers[w]
// is worker w's sink collector — only the sink owner's fills. The planes are
// shut down and the mesh closed before returning.
func runNetCluster(t *testing.T, workers int, place map[string]int, opts Options,
	build func() (*Topology, *Gather)) ([]workerResult, []*Gather, []*NetPlane) {
	t.Helper()
	mesh := dialMesh(t, workers)
	planes := make([]*NetPlane, workers)
	for w := 0; w < workers; w++ {
		planes[w] = NewNetPlane(NetConfig{
			Self: w, Workers: workers, Place: place, Links: mesh[w],
		})
	}
	results := make([]workerResult, workers)
	gathers := make([]*Gather, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		topo, g := build()
		gathers[w] = g
		o := opts
		o.Net = planes[w]
		wg.Add(1)
		go func(w int, topo *Topology, o Options) {
			defer wg.Done()
			m, err := Run(topo, o)
			results[w] = workerResult{m, err}
		}(w, topo, o)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("cluster run wedged")
	}
	for _, p := range planes {
		p.Shutdown()
	}
	for _, row := range mesh {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	return results, gathers, planes
}

func requireAllOK(t *testing.T, results []workerResult) {
	t.Helper()
	for w, r := range results {
		if r.err != nil {
			t.Fatalf("worker %d: %v", w, r.err)
		}
	}
}

func rowBag(rows []types.Tuple) map[string]int {
	bag := make(map[string]int, len(rows))
	for _, r := range rows {
		bag[r.Key()]++
	}
	return bag
}

// TestNetLinearPipeline splits src -> double -> sink across two and three
// workers and asserts bag equality with the single-process run, at the
// packed, per-tuple and vectorized transports.
func TestNetLinearPipeline(t *testing.T) {
	const rows = 2000
	build := func() (*Topology, *Gather) {
		g := NewGather()
		topo, err := NewBuilder().
			Spout("src", 3, SliceSpout(intRows(rows))).
			Bolt("double", 4, func(int, int) Bolt {
				return FuncBolt{OnTuple: func(in Input, out *Collector) error {
					return out.Emit(append(types.Tuple{}, in.Tuple...))
				}}
			}).
			Bolt("sink", 1, g.Factory()).
			Input("double", "src", Shuffle()).
			Input("sink", "double", Global()).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return topo, g
	}

	ref, refG := build()
	if _, err := Run(ref, Options{Seed: 1}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := rowBag(refG.Rows())

	cases := []struct {
		name    string
		workers int
		place   map[string]int
		opts    Options
	}{
		{"two-workers", 2, map[string]int{"src": 0, "double": 1, "sink": 0}, Options{Seed: 1}},
		{"three-workers-chain", 3, map[string]int{"src": 0, "double": 1, "sink": 2}, Options{Seed: 1}},
		{"per-tuple", 2, map[string]int{"src": 1, "double": 0, "sink": 1}, Options{Seed: 1, BatchSize: 1}},
		{"vecexec", 2, map[string]int{"src": 0, "double": 1, "sink": 0}, Options{Seed: 1, VecExec: true}},
		{"tiny-window", 2, map[string]int{"src": 0, "double": 1, "sink": 0}, Options{Seed: 1, ChannelBuf: 2, BatchSize: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, gathers, _ := runNetCluster(t, tc.workers, tc.place, tc.opts, build)
			requireAllOK(t, results)
			sinkW := tc.place["sink"]
			got := rowBag(gathers[sinkW].Rows())
			diffBags(t, want, got)
			for w, g := range gathers {
				if w != sinkW && len(g.Rows()) != 0 {
					t.Errorf("worker %d gathered %d rows but does not host the sink", w, len(g.Rows()))
				}
			}
		})
	}
}

// TestNetNoSerializeRejected: NoSerialize edges cannot cross process
// boundaries; a cluster run must refuse the combination up front.
func TestNetNoSerializeRejected(t *testing.T) {
	topo, _ := ledgerTopo(t, intRows(8), passBolt)
	p := NewNetPlane(NetConfig{Self: 0, Workers: 1, Links: []*transport.Conn{nil}})
	defer p.Shutdown()
	_, err := Run(topo, Options{Seed: 1, NoSerialize: true, Net: p})
	if err == nil || !strings.Contains(err.Error(), "NoSerialize") {
		t.Fatalf("err = %v, want NoSerialize rejection", err)
	}
}

// buildNetRecTopo is the recover_test workload (R broadcast = peer
// recoverable, S hash-partitioned = checkpoint route) shaped for cluster
// placement tests.
func buildNetRecTopo(t *testing.T, nR, nS, par int) func() (*Topology, *Gather) {
	t.Helper()
	rRows, sRows := recWorkload(nR, nS)
	return func() (*Topology, *Gather) {
		b := NewBuilder()
		b.Spout("R", 1, SliceSpout(rRows))
		b.Spout("S", 1, SliceSpout(sRows))
		b.Bolt("join", par, func(int, int) Bolt { return &crossJoin{} })
		g := NewGather()
		b.Bolt("sink", 1, g.Factory())
		b.Input("join", "R", All())
		b.Input("join", "S", Fields(0))
		b.Input("sink", "join", Global())
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return topo, g
	}
}

// TestNetRecoveryRemoteKill kills a joiner task whose producers live on a
// different worker: the recovery round must pause the remote producer gates,
// quiesce in-flight TCP data with flush tokens, replay the missed suffix over
// the wire from the producers' snapshot buffers, and still produce the exact
// no-fault bag. Both recovery routes are exercised: peer refetch (R) stays
// local by construction; the checkpoint route (S) replays remotely.
func TestNetRecoveryRemoteKill(t *testing.T) {
	const nR, nS, par = 40, 300, 3
	build := buildNetRecTopo(t, nR, nS, par)

	ref, refG := build()
	if _, err := Run(ref, Options{Seed: 7}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := rowBag(refG.Rows())

	for _, disablePeer := range []bool{false, true} {
		t.Run(fmt.Sprintf("disablePeer=%v", disablePeer), func(t *testing.T) {
			place := map[string]int{"R": 0, "S": 0, "join": 1, "sink": 0}
			// Small envelopes keep the stream in flight when the fault
			// fires. The checkpoint-only case uses a commit interval larger
			// than the victim's whole input: no commit ever lands, so the
			// restore starts from nothing and the entire prefix must replay
			// over the wire — a deterministic non-empty remote replay (any
			// committed checkpoint covers every drained tuple, since commits
			// fire inside the quiesced drain itself).
			every := 48
			if disablePeer {
				every = 1 << 20
			}
			opts := Options{Seed: 7, BatchSize: 4, ChannelBuf: 2}
			opts.Recovery = recPolicy(par, &FaultPlan{Task: 1, AfterTuples: 40},
				recovery.NewMemStore(), disablePeer, every)
			results, gathers, planes := runNetCluster(t, 2, place, opts, build)
			requireAllOK(t, results)
			diffBags(t, want, rowBag(gathers[0].Rows()))

			// The recovery manager ran on worker 1 (join's host); merging the
			// workers' snapshots must surface its kill count on worker 0's
			// metrics, and the snapshot marked RecOwner must be worker 1's.
			merged := results[0].m
			snap := planes[1].LocalSnapshot(results[1].m)
			if !snap.RecOwner {
				t.Fatal("worker 1 hosts the protected component but its snapshot is not RecOwner")
			}
			planes[0].ApplySnapshot(merged, snap)
			if got := merged.Recovery.Kills.Load(); got != 1 {
				t.Fatalf("merged kills = %d, want 1", got)
			}
			if disablePeer && results[0].m.Recovery.ReplayedEnvelopes.Load() == 0 {
				t.Fatal("checkpoint route recovered a remote kill without replaying over the wire")
			}
		})
	}
}

// TestNetRecoveryRemotePanic: the panic flavor quiesces only the victim (its
// peers may already have exited) and restarts it in place.
func TestNetRecoveryRemotePanic(t *testing.T) {
	const nR, nS, par = 40, 300, 3
	build := buildNetRecTopo(t, nR, nS, par)

	ref, refG := build()
	if _, err := Run(ref, Options{Seed: 7}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := rowBag(refG.Rows())

	armed := &atomic.Bool{}
	armed.Store(true)
	buildPanic := func() (*Topology, *Gather) {
		rRows, sRows := recWorkload(nR, nS)
		b := NewBuilder()
		b.Spout("R", 1, SliceSpout(rRows))
		b.Spout("S", 1, SliceSpout(sRows))
		b.Bolt("join", par, func(task, _ int) Bolt {
			if task == 2 {
				return &panicJoin{task: task, armed: armed, after: 40}
			}
			return &crossJoin{}
		})
		g := NewGather()
		b.Bolt("sink", 1, g.Factory())
		b.Input("join", "R", All())
		b.Input("join", "S", Fields(0))
		b.Input("sink", "join", Global())
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return topo, g
	}

	place := map[string]int{"R": 0, "S": 0, "join": 1, "sink": 0}
	opts := Options{Seed: 7, BatchSize: 4, ChannelBuf: 2}
	opts.Recovery = recPolicy(par, nil, recovery.NewMemStore(), false, 48)
	results, gathers, _ := runNetCluster(t, 2, place, opts, buildPanic)
	requireAllOK(t, results)
	diffBags(t, want, rowBag(gathers[0].Rows()))
	if got := results[1].m.Recovery.Panics.Load(); got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
}

// TestNetAdaptiveReshape runs the live 1-Bucket operator with its joiner on a
// different worker than both spouts: reshape rounds must pause the remote
// producers, quiesce the wire, migrate state locally and resume the remote
// gates with the new matrix. The cross product must come out exactly once.
func TestNetAdaptiveReshape(t *testing.T) {
	const nR, nS, par = 4000, 30, 8
	build := func() (*Topology, *Gather) {
		return buildAdaptiveTopo(t, nR, nS, par, func() Bolt { return &pairBolt{} })
	}
	// Deliver S before R floods (see TestAdaptiveReshapePreservesPairs) and
	// throttle the wire — small credit windows keep the spouts alive long
	// enough for the controller to observe the drift; the default window
	// would let all 4000 tuples cross the socket before any report lands.
	rHoldoff = 20 * time.Millisecond
	defer func() { rHoldoff = 0 }()
	place := map[string]int{"R": 0, "S": 0, "join": 1, "sink": 0}

	reshaped := false
	for _, seed := range []int64{7, 8, 9} {
		opts := Options{Seed: seed, BatchSize: 16, ChannelBuf: 4}
		opts.Adaptive = &AdaptivePolicy{
			Component: "join", RStream: "R", SStream: "S",
			InitialRows: 1, InitialCols: par,
			ReportEvery: 16, MinObserved: 64, MinGain: 0.05,
		}
		results, gathers, _ := runNetCluster(t, 2, place, opts, build)
		requireAllOK(t, results)
		bag := rowBag(gathers[0].Rows())
		if len(bag) != nR*nS {
			t.Fatalf("seed %d: distinct pairs = %d, want %d", seed, len(bag), nR*nS)
		}
		for k, c := range bag {
			if c != 1 {
				t.Fatalf("seed %d: pair %s produced %d times", seed, k, c)
			}
		}
		am := &results[1].m.Adapt
		t.Logf("seed %d: reshapes=%d migrated=%d final=%dx%d", seed,
			am.Reshapes.Load(), am.MigratedTuples.Load(), am.FinalRows.Load(), am.FinalCols.Load())
		if am.Reshapes.Load() > 0 {
			reshaped = true
			break
		}
	}
	if !reshaped {
		t.Fatal("no seed produced a reshape: the remote gate protocol was never exercised")
	}
}

// TestNetWorkerLoss: when a worker's links drop mid-stream (the process
// died), every surviving worker's Run must fail promptly with a link error —
// fate-sharing, not a hang. The stream is throttled so the cut lands while
// data is in flight.
func TestNetWorkerLoss(t *testing.T) {
	const workers = 2
	mesh := dialMesh(t, workers)
	place := map[string]int{"src": 0, "double": 1, "sink": 0}
	planes := make([]*NetPlane, workers)
	for w := 0; w < workers; w++ {
		planes[w] = NewNetPlane(NetConfig{
			Self: w, Workers: workers, Place: place, Links: mesh[w],
		})
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		g := NewGather()
		topo, err := NewBuilder().
			Spout("src", 2, GenSpout(100_000, func(i int) types.Tuple {
				if i < 200 {
					time.Sleep(time.Millisecond)
				}
				return types.Tuple{types.Int(int64(i))}
			})).
			Bolt("double", 2, passBolt).
			Bolt("sink", 1, g.Factory()).
			Input("double", "src", Shuffle()).
			Input("sink", "double", Global()).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, topo *Topology) {
			defer wg.Done()
			_, err := Run(topo, Options{Seed: 1, Net: planes[w]})
			results[w] = workerResult{nil, err}
		}(w, topo)
	}
	// Cut worker 1's link while the throttled prefix is still streaming:
	// worker 0 must notice and abort.
	time.Sleep(50 * time.Millisecond)
	mesh[0][1].Close()
	mesh[1][0].Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("runs did not fail after losing a worker link")
	}
	for w, r := range results {
		if r.err == nil {
			t.Errorf("worker %d: run succeeded after its peer link dropped", w)
		} else if !strings.Contains(r.err.Error(), "link to worker") {
			t.Logf("worker %d failed with: %v", w, r.err) // any abort is acceptable; link error is typical
		}
	}
	for _, p := range planes {
		p.Shutdown()
	}
}
