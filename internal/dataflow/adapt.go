// Live adaptive 1-Bucket execution (§5, "Hypercube sizes"): the control
// plane that lets a running 2-way random-partitioned join reshape its
// rows x cols matrix as the observed |R| : |S| ratio drifts, migrating only
// the state whose cells change.
//
// The protocol per reshape:
//
//  1. Joiner tasks push periodic load reports (stored tuples per side) to a
//     per-run controller goroutine, which feeds them to the decision logic
//     shared with the offline operator (adaptive.Decide).
//  2. When a better matrix clears the hysteresis margin, the controller
//     closes a pause gate: producers route-and-send adaptive-edge tuples
//     inside the gate, so once the gate is drained every tuple routed under
//     the old matrix is already enqueued.
//  3. The controller enqueues a reshape barrier marker into every joiner
//     task's inbox. FIFO inboxes guarantee each task sees all old-epoch
//     tuples before the barrier.
//  4. On the barrier, each task resolves which sides it keeps (its cell
//     coordinates are unchanged between the matrices) and which it drops;
//     row/column primaries export the moving state to its new owners over
//     the ordinary wire batch framing — migration bytes are charged to the
//     sender's BytesOut exactly like any network transfer. Imports are
//     silent inserts: every pair among pre-barrier state already met at
//     exactly one old cell, so re-probing would double-count results.
//  5. When a task holds migration-done markers from every peer it acks the
//     controller; once all tasks ack, the controller installs the new
//     matrix and reopens the gate. New tuples route under the new shape.
//
// See DESIGN.md ("Runtime adaptation") for the cost accounting and the
// exactly-once argument.
package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"

	"squall/internal/adaptive"
	"squall/internal/types"
	"squall/internal/wire"
)

// Repartitioner is implemented by bolts whose per-relation state can be
// exported, discarded and re-imported while a run is live. Sides are the
// adaptive join's relation indexes (0 = R, the row side; 1 = S, the column
// side). The executor requires the adaptive component's bolts to implement
// this interface.
type Repartitioner interface {
	// StoredCount returns the stored tuples of one side (load reports).
	StoredCount(side int) int
	// ExportState snapshots the stored tuples of one side. The returned
	// slice must remain valid after ResetForReshape.
	ExportState(side int) []types.Tuple
	// ResetForReshape rebuilds local state retaining only the indicated
	// sides; dropped sides are refilled through ImportState.
	ResetForReshape(keep [2]bool) error
	// ImportState silently inserts migrated tuples: state is updated but no
	// join results are produced (the pairs already met pre-migration).
	ImportState(side int, tuples []types.Tuple) error
}

// FrameExporter is optionally implemented by Repartitioners whose state is
// stored wire-encoded (the slab layout): ExportStateFrames streams one
// side's stored tuples as ready-made wire batch frames of up to batchSize
// tuples, blitted from the packed rows without materializing []types.Value
// tuples. The frame buffer is only valid during the visit callback; visit
// returning false stops the stream. It reports false when the state is not
// frame-exportable (map layout), in which case the migration path falls
// back to ExportState. With footer set, uniform-arity frames carry a
// column-offset footer (PR 6); footers are advisory, so every frame
// consumer decodes footered exports identically.
type FrameExporter interface {
	ExportStateFrames(side, batchSize int, footer bool, visit func(frame []byte, count int) bool) bool
}

// AdaptivePolicy configures live 1-Bucket adaptation of one 2-way join
// component. The component's two input edges (from RStream and SStream) stop
// using their registered groupings: R tuples pick a random row of the
// current matrix and replicate across its columns, S tuples pick a random
// column and replicate across its rows.
type AdaptivePolicy struct {
	// Component names the joiner whose matrix adapts. All of its inputs
	// must come from RStream and SStream, and its bolts must implement
	// Repartitioner.
	Component string
	// RStream and SStream name the upstream components carrying the row
	// and column relations.
	RStream, SStream string
	// InitialRows x InitialCols is the starting matrix (must fit the
	// component's parallelism). Zero means the square-ish
	// adaptive.OptimalMatrix(par, 1, 1).
	InitialRows, InitialCols int
	// ReportEvery is how many processed tuples a joiner task waits between
	// load reports. Default 256.
	ReportEvery int
	// MinGain is the relative load improvement required to reshape
	// (hysteresis against oscillation). Default 0.2.
	MinGain float64
	// MinObserved defers the first reshape until this many tuples are
	// stored across tasks. Default 512.
	MinObserved int64
	// MaxReshapes caps reshapes per run when > 0.
	MaxReshapes int
	// Static freezes the initial matrix: tuples route through the adaptive
	// machinery but the controller never reshapes. This is the fixed-matrix
	// baseline adaptive runs are measured against.
	Static bool
}

func (p *AdaptivePolicy) withDefaults() AdaptivePolicy {
	q := *p
	if q.ReportEvery <= 0 {
		q.ReportEvery = 256
	}
	if q.MinGain <= 0 {
		q.MinGain = 0.2
	}
	if q.MinObserved <= 0 {
		q.MinObserved = 512
	}
	return q
}

// ctrlKind tags control-plane envelopes (zero on data envelopes).
type ctrlKind uint8

const (
	ctrlNone ctrlKind = iota
	// ctrlReshape is the barrier marker opening a migration round.
	ctrlReshape
	// ctrlMigBatch carries one wire frame of migrated state.
	ctrlMigBatch
	// ctrlMigDone marks the end of one peer's exports.
	ctrlMigDone
)

// reshapeCmd is the barrier payload: the matrices to migrate between.
type reshapeCmd struct {
	epoch     int
	old, next adaptive.Matrix
}

// migBatch is one chunk of migrated state.
type migBatch struct {
	epoch  int
	side   int
	tuples []types.Tuple
}

// loadReport is one joiner task's stored-state sizes, tagged with the
// reshape epoch the state was measured under: the controller aggregates
// only current-epoch reports, because counts measured under another matrix
// shape carry that shape's replication factors.
type loadReport struct {
	task  int
	epoch int
	r, s  int64
}

// AdaptMetrics counts live-reshape activity (all zero when no adaptation
// policy is installed). Migrated traffic is charged to the sending task's
// BytesOut but deliberately kept out of Sent/Received, which measure the
// query's own dataflow (replication factor, §6).
type AdaptMetrics struct {
	Reshapes       atomic.Int64 // completed reshape rounds
	MigratedTuples atomic.Int64 // tuple copies moved between tasks
	MigratedBytes  atomic.Int64 // serialized bytes of migrated state
	// FinalRows x FinalCols is the matrix the run ended on.
	FinalRows, FinalCols atomic.Int64
}

// adaptState is the per-run control plane: the pause gate producers route
// through, the controller's decision inputs, and the migration plumbing.
type adaptState struct {
	ex   *execution
	pol  AdaptivePolicy
	node *node // the adaptive joiner
	// sideByNode maps a producer node to 0 (R) or 1 (S).
	sideByNode map[*node]int

	mu       sync.Mutex
	matrix   adaptive.Matrix // current routing matrix (read inside the gate)
	paused   bool
	active   int           // producers inside the gate
	resumeCh chan struct{} // closed when the gate reopens
	idleCh   chan struct{} // closed when active hits 0 while paused
	// routeEpoch counts matrix installs: producers compare it against the
	// epoch of their pending batches and re-route stale ones.
	routeEpoch int

	// live counts producer tasks on adaptive edges that have not sent EOS;
	// decremented inside the gate, so after a pause the controller reads an
	// exact value: if 0, every joiner task may already have exited and a
	// barrier could never be acked.
	live atomic.Int64

	reports chan loadReport
	// acks carries each task's end-of-round acknowledgement together with
	// its post-migration load refresh: the delivery is blocking (unlike the
	// lossy periodic reports), so the controller's post-reshape picture is
	// complete by construction.
	acks     chan loadReport
	quit     chan struct{} // closed by Run after all tasks finish
	done     chan struct{} // closed when the controller goroutine exits
	exportWG sync.WaitGroup

	cur      adaptive.Matrix // controller's view; sole writer
	epoch    int
	reshapes int
	// latest holds each task's most recent load report (controller-owned:
	// written from run() and from reshape()'s ack wait, same goroutine).
	latest []loadReport
}

// initAdaptive validates the policy against the topology and installs the
// control plane on the execution.
func (ex *execution) initAdaptive(pol *AdaptivePolicy) error {
	p := pol.withDefaults()
	n, ok := ex.topo.byN[p.Component]
	if !ok || n.bolt == nil {
		return fmt.Errorf("dataflow: adaptive component %q is not a registered bolt", p.Component)
	}
	rn, ok := ex.topo.byN[p.RStream]
	if !ok {
		return fmt.Errorf("dataflow: adaptive R stream %q not registered", p.RStream)
	}
	sn, ok := ex.topo.byN[p.SStream]
	if !ok {
		return fmt.Errorf("dataflow: adaptive S stream %q not registered", p.SStream)
	}
	if rn == sn {
		return fmt.Errorf("dataflow: adaptive R and S streams must differ, both are %q", p.RStream)
	}
	// All inputs of the adaptive component must be the two adaptive edges:
	// any other producer would bypass the pause gate and break the barrier.
	if len(n.inputs) != 2 {
		return fmt.Errorf("dataflow: adaptive component %q needs exactly inputs %q and %q", p.Component, p.RStream, p.SStream)
	}
	for _, e := range n.inputs {
		if e.from != rn && e.from != sn {
			return fmt.Errorf("dataflow: adaptive component %q has non-adaptive input %q", p.Component, e.from.name)
		}
	}
	m := adaptive.Matrix{Rows: p.InitialRows, Cols: p.InitialCols}
	if m.Rows == 0 && m.Cols == 0 {
		m = adaptive.OptimalMatrix(n.par, 1, 1)
	}
	if m.Rows < 1 || m.Cols < 1 || m.Machines() > n.par {
		return fmt.Errorf("dataflow: adaptive matrix %dx%d does not fit %d tasks", m.Rows, m.Cols, n.par)
	}
	a := &adaptState{
		ex:         ex,
		pol:        p,
		node:       n,
		sideByNode: map[*node]int{rn: 0, sn: 1},
		matrix:     m,
		cur:        m,
		resumeCh:   make(chan struct{}),
		reports:    make(chan loadReport, 8*n.par),
		acks:       make(chan loadReport, n.par),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	liveCnt := rn.par + sn.par
	if ex.net != nil {
		// In a cluster run, live counts the producers hosted *here*; the
		// controller adds the remote workers' counts from their pause acks.
		liveCnt = 0
		if ex.net.owns(rn) {
			liveCnt += rn.par
		}
		if ex.net.owns(sn) {
			liveCnt += sn.par
		}
	}
	a.live.Store(int64(liveCnt))
	a.latest = make([]loadReport, n.par)
	ex.metrics.Adapt.FinalRows.Store(int64(m.Rows))
	ex.metrics.Adapt.FinalCols.Store(int64(m.Cols))
	ex.adapt = a
	return nil
}

// sidesFor returns, for one producer node, the adaptive side of each output
// edge (-1 for normal edges), or nil when the node has no adaptive edges.
func (a *adaptState) sidesFor(n *node) []int {
	side, ok := a.sideByNode[n]
	if !ok {
		return nil
	}
	out := make([]int, len(n.outputs))
	any := false
	for i, e := range n.outputs {
		out[i] = -1
		if e.to == a.node {
			out[i] = side
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// enter joins the pause gate, blocking while a reshape is in flight. It
// returns the routing matrix to use and its epoch (bumped whenever the
// matrix changes, so producers can detect pending batches routed under a
// superseded shape); ok is false when the run aborted.
func (a *adaptState) enter() (m adaptive.Matrix, epoch int, ok bool) {
	a.mu.Lock()
	for a.paused {
		ch := a.resumeCh
		a.mu.Unlock()
		select {
		case <-ch:
		case <-a.ex.abort:
			return adaptive.Matrix{}, 0, false
		}
		a.mu.Lock()
	}
	a.active++
	m = a.matrix
	epoch = a.routeEpoch
	a.mu.Unlock()
	return m, epoch, true
}

// exit leaves the gate, waking a paused controller once drained.
func (a *adaptState) exit() {
	a.mu.Lock()
	a.active--
	if a.active == 0 && a.paused && a.idleCh != nil {
		close(a.idleCh)
		a.idleCh = nil
	}
	a.mu.Unlock()
}

// pause closes the gate and waits until no producer is inside it: at that
// point every tuple routed under the old matrix is enqueued, so a barrier
// marker enqueued next is ordered after all of them.
func (a *adaptState) pause() bool {
	a.mu.Lock()
	a.paused = true
	a.resumeCh = make(chan struct{})
	if a.active == 0 {
		a.mu.Unlock()
		return true
	}
	idle := make(chan struct{})
	a.idleCh = idle
	a.mu.Unlock()
	select {
	case <-idle:
		return true
	case <-a.ex.abort:
		return false
	}
}

// resume installs the matrix and reopens the gate.
func (a *adaptState) resume(m adaptive.Matrix) {
	a.mu.Lock()
	if m != a.matrix {
		a.matrix = m
		a.routeEpoch++
	}
	a.paused = false
	ch := a.resumeCh
	a.mu.Unlock()
	close(ch)
}

// report delivers one task's load report, dropping it when the controller
// is busy (reports are advisory; the next one supersedes).
func (a *adaptState) report(task, epoch int, rep Repartitioner) {
	select {
	case a.reports <- loadReport{task: task, epoch: epoch, r: int64(rep.StoredCount(0)), s: int64(rep.StoredCount(1))}:
	default:
	}
}

// run is the controller goroutine: aggregate load reports, decide, reshape.
func (a *adaptState) run() {
	defer close(a.done)
	for {
		select {
		case rep := <-a.reports:
			a.latest[rep.task] = rep
		case <-a.ex.abort:
			return
		case <-a.quit:
			return
		}
		// Drain whatever else is already queued before deciding: after a
		// reshape every task's refresh report is enqueued before its ack,
		// so this guarantees the first post-reshape decision sees all of
		// them rather than a single task's slice of the new placement.
		for drained := false; !drained; {
			select {
			case rep := <-a.reports:
				a.latest[rep.task] = rep
			default:
				drained = true
			}
		}
		if a.pol.Static {
			continue
		}
		if a.pol.MaxReshapes > 0 && a.reshapes >= a.pol.MaxReshapes {
			continue
		}
		// Aggregate only reports measured under the current matrix: counts
		// from another epoch carry that shape's replication factors, and a
		// partial post-reshape view (one task's counts, the rest missing)
		// whipsaws the observed ratio. Every task re-reports the instant it
		// finishes a migration round, so the picture is complete again right
		// after each reshape.
		var storedR, storedS int64
		for _, rep := range a.latest {
			if rep.epoch == a.epoch {
				storedR += rep.r
				storedS += rep.s
			}
		}
		// Tasks store replicated copies — an R tuple lives on every cell of
		// its row — so the summed counts overstate the relation sizes by the
		// current replication factors. Undo them, or the decision would
		// chase its own matrix shape and oscillate.
		r := float64(storedR) / float64(a.cur.Cols)
		s := float64(storedS) / float64(a.cur.Rows)
		if r+s < float64(a.pol.MinObserved) {
			continue
		}
		next, ok := adaptive.Decide(a.node.par, a.cur, r, s, a.pol.MinGain)
		if !ok {
			continue
		}
		if !a.reshape(next) {
			return
		}
	}
}

// reshape runs one barrier/migrate/resume round. It reports false when the
// run is shutting down (abort, or all tasks already finished). The round
// holds the execution's roundMu end to end, serializing it against recovery
// rounds (recover.go) — a task is never migrating and restoring at once, and
// the recovery manager reads a.cur under the same lock.
func (a *adaptState) reshape(next adaptive.Matrix) bool {
	a.ex.roundMu.Lock()
	defer a.ex.roundMu.Unlock()
	if !a.pause() {
		return false
	}
	// Cluster round: pause the adaptive gate on every remote producer worker
	// (their acks report how many of their producers are still live), then
	// flush in-flight remote data ahead of the barrier markers with tokens
	// through every joiner inbox — post-barrier data mid-migration is a
	// protocol violation the executor fails on.
	var remoteLive int64
	if a.ex.net != nil {
		var ok bool
		if remoteLive, ok = a.ex.net.pauseRemote(planeAdapt, a.node); !ok {
			return false
		}
	}
	// If every adaptive producer has already EOS'd, joiner tasks may have
	// exited and a barrier would never be acked: the stream is over, so the
	// reshape is pointless anyway.
	if a.live.Load()+remoteLive == 0 {
		if a.ex.net != nil && !a.ex.net.resumeRemote(planeAdapt, a.node, a.cur.Rows, a.cur.Cols) {
			return false
		}
		a.resume(a.cur)
		return true
	}
	if a.ex.net != nil && !a.ex.net.quiesce(a.node, allTasks(a.node)) {
		return false
	}
	a.epoch++
	cmd := &reshapeCmd{epoch: a.epoch, old: a.cur, next: next}
	for t := 0; t < a.node.par; t++ {
		if !a.sendCtrl(t, envelope{ctrl: ctrlReshape, cmd: cmd}) {
			return false
		}
	}
	for got := 0; got < a.node.par; {
		select {
		case ack := <-a.acks:
			a.latest[ack.task] = ack
			got++
		case rep := <-a.reports:
			// Keep draining the lossy periodic queue while waiting; stale
			// pre-pause entries are epoch-filtered at aggregation time.
			a.latest[rep.task] = rep
		case <-a.ex.abort:
			return false
		case <-a.quit:
			return false
		}
	}
	a.cur = next
	a.reshapes++
	a.ex.metrics.Adapt.Reshapes.Add(1)
	a.ex.metrics.Adapt.FinalRows.Store(int64(next.Rows))
	a.ex.metrics.Adapt.FinalCols.Store(int64(next.Cols))
	if a.ex.net != nil && !a.ex.net.resumeRemote(planeAdapt, a.node, next.Rows, next.Cols) {
		return false
	}
	a.resume(next)
	return true
}

func (a *adaptState) sendCtrl(task int, env envelope) bool {
	select {
	case a.ex.inboxes[a.node][task] <- env:
		return true
	case <-a.ex.abort:
		return false
	case <-a.quit:
		return false
	}
}

// migSession tracks one joiner task's progress through a migration round.
type migSession struct {
	epoch int
	dones int // peers (including self) whose exports have fully arrived
}

func (s *migSession) complete(par int) bool { return s.dones == par }

// sideExport is the state one primary ships for one side: either pre-built
// wire batch frames (slab-backed state, snapshotted by blitting rows) or
// materialized tuples (map layout, or the NoSerialize path).
type sideExport struct {
	frames [][]byte // each a complete wire batch frame
	tuples []types.Tuple
	dests  []int
}

// snapshotExport captures one side's state before ResetForReshape rebuilds
// it. With serialization on and frame-exporting state it copies the packed
// frames — encoded bytes, no tuple materialization; otherwise it snapshots
// decoded tuples.
func (a *adaptState) snapshotExport(rep Repartitioner, side int, dests []int) sideExport {
	exp := sideExport{dests: dests}
	if !a.ex.opts.NoSerialize {
		if fe, ok := rep.(FrameExporter); ok {
			done := fe.ExportStateFrames(side, a.ex.opts.BatchSize, a.ex.opts.VecExec, func(frame []byte, _ int) bool {
				exp.frames = append(exp.frames, append([]byte(nil), frame...))
				return true
			})
			if done {
				return exp
			}
		}
	}
	exp.tuples = rep.ExportState(side)
	return exp
}

// beginMigration runs the task-local half of the barrier: resolve what this
// task keeps, snapshot what it must export as a primary, rebuild local
// state, and ship the exports from a sender goroutine (the task's main loop
// keeps draining its inbox, so peer exchanges cannot deadlock on full
// inboxes).
func (a *adaptState) beginMigration(task int, rep Repartitioner, tm *TaskMetrics, cmd *reshapeCmd) (*migSession, error) {
	old, next := cmd.old, cmd.next
	var exports [2]sideExport
	var keep [2]bool
	if task < old.Rows*old.Cols { // task held state under the old matrix
		row, col := task/old.Cols, task%old.Cols
		newRow, newCol := row%next.Rows, col%next.Cols
		inNew := task < next.Rows*next.Cols
		// A side survives in place iff this task is a cell of the new
		// matrix on the same (wrapped) coordinate, i.e. the cell does not
		// change for that side — the paper's "only the state that changes
		// cells migrates".
		keep[0] = inNew && task/next.Cols == newRow
		keep[1] = inNew && task%next.Cols == newCol
		if col == 0 {
			// Leftmost cell of each old row holds the row's entire R state
			// (row-side tuples replicate across columns): it is the row's
			// primary, exporting to the new row's cells that don't already
			// hold the state (old cells of this row that keep it).
			var dests []int
			for c := 0; c < next.Cols; c++ {
				d := newRow*next.Cols + c
				if d < old.Rows*old.Cols && d/old.Cols == row {
					continue // old holder, retains in place
				}
				dests = append(dests, d)
			}
			if len(dests) > 0 {
				exports[0] = a.snapshotExport(rep, 0, dests)
			}
		}
		if row == 0 {
			// Topmost cell of each old column: the column's S primary.
			var dests []int
			for r := 0; r < next.Rows; r++ {
				d := r*next.Cols + newCol
				if d < old.Rows*old.Cols && d%old.Cols == col {
					continue
				}
				dests = append(dests, d)
			}
			if len(dests) > 0 {
				exports[1] = a.snapshotExport(rep, 1, dests)
			}
		}
	}
	if err := rep.ResetForReshape(keep); err != nil {
		return nil, err
	}
	a.exportWG.Add(1)
	go a.sendExports(task, tm, cmd.epoch, exports)
	return &migSession{epoch: cmd.epoch}, nil
}

// sendExports ships one task's exports as wire batch frames, then marks the
// end of its exports to every peer. Slab-backed state arrives as pre-built
// frames (snapshotExport blitted the packed rows), so this path never
// re-encodes; map-layout tuples are chunked and encoded here. Runs
// concurrently with the task's main loop; TaskMetrics fields are atomics.
func (a *adaptState) sendExports(task int, tm *TaskMetrics, epoch int, exports [2]sideExport) {
	defer a.exportWG.Done()
	var scratch []byte
	var dec wire.BatchDecoder
	batchSize := a.ex.opts.BatchSize
	// shipFrame delivers one encoded frame to every destination, each
	// receiving its own decoded copies and the sender charged the frame
	// bytes, exactly like a data hop (DESIGN.md substitution table).
	shipFrame := func(frame []byte, side int, dests []int) bool {
		for _, d := range dests {
			out, _, err := dec.Decode(frame)
			if err != nil {
				a.ex.fail(fmt.Errorf("dataflow: migration wire corruption at %s[%d]: %w", a.node.name, task, err))
				return false
			}
			tm.BytesOut.Add(int64(len(frame)))
			a.ex.metrics.Adapt.MigratedBytes.Add(int64(len(frame)))
			a.ex.metrics.Adapt.MigratedTuples.Add(int64(len(out)))
			env := envelope{from: task, ctrl: ctrlMigBatch, mig: &migBatch{epoch: epoch, side: side, tuples: out}}
			if !a.ex.send(a.node, d, env) {
				return false
			}
		}
		return true
	}
	for side, exp := range exports {
		for _, frame := range exp.frames {
			if !shipFrame(frame, side, exp.dests) {
				return
			}
		}
		for start := 0; start < len(exp.tuples); start += batchSize {
			end := start + batchSize
			if end > len(exp.tuples) {
				end = len(exp.tuples)
			}
			chunk := exp.tuples[start:end]
			if a.ex.opts.NoSerialize {
				for _, d := range exp.dests {
					a.ex.metrics.Adapt.MigratedTuples.Add(int64(len(chunk)))
					env := envelope{from: task, ctrl: ctrlMigBatch, mig: &migBatch{epoch: epoch, side: side, tuples: chunk}}
					if !a.ex.send(a.node, d, env) {
						return
					}
				}
				continue
			}
			scratch = wire.EncodeBatch(scratch[:0], chunk)
			if !shipFrame(scratch, side, exp.dests) {
				return
			}
		}
	}
	for d := 0; d < a.node.par; d++ {
		if !a.ex.send(a.node, d, envelope{from: task, ctrl: ctrlMigDone, mig: &migBatch{epoch: epoch}}) {
			return
		}
	}
}

// applyMig folds one control envelope into the task's migration session.
func (a *adaptState) applyMig(mig *migSession, rep Repartitioner, env envelope) error {
	switch env.ctrl {
	case ctrlMigBatch:
		if env.mig.epoch != mig.epoch {
			return fmt.Errorf("dataflow: migration batch for epoch %d during epoch %d", env.mig.epoch, mig.epoch)
		}
		return rep.ImportState(env.mig.side, env.mig.tuples)
	case ctrlMigDone:
		mig.dones++
		return nil
	default:
		return fmt.Errorf("dataflow: unexpected control envelope %d mid-migration", env.ctrl)
	}
}

// ackMigration tells the controller this task finished the round, carrying
// the task's post-migration load refresh so the controller's first
// post-reshape decision aggregates every task's slice of the new placement.
func (a *adaptState) ackMigration(task, epoch int, rep Repartitioner) {
	ack := loadReport{task: task, epoch: epoch, r: int64(rep.StoredCount(0)), s: int64(rep.StoredCount(1))}
	select {
	case a.acks <- ack:
	case <-a.ex.abort:
	case <-a.quit:
	}
}

// producerEOS flushes an adaptive edge's pending batches and broadcasts the
// producer task's EOS, all from inside the gate, so a paused reshape never
// interleaves with them; it then retires the producer from the live count
// before releasing the gate (the controller must observe an exact count
// after any pause).
func (c *Collector) producerEOS(ei int) {
	a := c.ex.adapt
	e := c.node.outputs[ei]
	m, epoch, ok := a.enter()
	if !ok {
		a.live.Add(-1) // aborting; the controller is unwinding too
		return
	}
	// The decrement must happen before exit(): the controller reads live
	// right after draining the gate, and a retired producer observed late
	// would let it open a barrier that joiner tasks (their EOS set already
	// complete) will never read.
	defer a.exit()
	defer a.live.Add(-1)
	if c.adaptEpoch != epoch {
		if err := c.rerouteAdaptive(m); err != nil {
			c.ex.fail(fmt.Errorf("dataflow: %s[%d] final adaptive reroute: %w", c.node.name, c.task, err))
			return
		}
		c.adaptEpoch = epoch
	}
	side := c.adaptSide[ei]
	for coord := range c.adaptOut[ei] {
		if err := c.flushAdaptive(ei, side, coord, m); err != nil {
			// Abort (send refused) is a no-op; surface wire corruption.
			c.ex.fail(fmt.Errorf("dataflow: %s[%d] final adaptive flush: %w", c.node.name, c.task, err))
			return
		}
	}
	for target := 0; target < e.to.par; target++ {
		if !c.ex.send(e.to, target, envelope{stream: c.node.name, from: c.task, eos: true}) {
			return
		}
	}
}

// emitAdaptive routes one tuple on an adaptive edge: 1-Bucket routing under
// the current matrix. Tuples are buffered once per edge under their picked
// coordinate (row for the R side, column for S); a flush replicates the
// frame to every cell of the coordinate, so PR 1's batch amortization
// survives replication without per-cell tuple copies. If the matrix changed
// since the last emit, pending (unsent) batches are re-routed under the new
// shape first — they were never delivered, so they are not state anywhere
// and re-routing them is indistinguishable from fresh arrivals.
func (c *Collector) emitAdaptive(ei, side int, t types.Tuple) error {
	a := c.ex.adapt
	m, epoch, ok := a.enter()
	if !ok {
		return c.ex.abortErr()
	}
	defer a.exit()
	if c.adaptEpoch != epoch {
		if err := c.rerouteAdaptive(m); err != nil {
			return err
		}
		c.adaptEpoch = epoch
	}
	return c.routeAdaptive(ei, side, t, m)
}

// routeAdaptive buffers t under a random coordinate of m, flushing the
// coordinate's batch when full. Must run inside the gate.
func (c *Collector) routeAdaptive(ei, side int, t types.Tuple, m adaptive.Matrix) error {
	coord := c.rng.Intn(m.Rows)
	if side == 1 {
		coord = c.rng.Intn(m.Cols)
	}
	c.adaptOut[ei][coord] = append(c.adaptOut[ei][coord], t)
	if len(c.adaptOut[ei][coord]) >= c.batchSize {
		return c.flushAdaptive(ei, side, coord, m)
	}
	return nil
}

// flushAdaptive ships one coordinate's pending batch to every cell of that
// row (side 0) or column (side 1): one wire frame encoded once, decoded per
// destination, each destination charged like a unicast transfer (the
// DESIGN.md substitution). Must run inside the gate.
func (c *Collector) flushAdaptive(ei, side, coord int, m adaptive.Matrix) error {
	batch := c.adaptOut[ei][coord]
	if len(batch) == 0 {
		return nil
	}
	e := c.node.outputs[ei]
	c.tbuf = c.tbuf[:0]
	if side == 0 {
		for col := 0; col < m.Cols; col++ {
			c.tbuf = append(c.tbuf, coord*m.Cols+col)
		}
	} else {
		for row := 0; row < m.Rows; row++ {
			c.tbuf = append(c.tbuf, row*m.Cols+coord)
		}
	}
	// On a recovery-tracked edge each destination's copy is stamped with its
	// own (producer, target) sequence and retained for replay; the caller
	// already holds the recovery gate (emitAdaptiveGated / eos).
	tracked := c.recTracked != nil && c.recTracked[ei]
	if c.ex.opts.NoSerialize {
		// Destinations share the (immutable) tuples and the slice; the
		// buffer cannot be reused because consumers own what they receive.
		out := batch
		c.adaptOut[ei][coord] = make([]types.Tuple, 0, c.batchSize)
		for _, target := range c.tbuf {
			c.metrics.Sent.Add(int64(len(out)))
			c.metrics.Batches.Add(1)
			env := envelope{stream: c.node.name, from: c.task, batch: out}
			if tracked {
				c.recSeq[ei][target]++
				env.seq = c.recSeq[ei][target]
				c.ex.rec.record(c.recPid, target, replayEnt{seq: env.seq, tuples: out, count: len(out)})
			}
			if !c.ex.send(e.to, target, env) {
				return c.ex.abortErr()
			}
		}
		return nil
	}
	c.scratch = wire.EncodeBatch(c.scratch[:0], batch)
	c.adaptOut[ei][coord] = batch[:0]
	var sharedFrame []byte // one retained copy backs every destination's entry
	for _, target := range c.tbuf {
		out, _, err := c.dec.Decode(c.scratch)
		if err != nil {
			return fmt.Errorf("dataflow: wire corruption on %s->%s: %w", e.from.name, e.to.name, err)
		}
		c.metrics.BytesOut.Add(int64(len(c.scratch)))
		c.metrics.Sent.Add(int64(len(out)))
		c.metrics.Batches.Add(1)
		env := envelope{stream: c.node.name, from: c.task, batch: out}
		if tracked {
			if sharedFrame == nil {
				sharedFrame = append([]byte(nil), c.scratch...)
			}
			c.recSeq[ei][target]++
			env.seq = c.recSeq[ei][target]
			c.ex.rec.record(c.recPid, target, replayEnt{seq: env.seq, frame: sharedFrame, count: len(out)})
		}
		if !c.ex.send(e.to, target, env) {
			return c.ex.abortErr()
		}
	}
	return nil
}

// rerouteAdaptive re-assigns every pending (unsent) adaptive batch under
// the new matrix. All coordinates are drained before any tuple is
// re-routed — a tuple re-buffered into a not-yet-visited coordinate must
// not be picked up twice. Must run inside the gate.
func (c *Collector) rerouteAdaptive(m adaptive.Matrix) error {
	for ei, side := range c.adaptSide {
		if side < 0 {
			continue
		}
		pending := c.adaptReroute[:0]
		for coord, batch := range c.adaptOut[ei] {
			pending = append(pending, batch...)
			c.adaptOut[ei][coord] = batch[:0]
		}
		c.adaptReroute = pending
		for _, t := range pending {
			if err := c.routeAdaptive(ei, side, t, m); err != nil {
				return err
			}
		}
	}
	return nil
}
