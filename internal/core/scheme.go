package core

import (
	"fmt"

	"squall/internal/expr"
)

// SchemeKind selects a hypercube partitioning scheme.
type SchemeKind uint8

const (
	// HashHypercube [8]: one dimension per join-key equivalence class, hash
	// partitioning everywhere. No replication beyond what correctness
	// requires, but prone to data, temporal and hash-imperfection skew, and
	// limited to equi-join keys (sides of non-equi conjuncts get their own
	// hash dimensions, which is only safe when they are skew-free).
	HashHypercube SchemeKind = iota
	// RandomHypercube [74]: one dimension per relation, random partitioning
	// everywhere (the multi-way generalization of the 1-Bucket scheme [54]).
	// Perfect load balance and support for arbitrary theta-joins, at the
	// price of the highest replication.
	RandomHypercube
	// HybridHypercube (this paper): hash partitioning on skew-free join
	// keys, random partitioning (with renaming, §4) exactly where skew
	// demands it. Subsumes the other two schemes: with no skew declared it
	// equals the Hash-Hypercube; with everything skewed it degenerates to
	// Random-Hypercube behaviour.
	HybridHypercube
)

// String names the scheme like the paper.
func (k SchemeKind) String() string {
	switch k {
	case HashHypercube:
		return "Hash-Hypercube"
	case RandomHypercube:
		return "Random-Hypercube"
	case HybridHypercube:
		return "Hybrid-Hypercube"
	default:
		return fmt.Sprintf("SchemeKind(%d)", uint8(k))
	}
}

// BuildScheme constructs the partitioning for a multi-way join over at most
// `machines` joiner tasks (§4). The returned hypercube may use fewer
// machines when that minimizes the maximum load per machine.
func BuildScheme(kind SchemeKind, spec JoinSpec, machines int) (*Hypercube, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	var attrs []attribute
	switch kind {
	case HashHypercube:
		attrs = buildAttributes(&spec, false, func(KeySlot) bool { return false })
	case RandomHypercube:
		attrs = buildAttributes(&spec, true, nil)
	case HybridHypercube:
		attrs = buildAttributes(&spec, false, spec.isSkewed)
	default:
		return nil, fmt.Errorf("core: unknown scheme kind %d", kind)
	}
	res, err := solveDims(&spec, attrs, machines)
	if err != nil {
		return nil, err
	}
	return assemble(kind, &spec, attrs, res), nil
}

// solveDims translates attributes into the optimizer problem and solves it.
// Only join keys become dimensions (§4's observation that non-join
// attributes never reduce the load), which the attribute construction
// already guarantees.
func solveDims(spec *JoinSpec, attrs []attribute, machines int) (optResult, error) {
	n := spec.Graph.NumRels
	p := optProblem{
		sizes:    spec.Sizes,
		dims:     make([][]int, n),
		topFreq:  make([][]float64, n),
		modes:    make([]PartMode, len(attrs)),
		nattrs:   len(attrs),
		machines: machines,
	}
	for ai, a := range attrs {
		p.modes[ai] = a.mode
		seen := map[int]bool{}
		for _, s := range a.slots {
			if seen[s.rel] {
				continue
			}
			seen[s.rel] = true
			p.dims[s.rel] = append(p.dims[s.rel], ai)
			f := 0.0
			if a.mode == ModeHash {
				// Worst top-key frequency among this relation's slots on the
				// attribute (usually one slot).
				for _, s2 := range a.slots {
					if s2.rel == s.rel && s2.e != nil {
						if tf := spec.topFreq(s2.key()); tf > f {
							f = tf
						}
					}
				}
			}
			p.topFreq[s.rel] = append(p.topFreq[s.rel], f)
		}
	}
	return optimize(p)
}

// ChooseSkewedOffline implements the offline scheme chooser of §3.4: for
// every join-key slot with known top-key frequency, it runs the optimizer
// twice — once with the slot marked skewed (forcing random partitioning) and
// once marked uniform (hash, with the top-frequency load model) — and keeps
// the marking with the smaller predicted maximum load per machine. The
// returned map is a Skewed assignment for BuildScheme(HybridHypercube, ...).
func ChooseSkewedOffline(spec JoinSpec, machines int) (map[KeySlot]bool, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	chosen := map[KeySlot]bool{}
	for k := range spec.Skewed {
		if spec.Skewed[k] {
			chosen[k] = true
		}
	}
	// Greedy per-slot decision in deterministic order over TopFreq keys.
	slots := make([]KeySlot, 0, len(spec.TopFreq))
	for k := range spec.TopFreq {
		slots = append(slots, k)
	}
	sortSlots(slots)
	evalWith := func(m map[KeySlot]bool) (float64, error) {
		s2 := spec
		s2.Skewed = m
		attrs := buildAttributes(&s2, false, s2.isSkewed)
		res, err := solveDims(&s2, attrs, machines)
		if err != nil {
			return 0, err
		}
		return res.maxLoad, nil
	}
	for _, slot := range slots {
		if chosen[slot] {
			continue
		}
		asUniform, err := evalWith(chosen)
		if err != nil {
			return nil, err
		}
		trial := map[KeySlot]bool{slot: true}
		for k, v := range chosen {
			trial[k] = v
		}
		asSkewed, err := evalWith(trial)
		if err != nil {
			return nil, err
		}
		if asSkewed < asUniform {
			chosen[slot] = true
		}
	}
	return chosen, nil
}

func sortSlots(slots []KeySlot) {
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0; j-- {
			a, b := slots[j-1], slots[j]
			if a.Rel < b.Rel || (a.Rel == b.Rel && a.Expr <= b.Expr) {
				break
			}
			slots[j-1], slots[j] = slots[j], slots[j-1]
		}
	}
}

// FewDistinctSkewed is the §3.4 rule for relations with only a few distinct
// join keys: if the distinct count is below the machine budget, hash
// partitioning would idle most machines, so the key should be treated as
// skewed (random partitioning).
func FewDistinctSkewed(distinct int64, machines int) bool {
	return distinct > 0 && distinct < int64(machines)
}

// TwoWayHash is the 2-way specialization of the Hash-Hypercube: plain hash
// partitioning on the equi-join key (§3.1, "2-way join schemes").
func TwoWayHash(spec JoinSpec, machines int) (*Hypercube, error) {
	if spec.Graph.NumRels != 2 {
		return nil, fmt.Errorf("core: TwoWayHash needs exactly 2 relations")
	}
	if !spec.Graph.IsEquiOnly() {
		return nil, fmt.Errorf("core: hash partitioning supports only equi-joins; use OneBucket")
	}
	return BuildScheme(HashHypercube, spec, machines)
}

// OneBucket is the 2-way specialization of the Random-Hypercube: random
// partitioning over a matrix [54]. It supports arbitrary theta-joins and is
// resilient to data and temporal skew.
func OneBucket(spec JoinSpec, machines int) (*Hypercube, error) {
	if spec.Graph.NumRels != 2 {
		return nil, fmt.Errorf("core: OneBucket needs exactly 2 relations")
	}
	return BuildScheme(RandomHypercube, spec, machines)
}

// Ensure expr is linked in the doc example below.
var _ = expr.Eq
