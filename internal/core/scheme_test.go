package core

import (
	"math"
	"testing"

	"squall/internal/expr"
)

// chainSpec builds the paper's §3.1 running example R(x,y) ⋈ S(y,z) ⋈ T(z,t)
// with equal relation sizes H.
func chainSpec(h int64) JoinSpec {
	return JoinSpec{
		Graph: expr.MustJoinGraph(3,
			expr.EquiCol(0, 1, 1, 0), // R.y = S.y
			expr.EquiCol(1, 1, 2, 0), // S.z = T.z
		),
		Names: []string{"R", "S", "T"},
		Sizes: []int64{h, h, h},
	}
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func dimSizes(hc *Hypercube) map[string]int {
	m := map[string]int{}
	for _, d := range hc.Dims {
		m[d.Name] = d.Size
	}
	return m
}

// TestSection31HashHypercubeUniform reproduces Figure 2a: with 64 machines
// and uniform data the Hash-Hypercube picks y×z = 8×8 and the load per
// machine is |R|/8 + |S|/64 + |T|/8 ≈ 0.26H.
func TestSection31HashHypercubeUniform(t *testing.T) {
	const h = 1 << 20
	hc, err := BuildScheme(HashHypercube, chainSpec(h), 64)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Machines() != 64 || len(hc.Dims) != 2 {
		t.Fatalf("scheme = %v, want 8x8 over 64 machines", hc)
	}
	for _, d := range hc.Dims {
		if d.Size != 8 || d.Mode != ModeHash {
			t.Errorf("dim %+v, want hash size 8", d)
		}
	}
	approx(t, "avg load", hc.PredictedAvgLoad()/h, 0.2656, 0.001)
	// No replication beyond: R and T replicate 8x, S none: total 17H.
	approx(t, "replication", hc.PredictedReplicationFactor(), 17.0/3.0, 0.01)
}

// TestSection31RandomHypercube reproduces Figure 2b: dimensions 4×4×4 and
// load 3·H/4 = 0.75H regardless of skew; total load 48H.
func TestSection31RandomHypercube(t *testing.T) {
	const h = 1 << 20
	hc, err := BuildScheme(RandomHypercube, chainSpec(h), 64)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Machines() != 64 || len(hc.Dims) != 3 {
		t.Fatalf("scheme = %v, want 4x4x4", hc)
	}
	for _, d := range hc.Dims {
		if d.Size != 4 || d.Mode != ModeRandom {
			t.Errorf("dim %+v, want random size 4", d)
		}
	}
	approx(t, "avg load", hc.PredictedAvgLoad()/h, 0.75, 0.001)
	approx(t, "replication", hc.PredictedReplicationFactor(), 16.0, 0.01)
	if hc.ContentSensitive() {
		t.Error("Random-Hypercube must be content-insensitive")
	}
}

// TestSection31HashUnderSkew reproduces Figure 2c: with the most frequent z
// key holding half the mass in S and T, the 8×8 Hash-Hypercube's maximum
// load estimate is |R|/8 + ((1-f)|S|/64 + f|S|/8) + ((1-f)|T|/8 + f|T|) ≈
// 0.76H — the same ballpark as the paper's cruder ≈0.69H estimate, and far
// above the uniform 0.26H.
func TestSection31HashUnderSkew(t *testing.T) {
	const h = 1 << 20
	spec := chainSpec(h)
	spec.TopFreq = map[KeySlot]float64{
		SlotCol(1, 1): 0.5, // S.z
		SlotCol(2, 0): 0.5, // T.z
	}
	hc, err := BuildScheme(HashHypercube, spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Sizing stays the uniform-optimal 8×8 (the scheme is skew-oblivious).
	for _, d := range hc.Dims {
		if d.Size != 8 {
			t.Fatalf("scheme = %v, want 8x8", hc)
		}
	}
	approx(t, "max load under skew", hc.PredictedMaxLoad()/h, 0.7578, 0.01)
	approx(t, "avg load", hc.PredictedAvgLoad()/h, 0.2656, 0.001)
}

// TestSection31HybridHypercube reproduces Figure 2d: S.z and T.z are skewed,
// so both are renamed to random singleton dimensions; y stays a shared hash
// dimension. The optimizer drops z' (S is already partitioned via y) and
// chooses y=9 × z”=7 (63 of 64 machines) with max load (|R|+|S|)/9 + |T|/7
// ≈ 0.365H — the paper's "≈ 0.36H", about 2× better than both the
// Random-Hypercube (0.75H) and the skewed Hash-Hypercube (≈0.7H), matching
// the quoted 2.08× / 1.92× improvements. (The paper's prose prints the
// formula with denominators swapped; 0.36H is only reachable as 2H/9 + H/7.)
func TestSection31HybridHypercube(t *testing.T) {
	const h = 1 << 20
	spec := chainSpec(h)
	spec.Skewed = map[KeySlot]bool{
		SlotCol(1, 1): true, // S.z zipfian
		SlotCol(2, 0): true, // T.z zipfian
	}
	hc, err := BuildScheme(HybridHypercube, spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Machines() != 63 || len(hc.Dims) != 2 {
		t.Fatalf("scheme = %v, want 9x7 over 63 machines", hc)
	}
	var hashDims, randDims int
	for _, d := range hc.Dims {
		switch d.Mode {
		case ModeHash:
			hashDims++
			if d.Size != 9 {
				t.Errorf("hash dim %+v, want y of size 9", d)
			}
		case ModeRandom:
			randDims++
			if d.Size != 7 {
				t.Errorf("random dim %+v, want z'' of size 7", d)
			}
		}
	}
	if hashDims != 1 || randDims != 1 {
		t.Errorf("want one hash (y) and one random (z'') dim, got %v", hc)
	}
	approx(t, "max load", hc.PredictedMaxLoad()/h, 0.3651, 0.001)
	// Hybrid beats Random by ~2.05x (paper: 2.08x).
	if ratio := 0.75 * h / hc.PredictedMaxLoad(); ratio < 1.9 {
		t.Errorf("Hybrid/Random improvement = %.2fx, want ~2x", ratio)
	}
}

// TestHybridSubsumesHash: with no skew declared and equi-joins only, the
// Hybrid-Hypercube produces exactly the Hash-Hypercube partitioning (§3.1).
func TestHybridSubsumesHash(t *testing.T) {
	spec := chainSpec(1 << 20)
	hhc, err := BuildScheme(HashHypercube, spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	yhc, err := BuildScheme(HybridHypercube, spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hhc.String() != yhc.String() {
		t.Errorf("Hybrid %v != Hash %v with no skew", yhc, hhc)
	}
}

// TestHybridAllSkewedActsLikeRandom: with every join key skewed the Hybrid
// scheme uses random partitioning on every dimension (content-insensitive),
// the Random-Hypercube's defining property.
func TestHybridAllSkewedActsLikeRandom(t *testing.T) {
	spec := chainSpec(1 << 20)
	spec.Skewed = map[KeySlot]bool{
		SlotCol(0, 1): true, SlotCol(1, 0): true,
		SlotCol(1, 1): true, SlotCol(2, 0): true,
	}
	hc, err := BuildScheme(HybridHypercube, spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hc.ContentSensitive() {
		t.Errorf("all-skewed Hybrid must be content-insensitive: %v", hc)
	}
}

// tpch9Spec is the TPCH9-Partial join Lineitem ⋈ PartSupp ⋈ Part:
// L.pk = PS.pk = P.pk and L.sk = PS.sk. Columns: L=(pk, sk, ...),
// PS=(pk, sk, ...), P=(pk, ...). Sizes follow TPC-H with the Q9 Part filter
// applied (Part ≈ 0.1M at 10G scale; see EXPERIMENTS.md).
func tpch9Spec(l, ps, p int64) JoinSpec {
	return JoinSpec{
		Graph: expr.MustJoinGraph(3,
			expr.EquiCol(0, 0, 1, 0), // L.pk = PS.pk
			expr.EquiCol(0, 1, 1, 1), // L.sk = PS.sk
			expr.EquiCol(0, 0, 2, 0), // L.pk = P.pk
		),
		Names: []string{"LINEITEM", "PARTSUPP", "PART"},
		Sizes: []int64{l, ps, p},
	}
}

// TestTPCH9Partial10G reproduces the 10G/8J row of Tables 1 and 2:
// Hash picks pk=8 (replication 1.0, avg 8.5M), Random picks 1×1×8
// (load 15.6M, replication 1.83), Hybrid renames the skewed L.pk and picks
// sk=8 (avg 8.6M, replication 1.01).
func TestTPCH9Partial10G(t *testing.T) {
	const l, ps, p = 60_000_000, 8_000_000, 100_000
	spec := tpch9Spec(l, ps, p)

	hash, err := BuildScheme(HashHypercube, spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "hash avg (Table 1: 8.5M)", hash.PredictedAvgLoad(), 8.5125e6, 1e4)
	approx(t, "hash replication (Table 2: 1)", hash.PredictedReplicationFactor(), 1.0, 0.01)

	random, err := BuildScheme(RandomHypercube, spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "random load (Table 1: 15.6M)", random.PredictedAvgLoad(), 15.6e6, 2e4)
	approx(t, "random replication (Table 2: 1.83)", random.PredictedReplicationFactor(), 1.83, 0.01)

	spec.Skewed = map[KeySlot]bool{SlotCol(0, 0): true} // L.Partkey zipfian
	hybrid, err := BuildScheme(HybridHypercube, spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "hybrid avg (Table 1: 8.6M)", hybrid.PredictedAvgLoad(), 8.6e6, 2e4)
	approx(t, "hybrid replication (Table 2: 1.01)", hybrid.PredictedReplicationFactor(), 1.01, 0.01)
}

// TestTPCH9Partial80G reproduces the 80G/100J row: Random picks Part ×
// PartSupp × Lineitem = 1×4×25 with load 36M and replication ≈6.6 (paper:
// 35M, 6.19); Hybrid picks sk=100 with avg ≈6.2M and replication ≈1.15
// (paper: 6.3M, 1.11); Hash's predicted max load under zipf(2) skew explodes
// (the run dies of memory overflow in Figure 7).
func TestTPCH9Partial80G(t *testing.T) {
	const l, ps, p = 480_000_000, 64_000_000, 800_000
	spec := tpch9Spec(l, ps, p)
	spec.TopFreq = map[KeySlot]float64{SlotCol(0, 0): 0.6} // zipf(2) top key

	random, err := BuildScheme(RandomHypercube, spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: {1x4x25}. The PART dimension of size 1 is dropped from the cube.
	ds := dimSizes(random)
	if ds["PART"] != 0 || ds["PARTSUPP"] != 4 || ds["LINEITEM"] != 25 {
		t.Errorf("random dims = %v, want {1x4x25}", random)
	}
	approx(t, "random load (Table 1: 35M)", random.PredictedAvgLoad(), 36e6, 1e6)
	approx(t, "random replication (Table 2: 6.19)", random.PredictedReplicationFactor(), 6.6, 0.1)

	spec.Skewed = map[KeySlot]bool{SlotCol(0, 0): true}
	hybrid, err := BuildScheme(HybridHypercube, spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "hybrid avg (Table 1: 6.3M)", hybrid.PredictedAvgLoad(), 6.24e6, 1e5)
	approx(t, "hybrid replication (Table 2: 1.11)", hybrid.PredictedReplicationFactor(), 1.145, 0.01)

	spec.Skewed = nil
	hash, err := BuildScheme(HashHypercube, spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hash.PredictedMaxLoad() < 0.5*float64(l)*0.6 {
		t.Errorf("hash max load %g must reflect the 60%% heavy key", hash.PredictedMaxLoad())
	}
}

// webAnalyticsSpec: W1 ⋈ W2 ⋈ C with W1.ToUrl = W2.FromUrl (after the
// 'blogspot.com' selections this key has ONE distinct value) and
// W1.FromUrl = C.Url (C.Url is a primary key, skew-free). Columns:
// W1=(FromUrl, ToUrl), W2=(FromUrl, ToUrl), C=(Url, Score).
func webAnalyticsSpec() JoinSpec {
	return JoinSpec{
		Graph: expr.MustJoinGraph(3,
			expr.EquiCol(0, 1, 1, 0), // W1.ToUrl = W2.FromUrl
			expr.EquiCol(0, 0, 2, 0), // W1.FromUrl = C.Url
		),
		Names: []string{"W1", "W2", "C"},
		Sizes: []int64{1_030_000, 3_900_000, 43_000_000},
	}
}

// TestWebAnalyticsSchemes reproduces §7.3's hypercube properties: Hash and
// Hybrid both pick a 20×2 cube; Random picks W1×W2×C = 1×2×20 replicating W1
// everywhere.
func TestWebAnalyticsSchemes(t *testing.T) {
	spec := webAnalyticsSpec()

	hash, err := BuildScheme(HashHypercube, spec, 40)
	if err != nil {
		t.Fatal(err)
	}
	if hash.Machines() != 40 || len(hash.Dims) != 2 {
		t.Fatalf("hash scheme = %v, want 20x2", hash)
	}

	random, err := BuildScheme(RandomHypercube, spec, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: {1x2x20}; the W1 dimension of size 1 is dropped from the cube.
	ds := dimSizes(random)
	if ds["W1"] != 0 || ds["W2"] != 2 || ds["C"] != 20 {
		t.Errorf("random dims = %v, want {1x2x20}", random)
	}

	spec.Skewed = map[KeySlot]bool{
		SlotCol(0, 1): true, // W1.ToUrl: single distinct value
		SlotCol(1, 0): true, // W2.FromUrl: single distinct value
	}
	hybrid, err := BuildScheme(HybridHypercube, spec, 40)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Machines() != 40 || len(hybrid.Dims) != 2 {
		t.Fatalf("hybrid scheme = %v, want 20x2", hybrid)
	}
	var randomDim *Dim
	for i := range hybrid.Dims {
		if hybrid.Dims[i].Mode == ModeRandom {
			randomDim = &hybrid.Dims[i]
		}
	}
	if randomDim == nil || randomDim.Size != 2 {
		t.Errorf("hybrid = %v, want the W2 random dim of size 2", hybrid)
	}
	// Hybrid must beat both on predicted max load under the skew model.
	spec.TopFreq = map[KeySlot]float64{SlotCol(1, 0): 1.0}
	hashSkew, err := BuildScheme(HashHypercube, spec, 40)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.PredictedMaxLoad() >= hashSkew.PredictedMaxLoad() {
		t.Errorf("hybrid max %g must beat hash-under-skew max %g",
			hybrid.PredictedMaxLoad(), hashSkew.PredictedMaxLoad())
	}
	if hybrid.PredictedMaxLoad() >= random.PredictedAvgLoad() {
		t.Errorf("hybrid max %g must beat random load %g",
			hybrid.PredictedMaxLoad(), random.PredictedAvgLoad())
	}
}

// TestStarSchemaSpecialCase (§3.2): with one big fact table and tiny
// dimension tables, hypercube optimization degenerates to p×1×1 — partition
// the fact table, broadcast the dimensions.
func TestStarSchemaSpecialCase(t *testing.T) {
	spec := JoinSpec{
		Graph: expr.MustJoinGraph(3,
			expr.EquiCol(0, 0, 1, 0), // F.d1 = D1.k
			expr.EquiCol(0, 1, 2, 0), // F.d2 = D2.k
		),
		Names: []string{"FACT", "D1", "D2"},
		Sizes: []int64{10_000_000, 1_000, 2_000},
	}
	for _, kind := range []SchemeKind{HashHypercube, RandomHypercube, HybridHypercube} {
		hc, err := BuildScheme(kind, spec, 16)
		if err != nil {
			t.Fatal(err)
		}
		// The fact table must be partitioned 16 ways with no replication; the
		// dimension tables are broadcast.
		if hc.Machines() != 16 {
			t.Errorf("%v: machines = %d", kind, hc.Machines())
		}
		factParts := 1
		for d := range hc.Dims {
			if hc.owns[0][d] {
				factParts *= hc.Dims[d].Size
			}
		}
		if factParts != 16 {
			t.Errorf("%v: fact table split %d ways, want 16 (%v)", kind, factParts, hc)
		}
	}
}

// TestSameKeyMultiJoin (§3.2): when all relations join on the same key, the
// Hash-Hypercube yields a 1-dimensional cube with no replication at all.
func TestSameKeyMultiJoin(t *testing.T) {
	spec := JoinSpec{
		Graph: expr.MustJoinGraph(3,
			expr.EquiCol(0, 0, 1, 0),
			expr.EquiCol(1, 0, 2, 0),
		),
		Names: []string{"A", "B", "C"},
		Sizes: []int64{1000, 1000, 1000},
	}
	hc, err := BuildScheme(HashHypercube, spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hc.Dims) != 1 || hc.Machines() != 8 {
		t.Fatalf("scheme = %v, want single dim of 8", hc)
	}
	approx(t, "replication", hc.PredictedReplicationFactor(), 1.0, 1e-9)
}

// TestNonEquiJoinSchemes (§4): for R.x = S.x AND S.x < T.y with everything
// skew-free, the Hybrid uses hash dimensions (x shared by R,S; y owned by T)
// — hash on a skew-free attribute simulates random distribution for the
// 1-Bucket side. Hash-Hypercube on a pure inequality falls back the same
// way; Random handles it natively.
func TestNonEquiJoinSchemes(t *testing.T) {
	spec := JoinSpec{
		Graph: expr.MustJoinGraph(3,
			expr.EquiCol(0, 0, 1, 0),           // R.x = S.x
			expr.ThetaCol(1, 0, expr.Lt, 2, 0), // S.x < T.y
		),
		Names: []string{"R", "S", "T"},
		Sizes: []int64{100_000, 100_000, 100_000},
	}
	hc, err := BuildScheme(HybridHypercube, spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(hc.Dims) != 2 {
		t.Fatalf("scheme = %v, want dims (x, y)", hc)
	}
	for _, d := range hc.Dims {
		if d.Mode != ModeHash {
			t.Errorf("skew-free non-equi dims use hash: %v", hc)
		}
	}
	// With skew on S.x, it is renamed to x' (random) and R.x gets its own
	// hash dimension (§4's last example).
	spec.Skewed = map[KeySlot]bool{SlotCol(1, 0): true}
	hc2, err := BuildScheme(HybridHypercube, spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	foundRandom := false
	for _, d := range hc2.Dims {
		if d.Mode == ModeRandom {
			foundRandom = true
		}
	}
	if !foundRandom {
		t.Errorf("S.x skew must force a random dimension: %v", hc2)
	}
}

// TestDimensionalityReduction (§4): in R(x,y) ⋈ S(y,z) ⋈ T(z,t) ⋈ U(t) with
// only z skewed, Random uses 4 dimensions but Hybrid needs only 2 (y and t):
// R,S hash on y; T,U hash on t; S⋈T is the implied 1-Bucket join.
func TestDimensionalityReduction(t *testing.T) {
	const h = 1_000_000
	spec := JoinSpec{
		Graph: expr.MustJoinGraph(4,
			expr.EquiCol(0, 1, 1, 0), // R.y = S.y
			expr.EquiCol(1, 1, 2, 0), // S.z = T.z
			expr.EquiCol(2, 1, 3, 0), // T.t = U.t
		),
		Names:  []string{"R", "S", "T", "U"},
		Sizes:  []int64{h, h, h, h},
		Skewed: map[KeySlot]bool{SlotCol(1, 1): true, SlotCol(2, 0): true},
	}
	random, err := BuildScheme(RandomHypercube, spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(random.Dims) != 4 {
		t.Errorf("random = %v, want 4 dims", random)
	}
	hybrid, err := BuildScheme(HybridHypercube, spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(hybrid.Dims) != 2 {
		t.Errorf("hybrid = %v, want 2 dims (y, t): z' and z'' dropped", hybrid)
	}
	if hybrid.PredictedReplicationFactor() >= random.PredictedReplicationFactor() {
		t.Errorf("hybrid replication %g must beat random %g",
			hybrid.PredictedReplicationFactor(), random.PredictedReplicationFactor())
	}
}

// TestSevenMachinesIntegerSizes: the Chu et al. concern — with 7 machines
// and a 3-relation chain the optimizer must not round 7^(1/3) down to 1×1×1;
// it must keep using several machines.
func TestSevenMachinesIntegerSizes(t *testing.T) {
	hc, err := BuildScheme(RandomHypercube, chainSpec(1_000_000), 7)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Machines() < 6 {
		t.Errorf("with 7 machines the scheme uses %d; integer search must use ≥6", hc.Machines())
	}
}

func TestBuildSchemeValidation(t *testing.T) {
	spec := chainSpec(100)
	if _, err := BuildScheme(HybridHypercube, spec, 0); err == nil {
		t.Error("0 machines must fail")
	}
	bad := spec
	bad.Sizes = []int64{1, 2}
	if _, err := BuildScheme(HashHypercube, bad, 8); err == nil {
		t.Error("size/relation mismatch must fail")
	}
	bad2 := spec
	bad2.Sizes = []int64{0, 1, 1}
	if _, err := BuildScheme(HashHypercube, bad2, 8); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := BuildScheme(SchemeKind(99), spec, 8); err == nil {
		t.Error("unknown scheme must fail")
	}
}

func TestChooseSkewedOffline(t *testing.T) {
	// TPCH9 10G with a 60% heavy key on L.pk: marking L.pk skewed must win;
	// the mild PS keys stay uniform.
	spec := tpch9Spec(60_000_000, 8_000_000, 100_000)
	spec.TopFreq = map[KeySlot]float64{
		SlotCol(0, 0): 0.6,   // L.pk: zipf(2)
		SlotCol(1, 0): 0.001, // PS.pk: uniform
	}
	chosen, err := ChooseSkewedOffline(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !chosen[SlotCol(0, 0)] {
		t.Error("L.pk with 60% top key must be marked skewed")
	}
	if chosen[SlotCol(1, 0)] {
		t.Error("uniform PS.pk must stay hash-partitioned")
	}
}

func TestFewDistinctSkewed(t *testing.T) {
	if !FewDistinctSkewed(5, 8) {
		t.Error("5 distinct keys over 8 machines must count as skewed")
	}
	if FewDistinctSkewed(1000, 8) {
		t.Error("1000 distinct keys over 8 machines is fine for hashing")
	}
	if FewDistinctSkewed(0, 8) {
		t.Error("unknown distinct count must not force skew")
	}
}

func TestTwoWaySpecializations(t *testing.T) {
	two := JoinSpec{
		Graph: expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0)),
		Names: []string{"R", "S"},
		Sizes: []int64{1000, 1000},
	}
	hc, err := TwoWayHash(two, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hc.Dims) != 1 || hc.Dims[0].Mode != ModeHash {
		t.Errorf("TwoWayHash = %v", hc)
	}
	ob, err := OneBucket(two, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ob.Dims) != 2 || ob.Machines() != 16 {
		t.Errorf("OneBucket = %v, want 4x4 matrix", ob)
	}
	theta := JoinSpec{
		Graph: expr.MustJoinGraph(2, expr.ThetaCol(0, 0, expr.Lt, 1, 0)),
		Names: []string{"R", "S"},
		Sizes: []int64{1000, 1000},
	}
	if _, err := TwoWayHash(theta, 8); err == nil {
		t.Error("TwoWayHash on a theta join must fail")
	}
	if _, err := OneBucket(theta, 8); err != nil {
		t.Errorf("OneBucket on a theta join: %v", err)
	}
	if _, err := TwoWayHash(chainSpec(10), 8); err == nil {
		t.Error("TwoWayHash on 3 relations must fail")
	}
}
