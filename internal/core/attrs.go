// Package core implements the paper's primary contribution: hypercube
// partitioning schemes for online multi-way joins — Hash-Hypercube [8],
// Random-Hypercube [74] and the novel Hybrid-Hypercube (§3.1, §4) — together
// with the integer dimension-size optimizer and the join-key renaming that
// gives the Hybrid scheme its skew resilience.
//
// The result space of a multi-way join is modelled as a hypercube whose
// machines are cells. Every relation fixes a coordinate on each of its own
// dimensions (by hashing a join key, or uniformly at random) and replicates
// across all other dimensions; any combination of joinable tuples therefore
// meets on exactly one machine, so each machine can run an independent local
// join (the HyLD operator, §3.4).
package core

import (
	"fmt"
	"sort"
	"strings"

	"squall/internal/expr"
)

// KeySlot identifies one join-key usage: relation Rel's key expression
// (canonicalized by its String form). Skew declarations are per slot: e.g.
// "S.z is zipfian" is {Rel: S, Expr: "z"}.
type KeySlot struct {
	Rel  int
	Expr string
}

// SlotCol builds the KeySlot for a plain column reference, matching
// expr.C(col) / expr.EquiCol usage.
func SlotCol(rel, col int) KeySlot {
	return KeySlot{Rel: rel, Expr: expr.C(col).String()}
}

// SlotNamed builds the KeySlot for a named column reference expr.CN(col, name).
func SlotNamed(rel, col int, name string) KeySlot {
	return KeySlot{Rel: rel, Expr: expr.CN(col, name).String()}
}

// JoinSpec is everything a partitioning scheme needs to know about a
// multi-way join (§4): the join condition, relation names and (relative)
// sizes, and per-key skew information. Sizes only matter relative to each
// other. Skewed marks keys the user (or the offline sampler) declared
// skewed; TopFreq optionally gives the fraction of the relation's tuples
// carrying the most frequent key, used by the load model and the offline
// scheme chooser (§3.4).
type JoinSpec struct {
	Graph   *expr.JoinGraph
	Names   []string
	Sizes   []int64
	Skewed  map[KeySlot]bool
	TopFreq map[KeySlot]float64
}

func (s *JoinSpec) validate() error {
	if s.Graph == nil {
		return fmt.Errorf("core: JoinSpec.Graph is nil")
	}
	n := s.Graph.NumRels
	if len(s.Names) != n {
		return fmt.Errorf("core: %d names for %d relations", len(s.Names), n)
	}
	if len(s.Sizes) != n {
		return fmt.Errorf("core: %d sizes for %d relations", len(s.Sizes), n)
	}
	for i, sz := range s.Sizes {
		if sz <= 0 {
			return fmt.Errorf("core: relation %s has non-positive size %d", s.Names[i], sz)
		}
	}
	return nil
}

func (s *JoinSpec) isSkewed(slot KeySlot) bool { return s.Skewed[slot] }

func (s *JoinSpec) topFreq(slot KeySlot) float64 { return s.TopFreq[slot] }

// slotRef is a resolved slot: the relation and the evaluatable expression.
type slotRef struct {
	rel int
	e   expr.Expr
}

func (r slotRef) key() KeySlot { return KeySlot{Rel: r.rel, Expr: r.e.String()} }

// attribute is one hypercube dimension candidate after renaming (§4): a set
// of slots that share the dimension. Hash attributes may be shared by many
// relations (their hashes agree on joinable tuples); random attributes are
// always owned by exactly one relation, because two independent random
// choices would miss results.
type attribute struct {
	name  string
	mode  PartMode
	slots []slotRef
}

// quasi reports whether this is a quasi-attribute (a relation's own random
// dimension with no key expression, as in the Random-Hypercube reduction).
func (a *attribute) quasi() bool {
	return a.mode == ModeRandom && len(a.slots) == 1 && a.slots[0].e == nil
}

// buildAttributes performs the §4 construction. Equality conjuncts induce
// join-key equivalence classes (union-find). Under skewAll=false, every slot
// declared skewed is renamed out of its class into a singleton random
// attribute (S.z -> z'); the remaining class members share a hash attribute.
// Sides of non-equi conjuncts are classes of their own (hash partitioning on
// a skew-free attribute simulates random distribution with respect to the
// other side, §4). Relations left with no attribute at all receive a
// quasi-attribute with random partitioning, which makes the construction
// subsume the Random-Hypercube: randomAll=true forces every relation to a
// single quasi-attribute.
func buildAttributes(spec *JoinSpec, randomAll bool, skewed func(KeySlot) bool) []attribute {
	if randomAll {
		attrs := make([]attribute, spec.Graph.NumRels)
		for i := range attrs {
			attrs[i] = attribute{
				name:  spec.Names[i],
				mode:  ModeRandom,
				slots: []slotRef{{rel: i}},
			}
		}
		return attrs
	}

	// Collect distinct slots in first-appearance order.
	var slots []slotRef
	slotIdx := map[KeySlot]int{}
	addSlot := func(rel int, e expr.Expr) int {
		k := KeySlot{Rel: rel, Expr: e.String()}
		if i, ok := slotIdx[k]; ok {
			return i
		}
		slots = append(slots, slotRef{rel: rel, e: e})
		slotIdx[k] = len(slots) - 1
		return len(slots) - 1
	}
	// Union-find over slots; only equality conjuncts merge classes.
	var parent []int
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, c := range spec.Graph.Conjuncts {
		l := addSlot(c.LRel, c.Left)
		r := addSlot(c.RRel, c.Right)
		for len(parent) < len(slots) {
			parent = append(parent, len(parent))
		}
		if c.Op == expr.Eq {
			parent[find(l)] = find(r)
		}
	}
	for len(parent) < len(slots) {
		parent = append(parent, len(parent))
	}

	// Group slots by class, keeping deterministic order.
	classOrder := []int{}
	classes := map[int][]slotRef{}
	for i, s := range slots {
		root := find(i)
		if _, seen := classes[root]; !seen {
			classOrder = append(classOrder, root)
		}
		classes[root] = append(classes[root], s)
	}

	var attrs []attribute
	covered := make([]bool, spec.Graph.NumRels)
	for _, root := range classOrder {
		members := classes[root]
		var keep, renamed []slotRef
		for _, m := range members {
			if skewed(m.key()) {
				renamed = append(renamed, m)
			} else {
				keep = append(keep, m)
			}
		}
		if len(keep) > 0 {
			attrs = append(attrs, attribute{name: className(spec, keep), mode: ModeHash, slots: keep})
			for _, m := range keep {
				covered[m.rel] = true
			}
		}
		for _, m := range renamed {
			attrs = append(attrs, attribute{
				name:  fmt.Sprintf("%s.%s'", spec.Names[m.rel], m.e),
				mode:  ModeRandom,
				slots: []slotRef{m},
			})
			covered[m.rel] = true
		}
	}
	// Quasi-attributes for relations untouched by any join key (cross joins).
	for rel, ok := range covered {
		if !ok {
			attrs = append(attrs, attribute{
				name:  spec.Names[rel],
				mode:  ModeRandom,
				slots: []slotRef{{rel: rel}},
			})
		}
	}
	return attrs
}

func className(spec *JoinSpec, members []slotRef) string {
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = fmt.Sprintf("%s.%s", spec.Names[m.rel], m.e)
	}
	sort.Strings(names)
	return strings.Join(names, "=")
}
