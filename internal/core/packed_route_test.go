package core

import (
	"math/rand"
	"testing"

	"squall/internal/dataflow"
	"squall/internal/types"
	"squall/internal/wire"
)

// TestRowTargetsAgreeWithTargets is the packed-routing differential for the
// hypercube schemes: for every scheme kind and relation, RowTargets on the
// encoded row must pick exactly the machines Targets picks on the tuple —
// including identical rng consumption on random dimensions, which the
// replicated-pair-meets-once property depends on.
func TestRowTargetsAgreeWithTargets(t *testing.T) {
	spec := chainSpec(1000)
	for _, kind := range []SchemeKind{HashHypercube, RandomHypercube, HybridHypercube} {
		hc, err := BuildScheme(kind, spec, 16)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for rel := 0; rel < 3; rel++ {
			g := hc.GroupingFor(rel)
			rg, ok := g.(dataflow.RowGrouping)
			if !ok {
				t.Fatalf("%v rel %d: column-ref scheme must be row-capable", kind, rel)
			}
			// Identical seeds: random dims must draw the same coordinates.
			rngA := rand.New(rand.NewSource(9))
			rngB := rand.New(rand.NewSource(9))
			rows := rand.New(rand.NewSource(10))
			var cur wire.Cursor
			var enc []byte
			for i := 0; i < 500; i++ {
				tu := types.Tuple{
					types.Int(int64(rows.Intn(64))),
					types.Int(int64(rows.Intn(64))),
					types.Str(string(rune('a' + rows.Intn(26)))),
				}
				want := g.Targets(tu, hc.Machines(), rngA, nil)
				enc = wire.Encode(enc[:0], tu)
				if err := cur.Reset(enc); err != nil {
					t.Fatal(err)
				}
				got := rg.RowTargets(&cur, hc.Machines(), rngB, nil)
				if len(got) != len(want) {
					t.Fatalf("%v rel %d row %v: packed %v, boxed %v", kind, rel, tu, got, want)
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("%v rel %d row %v: packed %v, boxed %v", kind, rel, tu, got, want)
					}
				}
			}
		}
	}
}
