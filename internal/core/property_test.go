package core

import (
	"fmt"
	"math/rand"
	"testing"

	"squall/internal/expr"
	"squall/internal/types"
)

// genRelation makes n tuples with `arity` int columns drawn from [0, domain).
func genRelation(r *rand.Rand, n, arity int, domain int64) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := range rows {
		t := make(types.Tuple, arity)
		for c := range t {
			t[c] = types.Int(r.Int63n(domain))
		}
		rows[i] = t
	}
	return rows
}

// routeAll computes each tuple's machine set once (random dims draw once per
// tuple, as in a real run where a tuple is emitted a single time).
func routeAll(t *testing.T, hc *Hypercube, rel int, rows []types.Tuple, rng *rand.Rand) [][]int {
	t.Helper()
	out := make([][]int, len(rows))
	for i, row := range rows {
		targets, err := hc.Targets(rel, row, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = append([]int(nil), targets...)
		seen := map[int]bool{}
		for _, m := range targets {
			if m < 0 || m >= hc.Machines() {
				t.Fatalf("relation %d tuple %v routed to machine %d of %d", rel, row, m, hc.Machines())
			}
			if seen[m] {
				t.Fatalf("relation %d tuple %v routed twice to machine %d", rel, row, m)
			}
			seen[m] = true
		}
	}
	return out
}

func intersect3(a, b, c []int) []int {
	inB := map[int]bool{}
	for _, m := range b {
		inB[m] = true
	}
	inC := map[int]bool{}
	for _, m := range c {
		inC[m] = true
	}
	var out []int
	for _, m := range a {
		if inB[m] && inC[m] {
			out = append(out, m)
		}
	}
	return out
}

// checkMeetExactlyOnce verifies invariant 1 of DESIGN.md for a 3-relation
// join: every joinable triple meets on exactly one machine (coverage AND
// no duplicate results).
func checkMeetExactlyOnce(t *testing.T, hc *Hypercube, g *expr.JoinGraph, rels [3][]types.Tuple, routes [3][][]int) {
	t.Helper()
	matches, met := 0, 0
	for i, rt := range rels[0] {
		for j, st := range rels[1] {
			for k, tt := range rels[2] {
				ok, err := g.HoldsAll(0b111, []types.Tuple{rt, st, tt})
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				matches++
				common := intersect3(routes[0][i], routes[1][j], routes[2][k])
				if len(common) != 1 {
					t.Fatalf("%s: joinable (%v,%v,%v) meets on %d machines %v, want exactly 1",
						hc, rt, st, tt, len(common), common)
				}
				met++
			}
		}
	}
	if matches == 0 {
		t.Fatal("test workload produced no joinable triples; tighten the domain")
	}
	if met != matches {
		t.Fatalf("met %d of %d matches", met, matches)
	}
}

func TestMeetExactlyOnceChainEquiJoin(t *testing.T) {
	g := expr.MustJoinGraph(3,
		expr.EquiCol(0, 1, 1, 0), // R.y = S.y
		expr.EquiCol(1, 1, 2, 0), // S.z = T.z
	)
	spec := JoinSpec{
		Graph: g,
		Names: []string{"R", "S", "T"},
		Sizes: []int64{100, 100, 100},
	}
	skews := []map[KeySlot]bool{
		nil,
		{SlotCol(1, 1): true, SlotCol(2, 0): true},
		{SlotCol(0, 1): true},
		{SlotCol(0, 1): true, SlotCol(1, 0): true, SlotCol(1, 1): true, SlotCol(2, 0): true},
	}
	for trial := 0; trial < 3; trial++ {
		r := rand.New(rand.NewSource(int64(100 + trial)))
		rels := [3][]types.Tuple{
			genRelation(r, 60, 2, 8),
			genRelation(r, 60, 2, 8),
			genRelation(r, 60, 2, 8),
		}
		for _, kind := range []SchemeKind{HashHypercube, RandomHypercube, HybridHypercube} {
			for si, skew := range skews {
				if kind != HybridHypercube && si > 0 {
					continue
				}
				spec.Skewed = skew
				for _, machines := range []int{1, 5, 16, 36} {
					hc, err := BuildScheme(kind, spec, machines)
					if err != nil {
						t.Fatal(err)
					}
					t.Run(fmt.Sprintf("%v/skew%d/m%d/trial%d", kind, si, machines, trial), func(t *testing.T) {
						routes := [3][][]int{}
						for rel := 0; rel < 3; rel++ {
							routes[rel] = routeAll(t, hc, rel, rels[rel], r)
						}
						checkMeetExactlyOnce(t, hc, g, rels, routes)
					})
				}
			}
		}
	}
}

func TestMeetExactlyOnceThetaJoin(t *testing.T) {
	// R.x = S.x AND S.x < T.y (§4's non-equi example).
	g := expr.MustJoinGraph(3,
		expr.EquiCol(0, 0, 1, 0),
		expr.ThetaCol(1, 0, expr.Lt, 2, 0),
	)
	spec := JoinSpec{
		Graph: g,
		Names: []string{"R", "S", "T"},
		Sizes: []int64{80, 80, 80},
	}
	r := rand.New(rand.NewSource(42))
	rels := [3][]types.Tuple{
		genRelation(r, 40, 1, 10),
		genRelation(r, 40, 1, 10),
		genRelation(r, 40, 1, 10),
	}
	for _, build := range []struct {
		name string
		hc   func() (*Hypercube, error)
	}{
		{"random", func() (*Hypercube, error) { return BuildScheme(RandomHypercube, spec, 16) }},
		{"hybrid-uniform", func() (*Hypercube, error) { return BuildScheme(HybridHypercube, spec, 16) }},
		{"hybrid-skewTy", func() (*Hypercube, error) {
			s := spec
			s.Skewed = map[KeySlot]bool{SlotCol(2, 0): true}
			return BuildScheme(HybridHypercube, s, 16)
		}},
		{"hybrid-skewSx", func() (*Hypercube, error) {
			s := spec
			s.Skewed = map[KeySlot]bool{SlotCol(1, 0): true}
			return BuildScheme(HybridHypercube, s, 16)
		}},
	} {
		hc, err := build.hc()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(build.name, func(t *testing.T) {
			routes := [3][][]int{}
			for rel := 0; rel < 3; rel++ {
				routes[rel] = routeAll(t, hc, rel, rels[rel], r)
			}
			checkMeetExactlyOnce(t, hc, g, rels, routes)
		})
	}
}

// TestMeetExactlyOnceTwoWayBand: band join |R.a - S.b| <= 1 as two theta
// conjuncts under the 1-Bucket scheme.
func TestMeetExactlyOnceTwoWayBand(t *testing.T) {
	g := expr.MustJoinGraph(2,
		expr.JoinConjunct{LRel: 0, RRel: 1, Op: expr.Le, Left: expr.C(0), Right: expr.Arith{Op: expr.Add, L: expr.C(0), R: expr.I(1)}},
		expr.JoinConjunct{LRel: 0, RRel: 1, Op: expr.Ge, Left: expr.C(0), Right: expr.Arith{Op: expr.Sub, L: expr.C(0), R: expr.I(1)}},
	)
	spec := JoinSpec{Graph: g, Names: []string{"R", "S"}, Sizes: []int64{50, 50}}
	hc, err := OneBucket(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	R := genRelation(r, 50, 1, 12)
	S := genRelation(r, 50, 1, 12)
	routesR := routeAll(t, hc, 0, R, r)
	routesS := routeAll(t, hc, 1, S, r)
	matches := 0
	for i, rt := range R {
		for j, st := range S {
			ok, err := g.HoldsAll(0b11, []types.Tuple{rt, st})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			matches++
			common := 0
			inS := map[int]bool{}
			for _, m := range routesS[j] {
				inS[m] = true
			}
			for _, m := range routesR[i] {
				if inS[m] {
					common++
				}
			}
			if common != 1 {
				t.Fatalf("band pair (%v,%v) meets on %d machines", rt, st, common)
			}
		}
	}
	if matches == 0 {
		t.Fatal("no band matches generated")
	}
}

// TestTargetsReplicationCounts: a relation's fanout equals the product of
// the dimensions it does not own.
func TestTargetsReplicationCounts(t *testing.T) {
	spec := chainSpec(1 << 20)
	hc, err := BuildScheme(HashHypercube, spec, 64) // y=8 x z=8
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	row := types.Tuple{types.Int(3), types.Int(5)}
	targets, err := hc.Targets(0, row, rng, nil) // R owns y, replicates over z
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 8 {
		t.Errorf("R fanout = %d, want 8", len(targets))
	}
	targets, err = hc.Targets(1, row, rng, nil) // S owns both dims
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Errorf("S fanout = %d, want 1", len(targets))
	}
}

// TestHashTargetsAreDeterministic: hash-partitioned tuples route identically
// on every call (content-sensitive, no randomness).
func TestHashTargetsAreDeterministic(t *testing.T) {
	spec := chainSpec(1000)
	hc, err := BuildScheme(HashHypercube, spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	row := types.Tuple{types.Int(1), types.Int(2)}
	r1 := rand.New(rand.NewSource(1))
	r2 := rand.New(rand.NewSource(999))
	a, _ := hc.Targets(1, row, r1, nil)
	b, _ := hc.Targets(1, row, r2, nil)
	if len(a) != len(b) {
		t.Fatalf("fanout differs: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("hash routing must not depend on the rng: %v vs %v", a, b)
		}
	}
}

// TestTargetsErrorOnBadExpr: evaluation failures surface as errors.
func TestTargetsErrorOnBadExpr(t *testing.T) {
	spec := chainSpec(1000)
	hc, err := BuildScheme(HashHypercube, spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Targets(0, types.Tuple{}, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("short tuple must fail key evaluation")
	}
	if _, err := hc.Targets(99, types.Tuple{}, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("unknown relation must fail")
	}
}
