package core

import (
	"fmt"
	"math"
)

// optProblem is the dimension-sizing problem handed to the optimizer: for
// each relation, its size and the set of candidate dimensions it owns; for
// hash dimensions, optionally the top-key frequency used in the skewed load
// model of §3.4.
type optProblem struct {
	sizes    []int64     // per relation
	dims     [][]int     // per relation: indexes into attrs of owned dims
	topFreq  [][]float64 // parallel to dims: top-key fraction (0 = uniform)
	modes    []PartMode  // per attribute
	nattrs   int
	machines int
}

// optResult is the chosen configuration.
type optResult struct {
	sizes   []int   // per attribute
	maxLoad float64 // predicted maximum load per machine (tuples)
	avgLoad float64 // predicted average load per machine (tuples)
	sent    float64 // predicted total tuple copies shipped
}

// optimize enumerates every integer dimension-size vector whose product is
// at most p and keeps the one minimizing the uniform-model load per machine,
// breaking ties by total communication (tuple copies shipped), then by using
// fewer machines. This is the always-integer search of Chu et al. [26],
// which avoids the fractional-dimension pitfall of the original HyperCube
// algorithm [8, 18] (rounding 7^(1/3) down to 1 per dimension would waste 6
// of 7 machines, §4).
//
// Sizing uses the uniform model — like the paper's implementation, which
// "assumes uniform distribution for the attributes marked as non-skewed"
// (footnote 16); skew is handled by marking keys skewed (random
// partitioning), not by skew-aware sizing. The returned maxLoad, however, is
// evaluated WITH the top-key frequency model of §3.4, so callers (the
// offline scheme chooser, Table 1 predictions) see the skew-aware estimate
// for the chosen sizes.
func optimize(p optProblem) (optResult, error) {
	if p.machines < 1 {
		return optResult{}, fmt.Errorf("core: need at least 1 machine, got %d", p.machines)
	}
	if p.nattrs == 0 {
		return optResult{}, fmt.Errorf("core: no dimension candidates")
	}
	if p.nattrs > 12 {
		return optResult{}, fmt.Errorf("core: %d dimensions exceed the optimizer's search limit", p.nattrs)
	}
	best := optResult{maxLoad: math.Inf(1), avgLoad: math.Inf(1), sent: math.Inf(1)}
	bestMachines := 0
	cur := make([]int, p.nattrs)
	var rec func(dim, budget int)
	rec = func(dim, budget int) {
		if dim == p.nattrs {
			r := evaluate(p, cur)
			m := product(cur)
			if better(r, m, best, bestMachines) {
				r.sizes = append([]int(nil), cur...)
				best = r
				bestMachines = m
			}
			return
		}
		for s := 1; s <= budget; s++ {
			cur[dim] = s
			rec(dim+1, budget/s)
		}
		cur[dim] = 1
	}
	rec(0, p.machines)
	return best, nil
}

func better(r optResult, m int, best optResult, bestM int) bool {
	const eps = 1e-9
	if math.IsInf(best.avgLoad, 1) {
		return true
	}
	// Relative epsilon keeps ties stable across magnitudes.
	tol := eps * (1 + best.avgLoad)
	switch {
	case r.avgLoad < best.avgLoad-tol:
		return true
	case r.avgLoad > best.avgLoad+tol:
		return false
	case r.sent < best.sent-eps*(1+best.sent):
		return true
	case r.sent > best.sent+eps*(1+best.sent):
		return false
	default:
		return m < bestM
	}
}

func product(sizes []int) int {
	m := 1
	for _, s := range sizes {
		m *= s
	}
	return m
}

// evaluate computes the load model for one dimension-size vector.
//
// Uniform model (§4): a relation partitioned over dimensions with size
// product P contributes |R|/P per machine; its replication is the product of
// the remaining dimensions.
//
// Skewed hash model (§3.4): when a hash dimension's key has top frequency f,
// all f·|R| heavy tuples share one coordinate on that dimension and spread
// only over the relation's other dimensions (product P_rest = P/size). The
// paper's estimate (L - Lmf)/p + Lmf is the special case with one dimension.
func evaluate(p optProblem, sizes []int) optResult {
	machines := product(sizes)
	var maxLoad, avgLoad, sent float64
	for i, relSize := range p.sizes {
		sz := float64(relSize)
		partitions := 1.0
		for _, d := range p.dims[i] {
			partitions *= float64(sizes[d])
		}
		uniform := sz / partitions
		worst := uniform
		for k, d := range p.dims[i] {
			f := p.topFreq[i][k]
			if f <= 0 || p.modes[d] != ModeHash || sizes[d] <= 1 {
				continue
			}
			pRest := partitions / float64(sizes[d])
			if load := f*sz/pRest + (1-f)*sz/partitions; load > worst {
				worst = load
			}
		}
		maxLoad += worst
		avgLoad += uniform
		sent += sz * float64(machines) / partitions
	}
	return optResult{maxLoad: maxLoad, avgLoad: avgLoad, sent: sent}
}
