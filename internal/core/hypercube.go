package core

import (
	"fmt"
	"math/rand"
	"strings"

	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/types"
	"squall/internal/wire"
)

// PartMode is the partitioning type of one hypercube dimension.
type PartMode uint8

const (
	// ModeHash fixes the coordinate by hashing a join key: cheap (no
	// replication beyond the scheme) but content-sensitive, so prone to data
	// and temporal skew (§5).
	ModeHash PartMode = iota
	// ModeRandom picks the coordinate uniformly at random per tuple:
	// content-insensitive, resilient to every skew type, at the price of
	// replication (the SAR principle, §5).
	ModeRandom
)

// String names the mode.
func (m PartMode) String() string {
	if m == ModeRandom {
		return "rand"
	}
	return "hash"
}

// Dim is one dimension of a constructed hypercube.
type Dim struct {
	Name string
	Size int
	Mode PartMode
}

// Hypercube is a constructed partitioning scheme: the output of BuildScheme,
// ready to route tuples of each relation to joiner tasks.
type Hypercube struct {
	Kind    SchemeKind
	Dims    []Dim
	strides []int
	mach    int
	// exprs[rel][dim] lists the key expressions relation rel hashes on
	// dimension dim. nil + owns=false => replicate across the dimension;
	// owns=true with no exprs => random coordinate.
	exprs [][][]expr.Expr
	owns  [][]bool
	spec  *JoinSpec
	pred  optResult
}

// Machines returns the number of joiner tasks ("machines") the scheme uses:
// the product of dimension sizes. It may be smaller than the budget handed
// to BuildScheme when no configuration uses all of it profitably.
func (hc *Hypercube) Machines() int { return hc.mach }

// PredictedMaxLoad returns the optimizer's estimate of the maximum per-
// machine load in tuples (the §4 optimization objective).
func (hc *Hypercube) PredictedMaxLoad() float64 { return hc.pred.maxLoad }

// PredictedAvgLoad returns the estimated mean per-machine load in tuples.
func (hc *Hypercube) PredictedAvgLoad() float64 { return hc.pred.avgLoad }

// PredictedReplicationFactor returns estimated input copies shipped divided
// by input tuples — the §6 replication-factor metric, predicted.
func (hc *Hypercube) PredictedReplicationFactor() float64 {
	var in float64
	for _, s := range hc.spec.Sizes {
		in += float64(s)
	}
	if in == 0 {
		return 0
	}
	return hc.pred.sent / in
}

// String renders the scheme like the paper does: {Partkey(hash)=1 x Suppkey(hash)=8}.
func (hc *Hypercube) String() string {
	parts := make([]string, len(hc.Dims))
	for i, d := range hc.Dims {
		parts[i] = fmt.Sprintf("%s(%s)=%d", d.Name, d.Mode, d.Size)
	}
	return "{" + strings.Join(parts, " x ") + "}"
}

// Targets computes the destination machines for one tuple of relation rel:
// the cartesian product of its per-dimension coordinate sets. Hash
// dimensions fix one coordinate per key expression (normally one), random
// dimensions draw one coordinate, and foreign dimensions replicate.
func (hc *Hypercube) Targets(rel int, t types.Tuple, rng *rand.Rand, buf []int) ([]int, error) {
	if rel < 0 || rel >= len(hc.exprs) {
		return nil, fmt.Errorf("core: relation %d out of range", rel)
	}
	buf = append(buf[:0], 0)
	for d, dim := range hc.Dims {
		var coords [4]int
		cs := coords[:0]
		switch {
		case !hc.owns[rel][d]:
			// Replicate across the whole dimension.
			if dim.Size == 1 {
				cs = append(cs, 0)
			} else {
				for c := 0; c < dim.Size; c++ {
					cs = append(cs, c)
				}
			}
		case len(hc.exprs[rel][d]) == 0:
			// Random coordinate (content-insensitive).
			cs = append(cs, rng.Intn(dim.Size))
		default:
			for _, e := range hc.exprs[rel][d] {
				v, err := e.Eval(t)
				if err != nil {
					return nil, fmt.Errorf("core: key %s of %s: %w", e, hc.spec.Names[rel], err)
				}
				c := int(v.Hash() % uint64(dim.Size))
				dup := false
				for _, prev := range cs {
					if prev == c {
						dup = true
						break
					}
				}
				if !dup {
					cs = append(cs, c)
				}
			}
		}
		// Extend the partial machine indexes with this dimension's coords.
		n := len(buf)
		stride := hc.strides[d]
		for ci := 1; ci < len(cs); ci++ {
			for i := 0; i < n; i++ {
				buf = append(buf, buf[i]+cs[ci]*stride)
			}
		}
		for i := 0; i < n; i++ {
			buf[i] += cs[0] * stride
		}
	}
	return buf, nil
}

// GroupingFor adapts the scheme to a dataflow stream grouping for relation
// rel's edge into the joiner component (whose parallelism must be
// hc.Machines()). When every key expression of the relation is a plain
// column ref — the overwhelmingly common case — the returned grouping also
// implements dataflow.RowGrouping, so packed rows route off their encoded
// bytes without materializing a tuple (PR 5).
func (hc *Hypercube) GroupingFor(rel int) dataflow.Grouping {
	g := hcGrouping{hc: hc, rel: rel}
	cols := make([][]int, len(hc.Dims))
	for d := range hc.Dims {
		if !hc.owns[rel][d] {
			continue
		}
		for _, e := range hc.exprs[rel][d] {
			c, ok := e.(expr.Col)
			if !ok {
				return g // unlowerable key: boxed routing only
			}
			cols[d] = append(cols[d], c.Index)
		}
	}
	return hcRowGrouping{hcGrouping: g, cols: cols}
}

// hcGrouping is the boxed hypercube grouping.
type hcGrouping struct {
	hc  *Hypercube
	rel int
}

func (g hcGrouping) Targets(t types.Tuple, ntasks int, rng *rand.Rand, buf []int) []int {
	if ntasks != g.hc.mach {
		panic(fmt.Sprintf("core: joiner parallelism %d != hypercube machines %d", ntasks, g.hc.mach))
	}
	out, err := g.hc.Targets(g.rel, t, rng, buf)
	if err != nil {
		panic(err)
	}
	return out
}

// hcRowGrouping adds the packed route: per hash dimension, the coordinate
// comes from wire.Cursor.ValueHash on the key column — the same
// types.Value.Hash the boxed path computes — so packed and boxed rows of a
// relation land on identical machines.
type hcRowGrouping struct {
	hcGrouping
	cols [][]int // cols[dim] = key column indexes (hash dims only)
}

var _ dataflow.RowGrouping = hcRowGrouping{}

func (g hcRowGrouping) RowTargets(cur *wire.Cursor, ntasks int, rng *rand.Rand, buf []int) []int {
	hc := g.hc
	if ntasks != hc.mach {
		panic(fmt.Sprintf("core: joiner parallelism %d != hypercube machines %d", ntasks, hc.mach))
	}
	buf = append(buf[:0], 0)
	for d, dim := range hc.Dims {
		var coords [4]int
		cs := coords[:0]
		switch {
		case !hc.owns[g.rel][d]:
			if dim.Size == 1 {
				cs = append(cs, 0)
			} else {
				for c := 0; c < dim.Size; c++ {
					cs = append(cs, c)
				}
			}
		case len(g.cols[d]) == 0:
			cs = append(cs, rng.Intn(dim.Size))
		default:
			for _, col := range g.cols[d] {
				c := int(cur.ValueHash(col) % uint64(dim.Size))
				dup := false
				for _, prev := range cs {
					if prev == c {
						dup = true
						break
					}
				}
				if !dup {
					cs = append(cs, c)
				}
			}
		}
		n := len(buf)
		stride := hc.strides[d]
		for ci := 1; ci < len(cs); ci++ {
			for i := 0; i < n; i++ {
				buf = append(buf, buf[i]+cs[ci]*stride)
			}
		}
		for i := 0; i < n; i++ {
			buf[i] += cs[0] * stride
		}
	}
	return buf
}

// NumDims returns the number of (kept) dimensions.
func (hc *Hypercube) NumDims() int { return len(hc.Dims) }

// NumRels returns the number of relations.
func (hc *Hypercube) NumRels() int { return len(hc.exprs) }

// Coords decomposes a machine index into per-dimension coordinates.
func (hc *Hypercube) Coords(machine int) []int {
	out := make([]int, len(hc.Dims))
	for d := len(hc.Dims) - 1; d >= 0; d-- {
		out[d] = machine / hc.strides[d] % hc.Dims[d].Size
	}
	return out
}

// MachineAt composes per-dimension coordinates into a machine index.
func (hc *Hypercube) MachineAt(coords []int) int {
	m := 0
	for d, c := range coords {
		m += c * hc.strides[d]
	}
	return m
}

// Owns reports whether relation rel fixes its own coordinate on dimension d
// (hash or random); false means the relation replicates across d.
func (hc *Hypercube) Owns(rel, d int) bool {
	return hc.owns[rel][d]
}

// ContentSensitive reports whether the scheme hashes on at least one
// dimension of size > 1, making it prone to temporal skew (§5); content-
// insensitive (all-random) schemes perform identically for any arrival
// order.
func (hc *Hypercube) ContentSensitive() bool {
	for _, d := range hc.Dims {
		if d.Mode == ModeHash && d.Size > 1 {
			return true
		}
	}
	return false
}

// assemble converts attributes plus an optimizer result into a routable
// hypercube, dropping size-1 dimensions (they carry no information — the §4
// observation that attributes can fall out of the final partitioning).
func assemble(kind SchemeKind, spec *JoinSpec, attrs []attribute, res optResult) *Hypercube {
	hc := &Hypercube{Kind: kind, spec: spec, pred: res}
	kept := []int{}
	for i, a := range attrs {
		if res.sizes[i] <= 1 {
			continue
		}
		kept = append(kept, i)
		hc.Dims = append(hc.Dims, Dim{Name: a.name, Size: res.sizes[i], Mode: a.mode})
	}
	if len(kept) == 0 { // degenerate single-machine cube
		kept = append(kept, 0)
		hc.Dims = append(hc.Dims, Dim{Name: attrs[0].name, Size: 1, Mode: attrs[0].mode})
	}
	hc.strides = make([]int, len(hc.Dims))
	stride := 1
	for i := range hc.Dims {
		hc.strides[i] = stride
		stride *= hc.Dims[i].Size
	}
	hc.mach = stride

	n := spec.Graph.NumRels
	hc.exprs = make([][][]expr.Expr, n)
	hc.owns = make([][]bool, n)
	for rel := 0; rel < n; rel++ {
		hc.exprs[rel] = make([][]expr.Expr, len(hc.Dims))
		hc.owns[rel] = make([]bool, len(hc.Dims))
	}
	for d, ai := range kept {
		for _, s := range attrs[ai].slots {
			hc.owns[s.rel][d] = true
			if s.e != nil && attrs[ai].mode == ModeHash {
				hc.exprs[s.rel][d] = append(hc.exprs[s.rel][d], s.e)
			}
		}
	}
	return hc
}
