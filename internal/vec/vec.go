// Package vec provides selection-vector kernels for batch-at-a-time
// execution over packed wire frames (PR 6). A selection vector is a sorted
// list of row indexes still alive in a frame; predicate kernels narrow it
// with branch-free compare loops over gathered column slices, and set
// kernels combine selections (AND/OR/NOT) by sorted merge. The row indexes
// come from a FrameView, which lazily decodes the frame's column-offset
// footer (wire.ParseFooter) into per-column offset and value slices.
//
// Comparison kernels reproduce the engine's boxed ordering exactly: floats
// compare through the same three-way-then-CmpHolds shape as
// types.Value.Compare, so NaN operands yield cmp==0 (Eq holds, Lt does not)
// on the vectorized path precisely as they do on the row path. That
// bit-for-bit agreement is what lets enginetest cross VecExec on/off into
// the differential matrix.
package vec

// Sel is a selection vector: strictly increasing row indexes into one
// frame. Kernels write survivors into a caller-provided destination, which
// may alias the input (in-place narrowing is the common case).
type Sel []int32

// Op is a comparison operator. The values match expr.CmpOp one-to-one so
// the predicate compiler can cast directly.
type Op uint8

// Comparison operators, in expr.CmpOp order.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// b2i compiles to a branchless SETcc on amd64/arm64 — the heart of every
// selection kernel: unconditionally store the row index, conditionally
// advance the output cursor.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Grow returns s with capacity for at least n elements (length 0).
func Grow(s Sel, n int) Sel {
	if cap(s) < n {
		return make(Sel, 0, n)
	}
	return s[:0]
}

// All fills dst with the identity selection [0, n).
func All(n int, dst Sel) Sel {
	dst = Grow(dst, n)[:n]
	for i := range dst {
		dst[i] = int32(i)
	}
	return dst
}

// selCmp narrows in to the rows whose vals entry compares against c under
// op, writing survivors to dst (cap(dst) >= len(in); dst may alias in). The
// conditions are phrased in three-way-compare form — !(a<c || a>c) rather
// than a==c — so float NaN behaves exactly like the boxed cmpOrder path;
// for ints the forms are equivalent and compile to the plain comparisons.
func selCmp[T int64 | float64](vals []T, op Op, c T, in, dst Sel) Sel {
	dst = dst[:len(in)]
	k := 0
	switch op {
	case Eq:
		for _, r := range in {
			dst[k] = r
			a := vals[r]
			k += b2i(!(a < c || a > c))
		}
	case Ne:
		for _, r := range in {
			dst[k] = r
			a := vals[r]
			k += b2i(a < c || a > c)
		}
	case Lt:
		for _, r := range in {
			dst[k] = r
			k += b2i(vals[r] < c)
		}
	case Le:
		for _, r := range in {
			dst[k] = r
			k += b2i(!(vals[r] > c))
		}
	case Gt:
		for _, r := range in {
			dst[k] = r
			k += b2i(vals[r] > c)
		}
	case Ge:
		for _, r := range in {
			dst[k] = r
			k += b2i(!(vals[r] < c))
		}
	}
	return dst[:k]
}

// selCmpCols narrows in to the rows where a's entry compares against b's
// under op — the column-vs-column form.
func selCmpCols[T int64 | float64](a, b []T, op Op, in, dst Sel) Sel {
	dst = dst[:len(in)]
	k := 0
	switch op {
	case Eq:
		for _, r := range in {
			dst[k] = r
			x, y := a[r], b[r]
			k += b2i(!(x < y || x > y))
		}
	case Ne:
		for _, r := range in {
			dst[k] = r
			x, y := a[r], b[r]
			k += b2i(x < y || x > y)
		}
	case Lt:
		for _, r := range in {
			dst[k] = r
			k += b2i(a[r] < b[r])
		}
	case Le:
		for _, r := range in {
			dst[k] = r
			k += b2i(!(a[r] > b[r]))
		}
	case Gt:
		for _, r := range in {
			dst[k] = r
			k += b2i(a[r] > b[r])
		}
	case Ge:
		for _, r := range in {
			dst[k] = r
			k += b2i(!(a[r] < b[r]))
		}
	}
	return dst[:k]
}

// SelInt64 narrows in to rows where vals[r] OP c.
func SelInt64(vals []int64, op Op, c int64, in, dst Sel) Sel {
	return selCmp(vals, op, c, in, dst)
}

// SelFloat64 narrows in to rows where vals[r] OP c, under boxed NaN
// semantics (see selCmp).
func SelFloat64(vals []float64, op Op, c float64, in, dst Sel) Sel {
	return selCmp(vals, op, c, in, dst)
}

// SelInt64Cols narrows in to rows where a[r] OP b[r].
func SelInt64Cols(a, b []int64, op Op, in, dst Sel) Sel {
	return selCmpCols(a, b, op, in, dst)
}

// SelFloat64Cols narrows in to rows where a[r] OP b[r].
func SelFloat64Cols(a, b []float64, op Op, in, dst Sel) Sel {
	return selCmpCols(a, b, op, in, dst)
}

// And intersects two sorted selections into dst (cap(dst) >= min lengths;
// may alias a).
func And(a, b, dst Sel) Sel {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	dst = dst[:n]
	k, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			dst[k] = av
			k++
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return dst[:k]
}

// Or unions two sorted selections into dst (cap(dst) >= len(a)+len(b); must
// not alias either input).
func Or(a, b, dst Sel) Sel {
	dst = dst[:len(a)+len(b)]
	k, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av == bv:
			dst[k] = av
			i++
			j++
		case av < bv:
			dst[k] = av
			i++
		default:
			dst[k] = bv
			j++
		}
		k++
	}
	for ; i < len(a); i++ {
		dst[k] = a[i]
		k++
	}
	for ; j < len(b); j++ {
		dst[k] = b[j]
		k++
	}
	return dst[:k]
}

// Diff writes a minus b (both sorted) into dst (cap(dst) >= len(a); may
// alias a) — how NOT is evaluated against an incoming selection: the rows of
// `in` that the inner predicate did not keep.
func Diff(a, b, dst Sel) Sel {
	dst = dst[:len(a)]
	k, j := 0, 0
	for _, av := range a {
		for j < len(b) && b[j] < av {
			j++
		}
		dst[k] = av
		k += b2i(j >= len(b) || b[j] != av)
	}
	return dst[:k]
}
