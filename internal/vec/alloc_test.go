package vec

import (
	"testing"

	"squall/internal/wire"
)

// TestVectorizedSelectLoopNoAlloc pins the per-frame alloc budget of the
// vectorized select hot loop at zero in steady state: once a FrameView's
// caches and the selection scratch have grown to frame size, re-viewing a
// frame, gathering its columns and narrowing selections must not touch the
// heap.
func TestVectorizedSelectLoopNoAlloc(t *testing.T) {
	batch := testBatch(256)
	frame := wire.AppendFooter(wire.EncodeBatch(nil, batch))
	var v FrameView
	sel := make(Sel, 0, len(batch))
	// Warm every cache the loop uses: column offsets, gathered values and
	// the view's identity-selection scratch.
	if !v.Reset(frame) {
		t.Fatal("footered frame rejected")
	}
	if _, ok := v.Int64s(0); !ok {
		t.Fatal("int gather failed")
	}
	if _, ok := v.Float64s(2); !ok {
		t.Fatal("float gather failed")
	}
	needle := []byte("BUILDING")
	allocs := testing.AllocsPerRun(200, func() {
		if !v.Reset(frame) {
			t.Fatal("footered frame rejected")
		}
		ints, ok := v.Int64s(0)
		if !ok {
			t.Fatal("int gather failed")
		}
		floats, ok := v.Float64s(2)
		if !ok {
			t.Fatal("float gather failed")
		}
		sel = SelInt64(ints, Gt, 10, v.All(), Grow(sel, v.Count()))
		sel = SelFloat64(floats, Le, 100, sel, sel)
		var bok bool
		sel, bok = v.SelBytesEq(3, needle, true, sel, sel)
		if !bok {
			t.Fatal("bytes kernel failed")
		}
	})
	if allocs != 0 {
		t.Errorf("vectorized select loop allocates %.1f objects per frame, want 0", allocs)
	}
}
