package vec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"squall/internal/types"
	"squall/internal/wire"
)

func ops() []Op { return []Op{Eq, Ne, Lt, Le, Gt, Ge} }

// holds is the boxed reference: three-way cmpOrder then CmpHolds, the shape
// types.Value.Compare feeds expr.CmpHolds.
func holds[T int64 | float64](op Op, a, c T) bool {
	cmp := 0
	if a < c {
		cmp = -1
	} else if a > c {
		cmp = 1
	}
	return cmpHolds(op, cmp)
}

func TestSelKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ints := make([]int64, 200)
	floats := make([]float64, 200)
	for i := range ints {
		ints[i] = int64(r.Intn(20) - 10)
		switch r.Intn(10) {
		case 0:
			floats[i] = math.NaN()
		case 1:
			floats[i] = math.Inf(1 - 2*r.Intn(2))
		default:
			floats[i] = float64(r.Intn(20)-10) / 2
		}
	}
	in := All(len(ints), nil)
	dst := make(Sel, 0, len(in))
	for _, op := range ops() {
		got := SelInt64(ints, op, 3, in, Grow(dst, len(in)))
		var want Sel
		for _, i := range in {
			if holds(op, ints[i], 3) {
				want = append(want, i)
			}
		}
		if !equalSel(got, want) {
			t.Fatalf("SelInt64 op=%d: got %v want %v", op, got, want)
		}
		gotF := SelFloat64(floats, op, 1.5, in, Grow(dst, len(in)))
		var wantF Sel
		for _, i := range in {
			if holds(op, floats[i], 1.5) {
				wantF = append(wantF, i)
			}
		}
		if !equalSel(gotF, wantF) {
			t.Fatalf("SelFloat64 op=%d: got %d rows want %d", op, len(gotF), len(wantF))
		}
		// NaN constant: cmp==0 against everything, so Eq/Le/Ge keep all rows.
		gotN := SelFloat64(floats, op, math.NaN(), in, Grow(dst, len(in)))
		var wantN Sel
		for _, i := range in {
			if holds(op, floats[i], math.NaN()) {
				wantN = append(wantN, i)
			}
		}
		if !equalSel(gotN, wantN) {
			t.Fatalf("SelFloat64 NaN op=%d: got %d rows want %d", op, len(gotN), len(wantN))
		}
		gotC := SelInt64Cols(ints, ints[10:], op, All(100, nil), Grow(dst, 100))
		var wantC Sel
		for i := int32(0); i < 100; i++ {
			if holds(op, ints[i], ints[i+10]) {
				wantC = append(wantC, i)
			}
		}
		if !equalSel(gotC, wantC) {
			t.Fatalf("SelInt64Cols op=%d mismatch", op)
		}
		gotFC := SelFloat64Cols(floats, floats[10:], op, All(100, nil), Grow(dst, 100))
		var wantFC Sel
		for i := int32(0); i < 100; i++ {
			if holds(op, floats[i], floats[i+10]) {
				wantFC = append(wantFC, i)
			}
		}
		if !equalSel(gotFC, wantFC) {
			t.Fatalf("SelFloat64Cols op=%d mismatch", op)
		}
	}
}

func TestSelKernelInPlaceNarrowing(t *testing.T) {
	vals := []int64{5, 1, 7, 2, 9}
	sel := All(5, nil)
	sel = SelInt64(vals, Gt, 3, sel, sel)
	if !equalSel(sel, Sel{0, 2, 4}) {
		t.Fatalf("in-place narrow: %v", sel)
	}
	sel = SelInt64(vals, Lt, 9, sel, sel)
	if !equalSel(sel, Sel{0, 2}) {
		t.Fatalf("second narrow: %v", sel)
	}
}

func TestSetKernels(t *testing.T) {
	a := Sel{0, 2, 4, 6, 8}
	b := Sel{1, 2, 3, 6, 9}
	if got := And(a, b, make(Sel, 0, 5)); !equalSel(got, Sel{2, 6}) {
		t.Fatalf("And: %v", got)
	}
	if got := Or(a, b, make(Sel, 0, 10)); !equalSel(got, Sel{0, 1, 2, 3, 4, 6, 8, 9}) {
		t.Fatalf("Or: %v", got)
	}
	if got := Diff(a, b, make(Sel, 0, 5)); !equalSel(got, Sel{0, 4, 8}) {
		t.Fatalf("Diff: %v", got)
	}
	if got := Diff(a, nil, make(Sel, 0, 5)); !equalSel(got, a) {
		t.Fatalf("Diff vs empty: %v", got)
	}
	if got := And(a, nil, make(Sel, 0, 5)); len(got) != 0 {
		t.Fatalf("And vs empty: %v", got)
	}
}

func testBatch(n int) []types.Tuple {
	batch := make([]types.Tuple, n)
	for i := range batch {
		batch[i] = types.Tuple{
			types.Int(int64(i*7 - 3)),
			types.Str("1996-01-02"),
			types.Float(float64(i) + 0.25),
			types.Str([]string{"BUILDING", "MACHINERY"}[i%2]),
		}
	}
	return batch
}

func newView(t *testing.T, batch []types.Tuple) *FrameView {
	t.Helper()
	frame := wire.AppendFooter(wire.EncodeBatch(nil, batch))
	v := &FrameView{}
	if !v.Reset(frame) {
		t.Fatal("FrameView.Reset rejected a footered frame")
	}
	return v
}

func TestFrameViewGathers(t *testing.T) {
	batch := testBatch(23)
	v := newView(t, batch)
	if v.Count() != len(batch) || v.NCols() != 4 {
		t.Fatalf("view %dx%d", v.Count(), v.NCols())
	}
	ints, ok := v.Int64s(0)
	if !ok {
		t.Fatal("Int64s(0) failed")
	}
	for i := range batch {
		if ints[i] != batch[i][0].I {
			t.Fatalf("row %d int: %d != %d", i, ints[i], batch[i][0].I)
		}
	}
	floats, ok := v.Float64s(2)
	if !ok {
		t.Fatal("Float64s(2) failed")
	}
	for i := range batch {
		if floats[i] != batch[i][2].F {
			t.Fatalf("row %d float: %g != %g", i, floats[i], batch[i][2].F)
		}
	}
	nums, ok := v.NumsAsFloat64(0)
	if !ok {
		t.Fatal("NumsAsFloat64(0) failed")
	}
	for i := range batch {
		if nums[i] != float64(batch[i][0].I) {
			t.Fatalf("row %d coerced: %g", i, nums[i])
		}
	}
	if _, ok := v.Int64s(1); ok {
		t.Fatal("Int64s on a string column should fail")
	}
	if _, ok := v.Float64s(0); ok {
		t.Fatal("Float64s on an int column should fail")
	}
	for i := range batch {
		sb, ok := v.StrBytes(3, int32(i))
		if !ok || string(sb) != batch[i][3].Str {
			t.Fatalf("row %d str: %q", i, sb)
		}
	}
}

func TestFrameViewRowsAndSplice(t *testing.T) {
	batch := testBatch(9)
	frame := wire.AppendFooter(wire.EncodeBatch(nil, batch))
	v := &FrameView{}
	if !v.Reset(frame) {
		t.Fatal("Reset failed")
	}
	var cur wire.Cursor
	r := 0
	_, _, err := wire.EachRow(frame, &cur, func(row []byte) error {
		got, ok := v.RowBytes(int32(r))
		if !ok || !bytes.Equal(got, row) {
			t.Fatalf("RowBytes(%d) = %x, want %x", r, got, row)
		}
		want := wire.SpliceRow(nil, &cur, []int{2, 0})
		spliced, ok := v.AppendRow(nil, []int{2, 0}, int32(r))
		if !ok || !bytes.Equal(spliced, want) {
			t.Fatalf("AppendRow(%d) = %x, want %x", r, spliced, want)
		}
		r++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.RowBytes(int32(len(batch))); ok {
		t.Fatal("RowBytes past the end should fail")
	}
}

func TestFrameViewBytesKernels(t *testing.T) {
	batch := testBatch(16)
	v := newView(t, batch)
	in := v.All()
	got, ok := v.SelBytesEq(3, []byte("BUILDING"), true, in, make(Sel, 0, len(in)))
	if !ok {
		t.Fatal("SelBytesEq failed")
	}
	var want Sel
	for i := range batch {
		if batch[i][3].Str == "BUILDING" {
			want = append(want, int32(i))
		}
	}
	if !equalSel(got, want) {
		t.Fatalf("SelBytesEq: %v want %v", got, want)
	}
	gotNe, ok := v.SelBytesEq(3, []byte("BUILDING"), false, in, make(Sel, 0, len(in)))
	if !ok || len(gotNe)+len(got) != len(batch) {
		t.Fatalf("SelBytesEq neq: %d + %d != %d", len(gotNe), len(got), len(batch))
	}
	gotLt, ok := v.SelBytesCmp(3, Lt, []byte("C"), in, make(Sel, 0, len(in)))
	if !ok || len(gotLt) != len(want) {
		t.Fatalf("SelBytesCmp Lt C: %v", gotLt)
	}
	if _, ok := v.SelBytesEq(0, []byte("x"), true, in, nil); ok {
		t.Fatal("SelBytesEq on int column should fail")
	}
}

func TestFrameViewRejectsBareFrame(t *testing.T) {
	v := &FrameView{}
	if v.Reset(wire.EncodeBatch(nil, testBatch(4))) {
		t.Fatal("Reset accepted a bare frame")
	}
	if v.Reset(nil) {
		t.Fatal("Reset accepted nil")
	}
	// Reuse after rejection must still work.
	if !v.Reset(wire.AppendFooter(wire.EncodeBatch(nil, testBatch(4)))) {
		t.Fatal("Reset failed after a rejected frame")
	}
	if _, ok := v.Int64s(0); !ok {
		t.Fatal("gather failed after view reuse")
	}
}

func TestFrameViewMixedKindColumn(t *testing.T) {
	batch := []types.Tuple{
		{types.Int(1), types.Int(10)},
		{types.Float(2.5), types.Int(20)},
	}
	v := newView(t, batch)
	if _, ok := v.Int64s(0); ok {
		t.Fatal("Int64s on a mixed column should fail")
	}
	if _, ok := v.NumsAsFloat64(0); ok {
		t.Fatal("NumsAsFloat64 on a mixed column should fail")
	}
	if ints, ok := v.Int64s(1); !ok || ints[0] != 10 || ints[1] != 20 {
		t.Fatalf("Int64s on the uniform column: %v %v", ints, ok)
	}
}

func equalSel(a, b Sel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
