package vec

import (
	"bytes"
	"encoding/binary"
	"math"

	"squall/internal/types"
	"squall/internal/wire"
)

// FrameView is a columnar view of one footered wire frame: per-column field
// offsets and gathered value slices, decoded lazily and cached per column so
// a predicate touching 2 of 8 columns never pays for the other 6. The view
// aliases the frame; it stays valid only as long as those bytes do, and is
// not safe for concurrent use. The zero value is ready for Reset, which
// recycles every cache slice across frames.
//
// Every gather validates as it goes — kind byte at each footer offset,
// payload bounds against the rows region — so a structurally valid but
// lying footer degrades into a per-column !ok (the caller falls back to the
// row path) rather than a wrong answer or an out-of-bounds read.
type FrameView struct {
	frame   []byte
	foot    wire.Footer
	ok      bool
	headLen int // bytes of each row's arity varint (uniform arity)
	cols    []colCache
	rowOffs []int32 // row start offsets; rowOffs[count] = RowsEnd
	rowsOK  uint8   // 0 unknown, 1 ok, 2 bad
	selAll  Sel     // scratch for All
}

// colCache holds one column's lazily decoded state.
type colCache struct {
	offs    []int32
	i64     []int64
	f64     []float64
	offsSt  uint8 // 0 unknown, 1 ok, 2 bad
	i64St   uint8
	f64St   uint8
	f64From uint8 // 1 when f64 was gathered via int conversion
}

// Reset points the view at a frame, reporting whether it carries a valid
// column-offset footer. On false the view is unusable (but reusable).
func (v *FrameView) Reset(frame []byte) bool {
	v.frame = frame
	v.ok = wire.ParseFooter(frame, &v.foot)
	v.rowsOK = 0
	if !v.ok {
		return false
	}
	v.headLen = uvarintLen(uint64(v.foot.NCols))
	if cap(v.cols) < v.foot.NCols {
		v.cols = make([]colCache, v.foot.NCols)
	}
	v.cols = v.cols[:v.foot.NCols]
	for i := range v.cols {
		c := &v.cols[i]
		c.offsSt, c.i64St, c.f64St, c.f64From = 0, 0, 0, 0
	}
	return true
}

// Count returns the number of rows in the frame.
func (v *FrameView) Count() int { return v.foot.Count }

// NCols returns the frame's uniform arity.
func (v *FrameView) NCols() int { return v.foot.NCols }

// KindByte returns column c's kind summary (a types.Kind byte, or
// wire.KindMixed).
func (v *FrameView) KindByte(c int) byte { return v.foot.KindByte(c) }

// All returns the identity selection over the frame's rows, backed by the
// view's scratch.
func (v *FrameView) All() Sel {
	v.selAll = All(v.foot.Count, v.selAll)
	return v.selAll
}

// Offsets returns column c's field offsets into the frame (one per row),
// decoding and caching them on first use.
func (v *FrameView) Offsets(c int) ([]int32, bool) {
	if !v.ok || c < 0 || c >= len(v.cols) {
		return nil, false
	}
	cc := &v.cols[c]
	if cc.offsSt == 0 {
		var ok bool
		cc.offs, ok = v.foot.ColOffsets(c, cc.offs)
		if ok {
			cc.offsSt = 1
		} else {
			cc.offsSt = 2
		}
	}
	return cc.offs, cc.offsSt == 1
}

// Int64s gathers column c as int64s — only when the kind summary says every
// row holds an INT. Each field's kind byte is re-verified during the
// gather, so a lying footer reports !ok instead of garbage values.
func (v *FrameView) Int64s(c int) ([]int64, bool) {
	if !v.ok || c < 0 || c >= len(v.cols) || v.KindByte(c) != byte(types.KindInt) {
		return nil, false
	}
	cc := &v.cols[c]
	if cc.i64St != 0 {
		return cc.i64, cc.i64St == 1
	}
	offs, ok := v.Offsets(c)
	if !ok {
		cc.i64St = 2
		return nil, false
	}
	if cap(cc.i64) < len(offs) {
		cc.i64 = make([]int64, len(offs))
	}
	cc.i64 = cc.i64[:len(offs)]
	end := v.foot.RowsEnd
	for r, off := range offs {
		pos := int(off)
		if pos+1 >= end || v.frame[pos] != byte(types.KindInt) {
			cc.i64St = 2
			return nil, false
		}
		// Inlined 1–2 byte zigzag fast path, as everywhere else on the hot
		// path (wire.BatchDecoder, slab.DecodeInto).
		var x int64
		if b := v.frame[pos+1]; b < 0x80 {
			x = int64(b >> 1)
			if b&1 != 0 {
				x = ^x
			}
		} else if pos+2 < end && v.frame[pos+2] < 0x80 {
			u := uint64(b&0x7f) | uint64(v.frame[pos+2])<<7
			x = int64(u >> 1)
			if u&1 != 0 {
				x = ^x
			}
		} else {
			var n int
			x, n = binary.Varint(v.frame[pos+1 : end])
			if n <= 0 {
				cc.i64St = 2
				return nil, false
			}
		}
		cc.i64[r] = x
	}
	cc.i64St = 1
	return cc.i64, true
}

// Float64s gathers column c as float64s — only when the kind summary says
// every row holds a FLOAT.
func (v *FrameView) Float64s(c int) ([]float64, bool) {
	if !v.ok || c < 0 || c >= len(v.cols) || v.KindByte(c) != byte(types.KindFloat) {
		return nil, false
	}
	cc := &v.cols[c]
	if cc.f64St != 0 && cc.f64From == 0 {
		return cc.f64, cc.f64St == 1
	}
	offs, ok := v.Offsets(c)
	if !ok {
		cc.f64St = 2
		return nil, false
	}
	if cap(cc.f64) < len(offs) {
		cc.f64 = make([]float64, len(offs))
	}
	cc.f64 = cc.f64[:len(offs)]
	end := v.foot.RowsEnd
	for r, off := range offs {
		pos := int(off)
		if pos+9 > end || v.frame[pos] != byte(types.KindFloat) {
			cc.f64St = 2
			return nil, false
		}
		cc.f64[r] = math.Float64frombits(binary.LittleEndian.Uint64(v.frame[pos+1:]))
	}
	cc.f64St = 1
	cc.f64From = 0
	return cc.f64, true
}

// NumsAsFloat64 gathers column c as float64s under types.Value.AsFloat
// coercion: FLOAT columns directly, INT columns via int64→float64 conversion
// — exactly the coercion the boxed cross-kind numeric comparison applies.
func (v *FrameView) NumsAsFloat64(c int) ([]float64, bool) {
	if !v.ok || c < 0 || c >= len(v.cols) {
		return nil, false
	}
	switch v.KindByte(c) {
	case byte(types.KindFloat):
		return v.Float64s(c)
	case byte(types.KindInt):
		cc := &v.cols[c]
		if cc.f64St != 0 && cc.f64From == 1 {
			return cc.f64, cc.f64St == 1
		}
		ints, ok := v.Int64s(c)
		if !ok {
			cc.f64St = 2
			cc.f64From = 1
			return nil, false
		}
		if cap(cc.f64) < len(ints) {
			cc.f64 = make([]float64, len(ints))
		}
		cc.f64 = cc.f64[:len(ints)]
		for r, x := range ints {
			cc.f64[r] = float64(x)
		}
		cc.f64St = 1
		cc.f64From = 1
		return cc.f64, true
	default:
		return nil, false
	}
}

// fieldEnd returns the end offset of the field starting at off, by decoding
// its kind byte and payload length; false on any malformation.
func (v *FrameView) fieldEnd(off int) (int, bool) {
	end := v.foot.RowsEnd
	if off >= end {
		return 0, false
	}
	switch types.Kind(v.frame[off]) {
	case types.KindNull:
		return off + 1, true
	case types.KindInt:
		_, n := binary.Varint(v.frame[off+1 : end])
		if n <= 0 {
			return 0, false
		}
		return off + 1 + n, true
	case types.KindFloat:
		if off+9 > end {
			return 0, false
		}
		return off + 9, true
	case types.KindString:
		l, n := binary.Uvarint(v.frame[off+1 : end])
		if n <= 0 || uint64(end-off-1-n) < l {
			return 0, false
		}
		return off + 1 + n + int(l), true
	default:
		return 0, false
	}
}

// FieldBytes returns the raw encoding (kind byte + payload) of row r's
// field c — the splicing unit, same contract as Cursor.FieldBytes.
func (v *FrameView) FieldBytes(c int, r int32) ([]byte, bool) {
	offs, ok := v.Offsets(c)
	if !ok || int(r) >= len(offs) {
		return nil, false
	}
	off := int(offs[r])
	end, ok := v.fieldEnd(off)
	if !ok {
		return nil, false
	}
	return v.frame[off:end], true
}

// StrBytes returns row r's field c string payload without copying; false
// when the field is not a STRING.
func (v *FrameView) StrBytes(c int, r int32) ([]byte, bool) {
	fb, ok := v.FieldBytes(c, r)
	if !ok || len(fb) == 0 || types.Kind(fb[0]) != types.KindString {
		return nil, false
	}
	l, n := binary.Uvarint(fb[1:])
	if n <= 0 {
		return nil, false
	}
	return fb[1+n : 1+n+int(l)], true
}

// rowBounds decodes (and caches) the row start-offset table from column 0's
// offsets: a row starts headLen bytes before its first field.
func (v *FrameView) rowBounds() ([]int32, bool) {
	if v.rowsOK == 0 {
		v.rowsOK = 2
		offs, ok := v.Offsets(0)
		if ok {
			if cap(v.rowOffs) < len(offs)+1 {
				v.rowOffs = make([]int32, len(offs)+1)
			}
			v.rowOffs = v.rowOffs[:len(offs)+1]
			good := true
			for r, off := range offs {
				start := off - int32(v.headLen)
				if int(start) < v.foot.RowsOff {
					good = false
					break
				}
				v.rowOffs[r] = start
			}
			v.rowOffs[len(offs)] = int32(v.foot.RowsEnd)
			if good {
				v.rowsOK = 1
			}
		}
	}
	return v.rowOffs, v.rowsOK == 1
}

// RowBytes returns the complete encoding of row r, sliced out of the frame
// by the footer's offsets — no cursor scan.
func (v *FrameView) RowBytes(r int32) ([]byte, bool) {
	rows, ok := v.rowBounds()
	if !ok || r < 0 || int(r)+1 >= len(rows) {
		return nil, false
	}
	return v.frame[rows[r]:rows[r+1]], true
}

// AppendRow splices row r's fields at cols (in order) as a new encoded row
// appended to dst — the packed projection, byte-identical to
// wire.SpliceRow over a cursor on the same row.
func (v *FrameView) AppendRow(dst []byte, cols []int, r int32) ([]byte, bool) {
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		fb, ok := v.FieldBytes(c, r)
		if !ok {
			return dst, false
		}
		dst = append(dst, fb...)
	}
	return dst, true
}

// SelBytesEq narrows in to the rows whose field-c string payload is
// (eq=true) or is not (eq=false) equal to needle. Column c must summarize
// as STRING; false when it does not or a field fails to parse.
func (v *FrameView) SelBytesEq(c int, needle []byte, eq bool, in, dst Sel) (Sel, bool) {
	if v.KindByte(c) != byte(types.KindString) {
		return nil, false
	}
	offs, ok := v.Offsets(c)
	if !ok {
		return nil, false
	}
	end := v.foot.RowsEnd
	dst = dst[:len(in)]
	k := 0
	for _, r := range in {
		pos := int(offs[r])
		if pos+1 >= end || v.frame[pos] != byte(types.KindString) {
			return nil, false
		}
		var l uint64
		var n int
		if b := v.frame[pos+1]; b < 0x80 {
			l, n = uint64(b), 1
		} else {
			l, n = binary.Uvarint(v.frame[pos+1 : end])
			if n <= 0 {
				return nil, false
			}
		}
		start := pos + 1 + n
		if uint64(end-start) < l {
			return nil, false
		}
		dst[k] = r
		k += b2i(bytes.Equal(v.frame[start:start+int(l)], needle) == eq)
	}
	return dst[:k], true
}

// SelBytesCmp narrows in to the rows whose field-c string payload satisfies
// OP needle under bytewise ordering — the ordered-string comparison form.
func (v *FrameView) SelBytesCmp(c int, op Op, needle []byte, in, dst Sel) (Sel, bool) {
	if v.KindByte(c) != byte(types.KindString) {
		return nil, false
	}
	offs, ok := v.Offsets(c)
	if !ok {
		return nil, false
	}
	end := v.foot.RowsEnd
	dst = dst[:len(in)]
	k := 0
	for _, r := range in {
		pos := int(offs[r])
		if pos+1 >= end || v.frame[pos] != byte(types.KindString) {
			return nil, false
		}
		l, n := binary.Uvarint(v.frame[pos+1 : end])
		if n <= 0 {
			return nil, false
		}
		start := pos + 1 + n
		if uint64(end-start) < l {
			return nil, false
		}
		cmp := bytes.Compare(v.frame[start:start+int(l)], needle)
		dst[k] = r
		k += b2i(cmpHolds(op, cmp))
	}
	return dst[:k], true
}

// cmpHolds mirrors expr.CmpHolds for the kernels that produce a three-way
// result.
func cmpHolds(op Op, cmp int) bool {
	switch op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

// uvarintLen returns the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
