package ops

import (
	"fmt"

	"squall/internal/dataflow"
	"squall/internal/dbtoaster"
	"squall/internal/expr"
	"squall/internal/localjoin"
	"squall/internal/types"
)

// LocalJoinKind selects the local algorithm run inside each joiner task
// (§3.3): traditional index-nested-loop, or DBToaster recursive IVM.
type LocalJoinKind uint8

const (
	// Traditional builds hash/tree indexes on base relations and
	// re-enumerates matching combinations on every arrival.
	Traditional LocalJoinKind = iota
	// DBToaster materializes intermediate views (tuple-level or aggregate)
	// and probes them instead — the HyLD operator's local half (§3.4).
	DBToaster
)

// String names the local join.
func (k LocalJoinKind) String() string {
	if k == DBToaster {
		return "DBToaster"
	}
	return "Traditional"
}

// JoinBolt runs a local multi-way join per task and emits delta result
// tuples (concatenated relation order), optionally post-processed by a
// pipeline. relOf maps upstream component names to relation indexes.
func JoinBolt(g *expr.JoinGraph, kind LocalJoinKind, relOf map[string]int, post Pipeline) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		var mj localjoin.MultiJoin
		if kind == DBToaster {
			mj = dbtoaster.NewTupleJoin(g)
		} else {
			mj = localjoin.NewTraditional(g)
		}
		return &joinBolt{mj: mj, relOf: relOf, post: post}
	}
}

type joinBolt struct {
	mj    localjoin.MultiJoin
	relOf map[string]int
	post  Pipeline
}

func (b *joinBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	rel, ok := b.relOf[in.Stream]
	if !ok {
		return fmt.Errorf("ops: join bolt has no relation for stream %q", in.Stream)
	}
	deltas, err := b.mj.OnTuple(rel, in.Tuple)
	if err != nil {
		return err
	}
	for _, d := range deltas {
		rows := []types.Tuple{d.Concat()}
		if b.post != nil {
			rows, err = b.post.Apply(rows[0])
			if err != nil {
				return err
			}
		}
		for _, r := range rows {
			if err := out.Emit(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *joinBolt) Finish(*dataflow.Collector) error { return nil }

func (b *joinBolt) MemSize() int { return b.mj.MemSize() }

// AggJoinBolt runs the aggregate-view DBToaster operator (HyLD with a final
// aggregation pushed into the joiner). Each task emits partial rows
// (group..., cnt, sum) on Finish; route them to MergeBolt via Fields on the
// group columns (or Global for a single merger).
//
// With incremental set, a partial delta row is emitted on every update
// instead — full online semantics.
func AggJoinBolt(g *expr.JoinGraph, spec dbtoaster.AggSpec, relOf map[string]int, incremental bool) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		a, err := dbtoaster.NewAggJoin(g, spec)
		return &aggJoinBolt{a: a, err: err, relOf: relOf, incremental: incremental}
	}
}

type aggJoinBolt struct {
	a           *dbtoaster.AggJoin
	err         error
	relOf       map[string]int
	incremental bool
}

func (b *aggJoinBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	if b.err != nil {
		return b.err
	}
	rel, ok := b.relOf[in.Stream]
	if !ok {
		return fmt.Errorf("ops: agg join bolt has no relation for stream %q", in.Stream)
	}
	deltas, err := b.a.OnTuple(rel, in.Tuple)
	if err != nil {
		return err
	}
	if !b.incremental {
		return nil
	}
	for _, d := range deltas {
		row := append(d.Group.Clone(), types.Int(d.Cnt), types.Float(d.Sum))
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b *aggJoinBolt) Finish(out *dataflow.Collector) error {
	if b.err != nil {
		return b.err
	}
	if b.incremental {
		return nil
	}
	for _, d := range b.a.Result() {
		row := append(d.Group.Clone(), types.Int(d.Cnt), types.Float(d.Sum))
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b *aggJoinBolt) MemSize() int {
	if b.a == nil {
		return 0
	}
	return b.a.MemSize()
}
