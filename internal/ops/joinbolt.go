package ops

import (
	"fmt"

	"squall/internal/dataflow"
	"squall/internal/dbtoaster"
	"squall/internal/expr"
	"squall/internal/localjoin"
	"squall/internal/slab"
	"squall/internal/types"
	"squall/internal/wire"
)

// LocalJoinKind selects the local algorithm run inside each joiner task
// (§3.3): traditional index-nested-loop, or DBToaster recursive IVM.
type LocalJoinKind uint8

const (
	// Traditional builds hash/tree indexes on base relations and
	// re-enumerates matching combinations on every arrival.
	Traditional LocalJoinKind = iota
	// DBToaster materializes intermediate views (tuple-level or aggregate)
	// and probes them instead — the HyLD operator's local half (§3.4).
	DBToaster
)

// String names the local join.
func (k LocalJoinKind) String() string {
	if k == DBToaster {
		return "DBToaster"
	}
	return "Traditional"
}

// JoinBolt runs a local multi-way join per task and emits delta result
// tuples (concatenated relation order), optionally post-processed by a
// pipeline. relOf maps upstream component names to relation indexes; legacy
// selects the pre-slab map state layout (squall.Options.LegacyState).
// packed, when the local algorithm is packed-capable for this graph, makes
// the bolt frame-capable (dataflow.RowBolt): arrivals blit into the slab
// without a decode/re-encode round trip and delta rows leave as spliced
// encoded bytes (squall.Options.PackedExec).
//
// tier, when non-nil, puts the slab layouts' base-row arenas in tiered mode
// (sealed, checksummed, spillable segments — squall.Options.Tier); it is
// ignored by the legacy map layouts, which have no arenas to tier.
func JoinBolt(g *expr.JoinGraph, kind LocalJoinKind, relOf map[string]int, post Pipeline, legacy, packed bool, tier *slab.TierConfig) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		mk := func() localjoin.MultiJoin {
			switch {
			case kind == DBToaster && legacy:
				return dbtoaster.NewTupleJoinMap(g)
			case kind == DBToaster:
				if tier != nil {
					tc := *tier
					tc.KeyPrefix = fmt.Sprintf("%s-t%d", tier.KeyPrefix, task)
					return dbtoaster.NewTupleJoinTiered(g, tc)
				}
				return dbtoaster.NewTupleJoin(g)
			case legacy:
				return localjoin.NewTraditionalMap(g)
			default:
				if tier != nil {
					tc := *tier
					tc.KeyPrefix = fmt.Sprintf("%s-t%d", tier.KeyPrefix, task)
					return localjoin.NewTraditionalTiered(g, tc)
				}
				return localjoin.NewTraditional(g)
			}
		}
		jb := &joinBolt{mk: mk, mj: mk(), relOf: relOf, post: post}
		if packed {
			if pj, ok := jb.mj.(localjoin.PackedJoin); ok && pj.PackedCapable() {
				return &packedJoinBolt{joinBolt: jb, pp: CompilePipeline(post)}
			}
		}
		return jb
	}
}

// packedJoinBolt is joinBolt's frame-capable wrapper. Both entry points emit
// packed rows — ExecuteRow natively, Execute by encoding the incoming tuple
// first — so one task never interleaves tuple and row batches on an edge.
type packedJoinBolt struct {
	*joinBolt
	pp     *PackedPipeline // compiled post pipeline (empty = pass-through)
	out    *dataflow.Collector
	emitFn func(row []byte) error
	enc    []byte
	encCur wire.Cursor
}

var _ dataflow.RowBolt = (*packedJoinBolt)(nil)
var _ dataflow.Repartitioner = (*packedJoinBolt)(nil)

// ExecuteRow feeds one encoded arrival through the packed local join.
func (b *packedJoinBolt) ExecuteRow(in dataflow.RowInput, out *dataflow.Collector) error {
	rel, ok := b.relOf[in.Stream]
	if !ok {
		return fmt.Errorf("ops: join bolt has no relation for stream %q", in.Stream)
	}
	if b.emitFn == nil {
		// One collector serves the task for its whole life; bind the emit
		// closure once so the hot path allocates nothing.
		b.out = out
		var postCur wire.Cursor
		b.emitFn = func(row []byte) error {
			if b.pp.Empty() {
				return b.out.EmitRow(row)
			}
			if err := postCur.Reset(row); err != nil {
				return err
			}
			return b.pp.EachRow(row, &postCur, func(r []byte, _ *wire.Cursor) error {
				return b.out.EmitRow(r)
			})
		}
	}
	// mk() preserves the concrete type, so reshape/recovery rebuilds stay
	// packed-capable; assert per call rather than caching across rebirths.
	return b.mj.(localjoin.PackedJoin).OnRow(rel, in.Row, in.Cur, b.emitFn)
}

// Execute handles tuple-path deliveries (adaptive edges, recovery replays)
// by encoding once and reusing the packed path, keeping the output family
// uniform.
func (b *packedJoinBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	b.enc = wire.Encode(b.enc[:0], in.Tuple)
	if err := b.encCur.Reset(b.enc); err != nil {
		return err
	}
	return b.ExecuteRow(dataflow.RowInput{Stream: in.Stream, FromTask: in.FromTask, Row: b.enc, Cur: &b.encCur}, out)
}

type joinBolt struct {
	mk    func() localjoin.MultiJoin // fresh operator for reshape rebuilds
	mj    localjoin.MultiJoin
	relOf map[string]int
	post  Pipeline
}

func (b *joinBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	rel, ok := b.relOf[in.Stream]
	if !ok {
		return fmt.Errorf("ops: join bolt has no relation for stream %q", in.Stream)
	}
	deltas, err := b.mj.OnTuple(rel, in.Tuple)
	if err != nil {
		return err
	}
	for _, d := range deltas {
		rows := []types.Tuple{d.Concat()}
		if b.post != nil {
			rows, err = b.post.Apply(rows[0])
			if err != nil {
				return err
			}
		}
		for _, r := range rows {
			if err := out.Emit(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *joinBolt) Finish(*dataflow.Collector) error { return nil }

func (b *joinBolt) MemSize() int { return b.mj.MemSize() }

// tierJoin is the tier surface the slab-backed local joins expose; the map
// layouts don't implement it, and the bolt degrades gracefully.
type tierJoin interface {
	SpilledBytes() int
	ReleaseState()
	ExportRelTier(rel, batchSize int, footer bool, visit func(frame []byte, count int) bool) ([]slab.SegmentCk, bool, error)
}

// SpilledBytes reports state bytes resident on disk only (slab.SpillReporter;
// MemSize already excludes them).
func (b *joinBolt) SpilledBytes() int {
	if tj, ok := b.mj.(tierJoin); ok {
		return tj.SpilledBytes()
	}
	return 0
}

// ReleaseState refunds the operator's pressure-gauge charges
// (dataflow.StateReleaser); called when the task instance is dropped.
func (b *joinBolt) ReleaseState() {
	if tj, ok := b.mj.(tierJoin); ok {
		tj.ReleaseState()
	}
}

// ExportStateTier exports one relation for an incremental checkpoint: sealed
// segments by store reference, hot rows as frames (dataflow.TierExporter).
// ok=false sends the caller to the full-frame path.
func (b *joinBolt) ExportStateTier(rel, batchSize int, footer bool, visit func(frame []byte, count int) bool) ([]slab.SegmentCk, bool, error) {
	tj, ok := b.mj.(tierJoin)
	if !ok {
		return nil, false, nil
	}
	return tj.ExportRelTier(rel, batchSize, footer, visit)
}

// Live-repartitioning hooks (dataflow.Repartitioner), backed by the local
// join's localjoin.Migrator snapshot/silent-insert primitives. Sides are
// the adaptive 1-Bucket relation indexes (0 = rows, 1 = columns).
var _ dataflow.Repartitioner = (*joinBolt)(nil)

// migrator returns the local join's migration hooks, or an error for local
// algorithms that cannot snapshot their state.
func (b *joinBolt) migrator() (localjoin.Migrator, error) {
	m, ok := b.mj.(localjoin.Migrator)
	if !ok {
		return nil, fmt.Errorf("ops: local join %T does not support state migration", b.mj)
	}
	return m, nil
}

// StoredCount reports one side's stored tuples for the control plane's
// load reports.
func (b *joinBolt) StoredCount(side int) int {
	m, err := b.migrator()
	if err != nil {
		return 0
	}
	return m.RelCount(side)
}

// ExportState snapshots one side's stored tuples for migration.
func (b *joinBolt) ExportState(side int) []types.Tuple {
	m, err := b.migrator()
	if err != nil {
		return nil
	}
	return m.ExportRel(side)
}

// ExportStateFrames streams one side's state as ready wire batch frames
// (dataflow.FrameExporter) when the local join stores rows wire-encoded —
// the slab layouts blit packed rows without materializing tuples. Reports
// false when the local algorithm cannot (map layout), sending the caller to
// ExportState.
func (b *joinBolt) ExportStateFrames(side, batchSize int, footer bool, visit func(frame []byte, count int) bool) bool {
	fe, ok := b.mj.(localjoin.FrameExporter)
	if !ok {
		return false
	}
	return fe.ExportRelFrames(side, batchSize, footer, visit)
}

// ResetForReshape rebuilds the local join from scratch, re-inserting only
// the sides this task keeps under the new matrix. Rebuilding (rather than
// deleting per-tuple) keeps the hook implementable by every local
// algorithm, including view-materializing ones.
func (b *joinBolt) ResetForReshape(keep [2]bool) error {
	if keep[0] && keep[1] {
		// Both sides stay in place (the cell's coordinates survived the
		// reshape): nothing to rebuild, and any merged-in state arrives
		// through ImportState.
		return nil
	}
	m, err := b.migrator()
	if err != nil {
		return err
	}
	var kept [2][]types.Tuple
	for side, k := range keep {
		if k {
			kept[side] = m.ExportRel(side)
		}
	}
	fresh := b.mk()
	fm, ok := fresh.(localjoin.Migrator)
	if !ok {
		return fmt.Errorf("ops: local join %T does not support state migration", fresh)
	}
	for side, ts := range kept {
		for _, t := range ts {
			if err := fm.Insert(side, t); err != nil {
				return err
			}
		}
	}
	// The old operator is dropped: refund its pressure-gauge charges before
	// the fresh one starts accruing its own.
	if tj, ok := b.mj.(tierJoin); ok {
		tj.ReleaseState()
	}
	b.mj = fresh
	return nil
}

// ImportState silently inserts migrated tuples: no delta results, because
// every pair among pre-barrier state already met at exactly one old cell.
func (b *joinBolt) ImportState(side int, tuples []types.Tuple) error {
	m, err := b.migrator()
	if err != nil {
		return err
	}
	for _, t := range tuples {
		if err := m.Insert(side, t); err != nil {
			return err
		}
	}
	return nil
}

// AggJoinBolt runs the aggregate-view DBToaster operator (HyLD with a final
// aggregation pushed into the joiner). Each task emits partial rows
// (group..., cnt, sum) on Finish; route them to MergeBolt via Fields on the
// group columns (or Global for a single merger).
//
// With incremental set, a partial delta row is emitted on every update
// instead — full online semantics.
func AggJoinBolt(g *expr.JoinGraph, spec dbtoaster.AggSpec, relOf map[string]int, incremental bool) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		a, err := dbtoaster.NewAggJoin(g, spec)
		return &aggJoinBolt{a: a, err: err, relOf: relOf, incremental: incremental}
	}
}

type aggJoinBolt struct {
	a           *dbtoaster.AggJoin
	err         error
	relOf       map[string]int
	incremental bool
}

func (b *aggJoinBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	if b.err != nil {
		return b.err
	}
	rel, ok := b.relOf[in.Stream]
	if !ok {
		return fmt.Errorf("ops: agg join bolt has no relation for stream %q", in.Stream)
	}
	deltas, err := b.a.OnTuple(rel, in.Tuple)
	if err != nil {
		return err
	}
	if !b.incremental {
		return nil
	}
	for _, d := range deltas {
		row := append(d.Group.Clone(), types.Int(d.Cnt), types.Float(d.Sum))
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b *aggJoinBolt) Finish(out *dataflow.Collector) error {
	if b.err != nil {
		return b.err
	}
	if b.incremental {
		return nil
	}
	for _, d := range b.a.Result() {
		row := append(d.Group.Clone(), types.Int(d.Cnt), types.Float(d.Sum))
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b *aggJoinBolt) MemSize() int {
	if b.a == nil {
		return 0
	}
	return b.a.MemSize()
}
