package ops

import (
	"testing"

	"squall/internal/expr"
	"squall/internal/types"
	"squall/internal/vec"
	"squall/internal/wire"
)

// TestRunFrameNoAllocSteadyState pins the vectorized select/project frame
// loop at zero heap objects per frame once the pipeline's scratch buffers
// have warmed: frames whose survivors are emitted verbatim and frames whose
// survivors are projected both stay alloc-free.
func TestRunFrameNoAllocSteadyState(t *testing.T) {
	rows := make([]types.Tuple, 128)
	for i := range rows {
		rows[i] = types.Tuple{
			types.Int(int64(i % 50)),
			types.Str("1996-01-02"),
			types.Float(float64(i) + 0.5),
			types.Str([]string{"BUILDING", "MACHINERY"}[i%2]),
		}
	}
	frame := frameOf(rows)
	for _, tc := range []struct {
		name string
		p    Pipeline
	}{
		{"select-only", Pipeline{
			Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(25)}},
		}},
		{"select-project", Pipeline{
			Select{P: expr.Cmp{Op: expr.Ge, L: expr.C(2), R: expr.F(10)}},
			Project{Es: []expr.Expr{expr.C(0), expr.C(3)}},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pp := CompilePipeline(tc.p)
			view := &vec.FrameView{}
			emit := func(row []byte, cur *wire.Cursor) error { return nil }
			run := func() {
				if !view.Reset(frame) {
					t.Fatal("footered frame rejected")
				}
				handled, err := pp.RunFrame(view, emit)
				if err != nil || !handled {
					t.Fatalf("RunFrame handled=%v err=%v", handled, err)
				}
			}
			run() // warm scratch: selection vectors, column gathers, row buffer
			allocs := testing.AllocsPerRun(200, run)
			if allocs != 0 {
				t.Errorf("RunFrame allocates %.1f objects per frame, want 0", allocs)
			}
		})
	}
}

// TestFoldFrameNoAllocSteadyState pins the group-wise aggregation fold at
// zero heap objects per frame once every group exists: key splicing, slot
// probing and accumulator bumps all run on reused scratch.
func TestFoldFrameNoAllocSteadyState(t *testing.T) {
	rows := make([]types.Tuple, 128)
	for i := range rows {
		rows[i] = types.Tuple{
			types.Int(int64(i % 8)), // 8 groups
			types.Str("pad"),
			types.Float(float64(i)),
		}
	}
	frame := frameOf(rows)
	a := NewAgg([]expr.Expr{expr.C(0)}, Sum, expr.C(2), false)
	if !a.PackedCapable() {
		t.Fatal("col-ref agg must be packed-capable")
	}
	view := &vec.FrameView{}
	fold := func() {
		if !view.Reset(frame) {
			t.Fatal("footered frame rejected")
		}
		handled, err := a.FoldFrame(view, view.All())
		if err != nil || !handled {
			t.Fatalf("FoldFrame handled=%v err=%v", handled, err)
		}
	}
	fold() // materialize all groups and warm the scratch
	allocs := testing.AllocsPerRun(200, fold)
	if allocs != 0 {
		t.Errorf("FoldFrame allocates %.1f objects per frame, want 0", allocs)
	}
}
