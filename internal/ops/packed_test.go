package ops

import (
	"fmt"
	"math/rand"
	"testing"

	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/types"
	"squall/internal/wire"
)

// pipelineRow synthesizes rows with mixed kinds for pipeline differentials.
func pipelineRow(rng *rand.Rand, i int) types.Tuple {
	return types.Tuple{
		types.Int(int64(rng.Intn(50))),
		types.Str(fmt.Sprintf("1996-%02d-%02d", 1+i%12, 1+i%28)),
		types.Float(float64(rng.Intn(100)) / 4),
		types.Int(int64(i)),
	}
}

// TestPackedPipelineAgreesWithPipeline runs the same rows through the boxed
// Pipeline and its compiled PackedPipeline (lowered select, spliced
// project, and a materializing fallback stage) and requires identical
// output streams.
func TestPackedPipelineAgreesWithPipeline(t *testing.T) {
	pipelines := []Pipeline{
		nil,
		{Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(25)}}},
		{Project{Es: []expr.Expr{expr.C(3), expr.C(0)}}},
		{
			Select{P: expr.Cmp{Op: expr.Ge, L: expr.C(2), R: expr.F(5)}},
			Project{Es: []expr.Expr{expr.C(0), expr.C(2), expr.C(3)}},
			Select{P: expr.Cmp{Op: expr.Ne, L: expr.C(0), R: expr.I(7)}},
		},
		// Unlowerable select (DATE) forces the materializing fallback.
		{
			Select{P: expr.Cmp{Op: expr.Gt, L: expr.Date{Inner: expr.C(1)}, R: expr.I(9500)}},
			Project{Es: []expr.Expr{expr.C(1), expr.C(3)}},
		},
		// Unlowerable projection (arith) mid-pipeline.
		{
			Project{Es: []expr.Expr{expr.Arith{Op: expr.Mul, L: expr.C(0), R: expr.I(3)}, expr.C(3)}},
			Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(60)}},
		},
	}
	rng := rand.New(rand.NewSource(13))
	rows := make([]types.Tuple, 300)
	for i := range rows {
		rows[i] = pipelineRow(rng, i)
	}
	for pi, p := range pipelines {
		pp := CompilePipeline(p)
		var cur wire.Cursor
		var enc []byte
		for _, tu := range rows {
			var want []types.Tuple
			if err := p.Each(tu, func(o types.Tuple) error { want = append(want, o.Clone()); return nil }); err != nil {
				t.Fatalf("pipeline %d boxed: %v", pi, err)
			}
			enc = wire.Encode(enc[:0], tu)
			if err := cur.Reset(enc); err != nil {
				t.Fatal(err)
			}
			var got []types.Tuple
			err := pp.EachRow(enc, &cur, func(row []byte, _ *wire.Cursor) error {
				o, _, err := wire.Decode(row)
				if err != nil {
					return err
				}
				got = append(got, o)
				return nil
			})
			if err != nil {
				t.Fatalf("pipeline %d packed: %v", pi, err)
			}
			if len(got) != len(want) {
				t.Fatalf("pipeline %d on %v: packed %d rows, boxed %d", pi, tu, len(got), len(want))
			}
			for k := range got {
				if !got[k].Equal(want[k]) {
					t.Fatalf("pipeline %d on %v: row %d packed %v, boxed %v", pi, tu, k, got[k], want[k])
				}
			}
			// RunOne must agree on simple pipelines.
			if pp.Simple() {
				if err := cur.Reset(enc); err != nil {
					t.Fatal(err)
				}
				row, _, keep, err := pp.RunOne(enc, &cur)
				if err != nil {
					t.Fatal(err)
				}
				if keep != (len(want) == 1) {
					t.Fatalf("pipeline %d RunOne keep=%v, want %d rows", pi, keep, len(want))
				}
				if keep {
					o, _, err := wire.Decode(row)
					if err != nil {
						t.Fatal(err)
					}
					if !o.Equal(want[0]) {
						t.Fatalf("pipeline %d RunOne %v, want %v", pi, o, want[0])
					}
				}
			}
		}
	}
}

// TestPackedSpoutMatchesPipedSpout drains a PackedSpout through both of its
// faces (NextRow and Next) against PipedSpout's stream.
func TestPackedSpoutMatchesPipedSpout(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := make([]types.Tuple, 200)
	for i := range rows {
		rows[i] = pipelineRow(rng, i)
	}
	p := Pipeline{
		Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(30)}},
		Project{Es: []expr.Expr{expr.C(0), expr.C(3)}},
	}
	var want []types.Tuple
	piped := PipedSpout(dataflow.SliceSpout(rows), p)(0, 1)
	for {
		tu, ok := piped.Next()
		if !ok {
			break
		}
		want = append(want, tu)
	}
	rs := PackedSpout(dataflow.SliceSpout(rows), p)(0, 1).(dataflow.RowSpout)
	var got []types.Tuple
	for {
		row, ok := rs.NextRow()
		if !ok {
			break
		}
		tu, _, err := wire.Decode(row)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tu)
	}
	if len(got) != len(want) {
		t.Fatalf("packed %d rows, piped %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d: packed %v, piped %v", i, got[i], want[i])
		}
	}
}

// TestAggFoldRowAgreesWithFold differentials the packed aggregation fold.
func TestAggFoldRowAgreesWithFold(t *testing.T) {
	for _, kind := range []AggKind{Count, Sum, Avg} {
		var sumE expr.Expr
		if kind != Count {
			sumE = expr.C(2)
		}
		boxed := NewAgg([]expr.Expr{expr.C(0)}, kind, sumE, false)
		packed := NewAgg([]expr.Expr{expr.C(0)}, kind, sumE, false)
		if !packed.PackedCapable() {
			t.Fatalf("%v col-ref agg must be packed-capable", kind)
		}
		rng := rand.New(rand.NewSource(23))
		var cur wire.Cursor
		var enc []byte
		for i := 0; i < 500; i++ {
			tu := pipelineRow(rng, i)
			if _, err := boxed.Fold(tu); err != nil {
				t.Fatal(err)
			}
			enc = wire.Encode(enc[:0], tu)
			if err := cur.Reset(enc); err != nil {
				t.Fatal(err)
			}
			if err := packed.FoldRow(&cur); err != nil {
				t.Fatal(err)
			}
		}
		wantBag := map[string]int{}
		for _, r := range boxed.Rows() {
			wantBag[r.Key()]++
		}
		for _, r := range packed.Rows() {
			k := r.Key()
			if wantBag[k] == 0 {
				t.Fatalf("%v: packed row %v not in boxed rows", kind, r)
			}
			wantBag[k]--
		}
		if boxed.Groups() != packed.Groups() {
			t.Fatalf("%v: groups %d vs %d", kind, packed.Groups(), boxed.Groups())
		}
	}
}

// TestAggPackedCapableFallbacks pins the shapes that must stay boxed.
func TestAggPackedCapableFallbacks(t *testing.T) {
	arith := expr.Arith{Op: expr.Add, L: expr.C(0), R: expr.I(1)}
	if NewAgg([]expr.Expr{arith}, Count, nil, false).PackedCapable() {
		t.Fatal("arith group-by must not be packed-capable")
	}
	if NewAgg([]expr.Expr{expr.C(0)}, Sum, arith, false).PackedCapable() {
		t.Fatal("arith SUM must not be packed-capable")
	}
	if NewMapAgg([]expr.Expr{expr.C(0)}, Count, nil, false).PackedCapable() {
		t.Fatal("map layout must not be packed-capable")
	}
	if NewAgg([]expr.Expr{expr.C(0)}, Count, nil, true).PackedCapable() {
		t.Fatal("incremental agg must not be packed-capable")
	}
}
