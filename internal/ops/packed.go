// Packed execution (PR 5): the frame-at-a-time lowering of the operator
// pipeline. A Pipeline compiles into a PackedPipeline whose stages work
// directly on wire-encoded rows through a Cursor — Select filters without
// decoding (expr.CompilePred), Project re-emits by splicing encoded field
// bytes when every projection is a column ref — and stages that cannot
// lower fall back to materialize-then-Apply per row, preserving semantics
// exactly.
package ops

import (
	"fmt"

	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/types"
	"squall/internal/wire"
)

// packedStage is one lowered pipeline stage: exactly one of pred (packed
// filter), cols (packed projection splice) or op (materializing fallback)
// drives it.
type packedStage struct {
	pred expr.PackedPred
	cols []int
	op   Op
	one  OneOp // fallback fast shape (single-output)

	buf []byte      // output row buffer (splice / fallback re-encode)
	cur wire.Cursor // cursor over buf
	dec types.Tuple // fallback materialization scratch
}

// PackedPipeline is a Pipeline lowered to run over encoded rows. One
// instance belongs to one task (stage buffers are reused per row).
type PackedPipeline struct {
	stages []packedStage
	simple bool // every stage emits at most one row per input
}

// CompilePipeline lowers p. Compilation always succeeds — unlowerable
// stages run through the materializing fallback — so callers can route
// every source pipeline through the packed path unconditionally.
func CompilePipeline(p Pipeline) *PackedPipeline {
	pp := &PackedPipeline{simple: true}
	for _, op := range p {
		st := packedStage{}
		switch o := op.(type) {
		case Select:
			if pred, ok := expr.CompilePred(o.P); ok {
				st.pred = pred
			}
		case Project:
			if cols, ok := expr.ProjectionCols(o.Es); ok {
				st.cols = cols
			}
		}
		if st.pred == nil && st.cols == nil {
			st.op = op
			st.one, _ = op.(OneOp)
			if st.one == nil {
				pp.simple = false
			}
		}
		pp.stages = append(pp.stages, st)
	}
	return pp
}

// Simple reports whether every stage emits at most one row per input, so
// RunOne applies.
func (pp *PackedPipeline) Simple() bool { return pp.simple }

// Empty reports a stageless pipeline (rows pass through untouched).
func (pp *PackedPipeline) Empty() bool { return len(pp.stages) == 0 }

// RunOne pushes one row through a Simple pipeline: the result row (which
// may alias the input or an internal stage buffer, valid until the next
// call), its cursor, and whether the row survived filtering.
func (pp *PackedPipeline) RunOne(row []byte, cur *wire.Cursor) ([]byte, *wire.Cursor, bool, error) {
	for i := range pp.stages {
		st := &pp.stages[i]
		switch {
		case st.pred != nil:
			ok, err := st.pred(cur)
			if err != nil || !ok {
				return nil, nil, false, err
			}
		case st.cols != nil:
			st.buf = wire.SpliceRow(st.buf[:0], cur, st.cols)
			if err := st.cur.Reset(st.buf); err != nil {
				return nil, nil, false, err
			}
			row, cur = st.buf, &st.cur
		default:
			st.dec = cur.Tuple(st.dec)
			out, keep, err := st.one.ApplyOne(st.dec)
			if err != nil || !keep {
				return nil, nil, false, err
			}
			st.buf = wire.Encode(st.buf[:0], out)
			if err := st.cur.Reset(st.buf); err != nil {
				return nil, nil, false, err
			}
			row, cur = st.buf, &st.cur
		}
	}
	return row, cur, true, nil
}

// EachRow pushes one row through the pipeline, streaming every output row
// to emit (rows are valid only during the callback). Multi-output fallback
// stages fan out depth-first, like Pipeline.Each.
func (pp *PackedPipeline) EachRow(row []byte, cur *wire.Cursor, emit func(row []byte, cur *wire.Cursor) error) error {
	return pp.run(0, row, cur, emit)
}

func (pp *PackedPipeline) run(from int, row []byte, cur *wire.Cursor, emit func(row []byte, cur *wire.Cursor) error) error {
	for i := from; i < len(pp.stages); i++ {
		st := &pp.stages[i]
		switch {
		case st.pred != nil:
			ok, err := st.pred(cur)
			if err != nil || !ok {
				return err
			}
		case st.cols != nil:
			st.buf = wire.SpliceRow(st.buf[:0], cur, st.cols)
			if err := st.cur.Reset(st.buf); err != nil {
				return err
			}
			row, cur = st.buf, &st.cur
		case st.one != nil:
			st.dec = cur.Tuple(st.dec)
			out, keep, err := st.one.ApplyOne(st.dec)
			if err != nil || !keep {
				return err
			}
			st.buf = wire.Encode(st.buf[:0], out)
			if err := st.cur.Reset(st.buf); err != nil {
				return err
			}
			row, cur = st.buf, &st.cur
		default:
			st.dec = cur.Tuple(st.dec)
			outs, err := st.op.Apply(st.dec)
			if err != nil {
				return err
			}
			for _, o := range outs {
				// Sequential reuse of the stage buffer is safe: deeper
				// stages copy what they keep before the next output lands.
				st.buf = wire.Encode(st.buf[:0], o)
				if err := st.cur.Reset(st.buf); err != nil {
					return err
				}
				if err := pp.run(i+1, st.buf, &st.cur, emit); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return emit(row, cur)
}

// PackedSpout co-locates a pipeline with a data source like PipedSpout, but
// the returned spouts also implement dataflow.RowSpout: tuples are encoded
// once at the source and the pipeline runs packed over the encoded row, so
// the executor can route and transport the bytes without ever materializing
// a tuple again. The tuple path (Next) stays available for NoSerialize runs.
func PackedSpout(f dataflow.SpoutFactory, p Pipeline) dataflow.SpoutFactory {
	return func(task, ntasks int) dataflow.Spout {
		s := &packedSpout{pp: CompilePipeline(p)}
		s.inner = f(task, ntasks)
		s.p = p
		s.emit = func(t types.Tuple) error { s.queue = append(s.queue, t); return nil }
		s.emitRow = func(row []byte, _ *wire.Cursor) error {
			s.qoffs = append(s.qoffs, len(s.qbuf))
			s.qbuf = append(s.qbuf, row...)
			return nil
		}
		return s
	}
}

type packedSpout struct {
	pipedSpout
	pp  *PackedPipeline
	enc []byte
	cur wire.Cursor
	// multi-output queue: encoded rows packed back to back.
	qbuf    []byte
	qoffs   []int
	qhead   int
	emitRow func(row []byte, cur *wire.Cursor) error
}

// NextRow produces the next encoded post-pipeline row (dataflow.RowSpout).
// The row aliases internal buffers, valid until the next call.
func (s *packedSpout) NextRow() ([]byte, bool) {
	for {
		if s.qhead < len(s.qoffs) {
			start := s.qoffs[s.qhead]
			end := len(s.qbuf)
			if s.qhead+1 < len(s.qoffs) {
				end = s.qoffs[s.qhead+1]
			}
			s.qhead++
			return s.qbuf[start:end], true
		}
		s.qbuf, s.qoffs, s.qhead = s.qbuf[:0], s.qoffs[:0], 0
		t, ok := s.inner.Next()
		if !ok {
			return nil, false
		}
		s.enc = wire.Encode(s.enc[:0], t)
		if err := s.cur.Reset(s.enc); err != nil {
			panic(fmt.Sprintf("ops: source row encoding: %v", err))
		}
		if s.pp.Simple() {
			row, _, keep, err := s.pp.RunOne(s.enc, &s.cur)
			if err != nil {
				panic(fmt.Sprintf("ops: source pipeline: %v", err))
			}
			if keep {
				return row, true
			}
			continue
		}
		if err := s.pp.EachRow(s.enc, &s.cur, s.emitRow); err != nil {
			panic(fmt.Sprintf("ops: source pipeline: %v", err))
		}
	}
}
