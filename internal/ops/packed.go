// Packed execution (PR 5): the frame-at-a-time lowering of the operator
// pipeline. A Pipeline compiles into a PackedPipeline whose stages work
// directly on wire-encoded rows through a Cursor — Select filters without
// decoding (expr.CompilePred), Project re-emits by splicing encoded field
// bytes when every projection is a column ref — and stages that cannot
// lower fall back to materialize-then-Apply per row, preserving semantics
// exactly.
package ops

import (
	"fmt"

	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/types"
	"squall/internal/vec"
	"squall/internal/wire"
)

// packedStage is one lowered pipeline stage: exactly one of pred (packed
// filter), cols (packed projection splice) or op (materializing fallback)
// drives it.
type packedStage struct {
	pred expr.PackedPred
	cols []int
	op   Op
	one  OneOp // fallback fast shape (single-output)

	// frame path (PR 6): the predicate lowered to selection-vector kernels,
	// and the column map in effect when this stage runs — the composition of
	// every projection upstream of it (nil = frame identity). Projections
	// themselves do no frame-level work: they only extend the map.
	vpred expr.VecPred
	inMap []int

	buf []byte      // output row buffer (splice / fallback re-encode)
	cur wire.Cursor // cursor over buf
	dec types.Tuple // fallback materialization scratch
}

// PackedPipeline is a Pipeline lowered to run over encoded rows. One
// instance belongs to one task (stage buffers are reused per row).
type PackedPipeline struct {
	stages []packedStage
	simple bool // every stage emits at most one row per input

	// frame path (PR 6)
	vecStop int   // first stage the frame path cannot cross (len(stages) if none)
	outMap  []int // column map after the last stage (nil = identity)
	fbuf    []byte
	fcur    wire.Cursor
}

// CompilePipeline lowers p. Compilation always succeeds — unlowerable
// stages run through the materializing fallback — so callers can route
// every source pipeline through the packed path unconditionally.
//
// For the frame path the compiler additionally lowers each Select to a
// VecPred and folds chains of packed projections into static column maps:
// stage i records the map in effect when it runs, so RunFrame never
// materializes intermediate projected rows. vecStop marks the first stage
// frames cannot cross vectorized (an unlowerable stage, or a projection
// whose columns cannot compose statically).
func CompilePipeline(p Pipeline) *PackedPipeline {
	pp := &PackedPipeline{simple: true, vecStop: -1}
	var cur []int // running projection composition; nil = identity
	for i, op := range p {
		st := packedStage{inMap: cur}
		vecOK := false
		switch o := op.(type) {
		case Select:
			if pred, ok := expr.CompilePred(o.P); ok {
				st.pred = pred
				if vp, ok := expr.CompileVecPred(o.P); ok {
					st.vpred = vp
					vecOK = true
				}
			}
		case Project:
			if cols, ok := expr.ProjectionCols(o.Es); ok {
				st.cols = cols
				if next, ok := composeColMap(cur, cols); ok {
					cur = next
					vecOK = true
				}
			}
		}
		if st.pred == nil && st.cols == nil {
			st.op = op
			st.one, _ = op.(OneOp)
			if st.one == nil {
				pp.simple = false
			}
		}
		if !vecOK && pp.vecStop < 0 {
			pp.vecStop = i
		}
		pp.stages = append(pp.stages, st)
	}
	if pp.vecStop < 0 {
		pp.vecStop = len(pp.stages)
		pp.outMap = cur
	}
	return pp
}

// composeColMap resolves a projection's columns through the map already in
// effect: next[j] is the frame column feeding output column j. ok=false when
// a column falls outside the projected arity (the row path's splice decides
// what that means).
func composeColMap(cur, cols []int) ([]int, bool) {
	next := make([]int, len(cols))
	for j, c := range cols {
		if c < 0 {
			return nil, false
		}
		if cur == nil {
			next[j] = c
		} else {
			if c >= len(cur) {
				return nil, false
			}
			next[j] = cur[c]
		}
	}
	return next, true
}

// Simple reports whether every stage emits at most one row per input, so
// RunOne applies.
func (pp *PackedPipeline) Simple() bool { return pp.simple }

// Empty reports a stageless pipeline (rows pass through untouched).
func (pp *PackedPipeline) Empty() bool { return len(pp.stages) == 0 }

// RunOne pushes one row through a Simple pipeline: the result row (which
// may alias the input or an internal stage buffer, valid until the next
// call), its cursor, and whether the row survived filtering.
func (pp *PackedPipeline) RunOne(row []byte, cur *wire.Cursor) ([]byte, *wire.Cursor, bool, error) {
	for i := range pp.stages {
		st := &pp.stages[i]
		switch {
		case st.pred != nil:
			ok, err := st.pred(cur)
			if err != nil || !ok {
				return nil, nil, false, err
			}
		case st.cols != nil:
			st.buf = wire.SpliceRow(st.buf[:0], cur, st.cols)
			if err := st.cur.Reset(st.buf); err != nil {
				return nil, nil, false, err
			}
			row, cur = st.buf, &st.cur
		default:
			st.dec = cur.Tuple(st.dec)
			out, keep, err := st.one.ApplyOne(st.dec)
			if err != nil || !keep {
				return nil, nil, false, err
			}
			st.buf = wire.Encode(st.buf[:0], out)
			if err := st.cur.Reset(st.buf); err != nil {
				return nil, nil, false, err
			}
			row, cur = st.buf, &st.cur
		}
	}
	return row, cur, true, nil
}

// EachRow pushes one row through the pipeline, streaming every output row
// to emit (rows are valid only during the callback). Multi-output fallback
// stages fan out depth-first, like Pipeline.Each.
func (pp *PackedPipeline) EachRow(row []byte, cur *wire.Cursor, emit func(row []byte, cur *wire.Cursor) error) error {
	return pp.run(0, row, cur, emit)
}

func (pp *PackedPipeline) run(from int, row []byte, cur *wire.Cursor, emit func(row []byte, cur *wire.Cursor) error) error {
	for i := from; i < len(pp.stages); i++ {
		st := &pp.stages[i]
		switch {
		case st.pred != nil:
			ok, err := st.pred(cur)
			if err != nil || !ok {
				return err
			}
		case st.cols != nil:
			st.buf = wire.SpliceRow(st.buf[:0], cur, st.cols)
			if err := st.cur.Reset(st.buf); err != nil {
				return err
			}
			row, cur = st.buf, &st.cur
		case st.one != nil:
			st.dec = cur.Tuple(st.dec)
			out, keep, err := st.one.ApplyOne(st.dec)
			if err != nil || !keep {
				return err
			}
			st.buf = wire.Encode(st.buf[:0], out)
			if err := st.cur.Reset(st.buf); err != nil {
				return err
			}
			row, cur = st.buf, &st.cur
		default:
			st.dec = cur.Tuple(st.dec)
			outs, err := st.op.Apply(st.dec)
			if err != nil {
				return err
			}
			for _, o := range outs {
				// Sequential reuse of the stage buffer is safe: deeper
				// stages copy what they keep before the next output lands.
				st.buf = wire.Encode(st.buf[:0], o)
				if err := st.cur.Reset(st.buf); err != nil {
					return err
				}
				if err := pp.run(i+1, st.buf, &st.cur, emit); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return emit(row, cur)
}

// RunFrame pushes a whole footered frame through the pipeline at once
// (vectorized execution, PR 6): lowered predicates narrow a selection
// vector over the frame's columns, projections ride along as column maps,
// and only the surviving rows are materialized — spliced through the
// composed map and handed to emit (or, past vecStop, pushed through the
// row path's remaining stages). view must hold the frame (FrameView.Reset
// returned true).
//
// handled=false means this frame could not be vectorized at all (a kernel
// hit a column the footer summarized as mixed, or the footer lied about an
// offset) and no row was emitted: the caller re-walks the frame row by row,
// with identical semantics. Once any row has been emitted RunFrame never
// reports false — a malformed footer discovered mid-emit surfaces as an
// error instead, so callers never double-process rows.
func (pp *PackedPipeline) RunFrame(view *vec.FrameView, emit func(row []byte, cur *wire.Cursor) error) (handled bool, err error) {
	sel := view.All()
	stop := pp.vecStop
	for i := 0; i < stop; i++ {
		st := &pp.stages[i]
		if st.vpred == nil {
			continue // projection: absorbed into the column maps
		}
		out, ok, err := st.vpred(view, st.inMap, sel)
		if err != nil {
			return true, err
		}
		if !ok {
			// Per-frame fallback: this frame's columns defeated the kernels
			// (mixed kinds). Spill the survivors so far through the row path
			// from this stage on.
			stop = i
			break
		}
		sel = out
		if len(sel) == 0 {
			return true, nil
		}
	}
	m := pp.outMap
	if stop < len(pp.stages) {
		m = pp.stages[stop].inMap
	}
	emitted := false
	for _, r := range sel {
		row := pp.fbuf
		var ok bool
		if m == nil {
			row, ok = view.RowBytes(r)
		} else {
			row, ok = view.AppendRow(pp.fbuf[:0], m, r)
			pp.fbuf = row
		}
		if !ok {
			if emitted {
				return true, fmt.Errorf("ops: frame footer inconsistent at row %d", r)
			}
			return false, nil
		}
		if err := pp.fcur.Reset(row); err != nil {
			if emitted {
				return true, fmt.Errorf("ops: frame footer inconsistent at row %d: %v", r, err)
			}
			return false, nil
		}
		emitted = true
		if err := pp.run(stop, row, &pp.fcur, emit); err != nil {
			return true, err
		}
	}
	return true, nil
}

// PackedSpout co-locates a pipeline with a data source like PipedSpout, but
// the returned spouts also implement dataflow.RowSpout: tuples are encoded
// once at the source and the pipeline runs packed over the encoded row, so
// the executor can route and transport the bytes without ever materializing
// a tuple again. The tuple path (Next) stays available for NoSerialize runs.
func PackedSpout(f dataflow.SpoutFactory, p Pipeline) dataflow.SpoutFactory {
	return func(task, ntasks int) dataflow.Spout {
		s := &packedSpout{pp: CompilePipeline(p)}
		s.inner = f(task, ntasks)
		s.p = p
		s.emit = func(t types.Tuple) error { s.queue = append(s.queue, t); return nil }
		s.emitRow = func(row []byte, _ *wire.Cursor) error {
			s.qoffs = append(s.qoffs, len(s.qbuf))
			s.qbuf = append(s.qbuf, row...)
			return nil
		}
		return s
	}
}

type packedSpout struct {
	pipedSpout
	pp  *PackedPipeline
	enc []byte
	cur wire.Cursor
	// multi-output queue: encoded rows packed back to back.
	qbuf    []byte
	qoffs   []int
	qhead   int
	emitRow func(row []byte, cur *wire.Cursor) error
}

// NextRow produces the next encoded post-pipeline row (dataflow.RowSpout).
// The row aliases internal buffers, valid until the next call.
func (s *packedSpout) NextRow() ([]byte, bool) {
	for {
		if s.qhead < len(s.qoffs) {
			start := s.qoffs[s.qhead]
			end := len(s.qbuf)
			if s.qhead+1 < len(s.qoffs) {
				end = s.qoffs[s.qhead+1]
			}
			s.qhead++
			return s.qbuf[start:end], true
		}
		s.qbuf, s.qoffs, s.qhead = s.qbuf[:0], s.qoffs[:0], 0
		t, ok := s.inner.Next()
		if !ok {
			return nil, false
		}
		s.enc = wire.Encode(s.enc[:0], t)
		if err := s.cur.Reset(s.enc); err != nil {
			panic(fmt.Sprintf("ops: source row encoding: %v", err))
		}
		if s.pp.Simple() {
			row, _, keep, err := s.pp.RunOne(s.enc, &s.cur)
			if err != nil {
				panic(fmt.Sprintf("ops: source pipeline: %v", err))
			}
			if keep {
				return row, true
			}
			continue
		}
		if err := s.pp.EachRow(s.enc, &s.cur, s.emitRow); err != nil {
			panic(fmt.Sprintf("ops: source pipeline: %v", err))
		}
	}
}
