// Package ops provides Squall's physical operators (§2): selections,
// projections and aggregations, plus the bolts that assemble them into
// dataflow components. A component is a pipeline of co-located operators —
// e.g. a data source followed by a selection, or a join followed by a
// partial aggregation — executed inside one bolt to avoid network hops,
// exactly like the paper's operator co-location.
package ops

import (
	"bytes"
	"fmt"

	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/index"
	"squall/internal/slab"
	"squall/internal/types"
	"squall/internal/vec"
	"squall/internal/wire"
)

// Op is one tuple-at-a-time operator stage: zero or more output tuples per
// input tuple.
type Op interface {
	Apply(t types.Tuple) ([]types.Tuple, error)
}

// OneOp is optionally implemented by operators that emit at most one tuple
// per input (selections, projections, parsers). Pipeline.Each uses it to run
// chains of such operators without allocating per-tuple result slices —
// the Apply signature costs several slice headers per tuple, which dominated
// source-pipeline profiles.
type OneOp interface {
	ApplyOne(t types.Tuple) (types.Tuple, bool, error)
}

// Select filters by a predicate.
type Select struct{ P expr.Pred }

// Apply keeps t when the predicate holds.
func (s Select) Apply(t types.Tuple) ([]types.Tuple, error) {
	out, keep, err := s.ApplyOne(t)
	if err != nil || !keep {
		return nil, err
	}
	return []types.Tuple{out}, nil
}

// ApplyOne keeps t when the predicate holds, without allocating.
func (s Select) ApplyOne(t types.Tuple) (types.Tuple, bool, error) {
	ok, err := s.P.Eval(t)
	if err != nil {
		return nil, false, err
	}
	return t, ok, nil
}

// Project maps each tuple through a list of expressions — the paper's output
// schemes: a component sends only the fields/expressions needed downstream.
type Project struct{ Es []expr.Expr }

// Apply evaluates every projection expression.
func (p Project) Apply(t types.Tuple) ([]types.Tuple, error) {
	out, _, err := p.ApplyOne(t)
	if err != nil {
		return nil, err
	}
	return []types.Tuple{out}, nil
}

// ApplyOne evaluates every projection expression into one output tuple.
func (p Project) ApplyOne(t types.Tuple) (types.Tuple, bool, error) {
	out := make(types.Tuple, len(p.Es))
	for i, e := range p.Es {
		v, err := e.Eval(t)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// Pipeline chains operators; the output of each stage feeds the next.
type Pipeline []Op

// Apply runs the pipeline on one input tuple.
func (p Pipeline) Apply(t types.Tuple) ([]types.Tuple, error) {
	in := []types.Tuple{t}
	for _, op := range p {
		var out []types.Tuple
		for _, tu := range in {
			o, err := op.Apply(tu)
			if err != nil {
				return nil, err
			}
			out = append(out, o...)
		}
		if len(out) == 0 {
			return nil, nil
		}
		in = out
	}
	return in, nil
}

// Each runs the pipeline on one input tuple, streaming outputs to emit.
// Stages implementing OneOp are chained without any intermediate slices; a
// multi-output stage falls back to Apply for its fanout. Reuse one emit
// closure across calls — this is the hot path of every source pipeline.
func (p Pipeline) Each(t types.Tuple, emit func(types.Tuple) error) error {
	for i, op := range p {
		one, ok := op.(OneOp)
		if !ok {
			outs, err := op.Apply(t)
			if err != nil {
				return err
			}
			rest := p[i+1:]
			for _, o := range outs {
				if err := rest.Each(o, emit); err != nil {
					return err
				}
			}
			return nil
		}
		out, keep, err := one.ApplyOne(t)
		if err != nil || !keep {
			return err
		}
		t = out
	}
	return emit(t)
}

// PipedSpout co-locates a pipeline with a data source (source + selection
// in one component, saving a network hop, as Squall's optimizer does). With
// an empty pipeline the factory is returned unchanged. A broken pipeline
// surfaces at the first tuple by panicking, matching the Spout contract
// (no error channel).
func PipedSpout(f dataflow.SpoutFactory, p Pipeline) dataflow.SpoutFactory {
	if len(p) == 0 {
		return f
	}
	return func(task, ntasks int) dataflow.Spout {
		s := &pipedSpout{inner: f(task, ntasks), p: p}
		s.emit = func(t types.Tuple) error { s.queue = append(s.queue, t); return nil }
		return s
	}
}

type pipedSpout struct {
	inner dataflow.Spout
	p     Pipeline
	queue []types.Tuple
	head  int
	emit  func(types.Tuple) error
}

func (s *pipedSpout) Next() (types.Tuple, bool) {
	for {
		if s.head < len(s.queue) {
			t := s.queue[s.head]
			s.head++
			return t, true
		}
		s.queue, s.head = s.queue[:0], 0
		t, ok := s.inner.Next()
		if !ok {
			return nil, false
		}
		if err := s.p.Each(t, s.emit); err != nil {
			panic(fmt.Sprintf("ops: source pipeline: %v", err))
		}
	}
}

// MapBolt runs a pipeline inside a component and emits the results.
func MapBolt(p Pipeline) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		return dataflow.FuncBolt{OnTuple: func(in dataflow.Input, out *dataflow.Collector) error {
			res, err := p.Apply(in.Tuple)
			if err != nil {
				return err
			}
			for _, t := range res {
				if err := out.Emit(t); err != nil {
					return err
				}
			}
			return nil
		}}
	}
}

// AggKind enumerates the supported aggregates (§2: sum, count, average).
type AggKind uint8

// Supported aggregate functions.
const (
	Count AggKind = iota
	Sum
	Avg
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// groupState is one group's accumulator (map layout).
type groupState struct {
	group types.Tuple
	cnt   int64
	sum   float64
}

// groupAcc is one group's accumulator in the compact layout: the group key
// lives as a wire-encoded row in the shared arena, addressed by ref.
type groupAcc struct {
	ref slab.Ref
	cnt int64
	sum float64
}

// Agg is a hash group-by aggregation over a single input stream. In
// full-history mode every input updates the group's accumulator and the
// final values are emitted on Finish; with Incremental set, the refreshed
// aggregate row is emitted on every update (online view maintenance).
//
// The group table defaults to the compact slab layout (PR 3): group keys are
// wire-encoded rows in a slab.Arena, probed through an open-addressing
// index.RefHash on the hash of the encoded bytes and verified by byte
// equality — exact (two groups are one iff their encodings match, the same
// identity the old string keys had) with zero allocations per update. The
// pre-slab map layout survives behind NewMapAgg as the opt-out baseline.
type Agg struct {
	GroupBy     []expr.Expr
	Kind        AggKind
	SumE        expr.Expr // required for Sum/Avg
	Incremental bool

	// compact layout
	arena  *slab.Arena
	idx    *index.RefHash
	states []groupAcc

	// map layout
	groups map[string]*groupState
	mem    int

	// per-update scratch (one bolt task, single-threaded)
	sKey types.Tuple
	sBuf []byte
	sRow types.Tuple

	// packed lowering (PR 5): group-by column indexes and the SUM column
	// when every expression is a plain column ref; see PackedCapable.
	groupCols []int
	sumCol    int

	// frame-fold scratch (PR 6): spliced group keys packed back to back,
	// their end offsets, and the resolved accumulator slot per selected row.
	keyBuf  []byte
	keyEnds []int32
	slots   []int32
}

// NewAgg copies the configuration into a fresh accumulator with the compact
// group table.
func NewAgg(groupBy []expr.Expr, kind AggKind, sumE expr.Expr, incremental bool) *Agg {
	return &Agg{GroupBy: groupBy, Kind: kind, SumE: sumE, Incremental: incremental,
		arena: slab.New(), idx: index.NewRefHash()}
}

// NewMapAgg builds the accumulator with the pre-slab map group table — the
// opt-out baseline (squall.Options.LegacyState).
func NewMapAgg(groupBy []expr.Expr, kind AggKind, sumE expr.Expr, incremental bool) *Agg {
	return &Agg{GroupBy: groupBy, Kind: kind, SumE: sumE, Incremental: incremental,
		groups: map[string]*groupState{}}
}

// Update folds one tuple with an explicit (cnt, sum) weight — the join bolts
// feed pre-aggregated deltas this way. It returns the refreshed output row
// when Incremental is set. The group key is evaluated into reusable scratch
// and only owned (cloned / appended to the arena) on a group's first
// appearance, so steady-state updates allocate nothing.
func (a *Agg) Update(t types.Tuple, cnt int64, sum float64) (types.Tuple, error) {
	if cap(a.sKey) < len(a.GroupBy) {
		a.sKey = make(types.Tuple, len(a.GroupBy))
	}
	g := a.sKey[:len(a.GroupBy)]
	for i, e := range a.GroupBy {
		v, err := e.Eval(t)
		if err != nil {
			return nil, err
		}
		g[i] = v
	}
	if a.groups != nil { // map layout
		a.sBuf = g.AppendKey(a.sBuf[:0])
		st, ok := a.groups[string(a.sBuf)] // alloc-free probe
		if !ok {
			st = &groupState{group: g.Clone()}
			k := string(a.sBuf) // owned copy, the map retains it
			a.groups[k] = st
			a.mem += st.group.MemSize() + len(k) + 32
		}
		st.cnt += cnt
		st.sum += sum
		if !a.Incremental {
			return nil, nil
		}
		return a.rowOf(st.group, st.cnt, st.sum), nil
	}
	a.sBuf = wire.Encode(a.sBuf[:0], g)
	st := a.bumpEncoded(cnt, sum)
	if !a.Incremental {
		return nil, nil
	}
	a.sRow = a.arena.DecodeInto(a.sRow, st.ref)
	return a.rowOf(a.sRow, st.cnt, st.sum), nil
}

// bumpEncoded folds (cnt, sum) into the group whose wire-encoded key sits
// in a.sBuf: hash the encoded bytes, probe the open-addressing index with
// byte-equality verification, blit a new group row on first appearance.
// Shared by the boxed path (which encodes the evaluated key) and the packed
// path (which splices the key fields straight off the incoming row — the
// encodings are byte-identical, so the two paths share one table).
func (a *Agg) bumpEncoded(cnt int64, sum float64) *groupAcc {
	st := &a.states[a.slotFor(a.sBuf)]
	st.cnt += cnt
	st.sum += sum
	return st
}

// slotFor returns the accumulator slot of the group whose wire-encoded key
// is key, inserting a zeroed accumulator on first appearance. The frame fold
// (FoldFrame) uses it directly to resolve all of a frame's keys in one pass
// before bumping accumulators in a second.
func (a *Agg) slotFor(key []byte) int {
	h := index.BytesHash(key)
	slot := -1
	a.idx.Each(h, func(ref uint32) bool {
		if bytes.Equal(a.arena.RowBytes(a.states[ref].ref), key) {
			slot = int(ref)
			return false
		}
		return true
	})
	if slot < 0 {
		slot = len(a.states)
		a.states = append(a.states, groupAcc{ref: a.arena.AppendEncoded(key)})
		a.idx.Insert(h, uint32(slot))
	}
	return slot
}

// PackedCapable reports whether the row-based folds (FoldRow / UpdateRow)
// apply: the compact group table, non-incremental accumulation (packed
// callers emit nothing per update) and column-ref group-by / SUM
// expressions, so the group key splices straight off the encoded row.
func (a *Agg) PackedCapable() bool {
	if a.groups != nil || a.Incremental {
		return false
	}
	cols, ok := expr.ProjectionCols(a.GroupBy)
	if !ok {
		return false
	}
	a.sumCol = -1
	if a.SumE != nil {
		sc, ok := expr.ColIndex(a.SumE)
		if !ok {
			return false
		}
		a.sumCol = sc
	}
	a.groupCols = cols
	return true
}

// checkRowCols bound-checks the lowered columns against one row's arity,
// mirroring expr.Col.Eval's range errors on the boxed path.
func (a *Agg) checkRowCols(cur *wire.Cursor) error {
	for _, c := range a.groupCols {
		if c < 0 || c >= cur.Arity() {
			return fmt.Errorf("expr: column %d out of range for arity %d", c, cur.Arity())
		}
	}
	if a.sumCol >= cur.Arity() {
		return fmt.Errorf("expr: column %d out of range for arity %d", a.sumCol, cur.Arity())
	}
	return nil
}

// UpdateRow is the packed Update: the group key is spliced from the
// encoded row's fields (no Eval, no re-encode) and the accumulator is
// bumped in place. Callers must have checked PackedCapable.
func (a *Agg) UpdateRow(cur *wire.Cursor, cnt int64, sum float64) error {
	if err := a.checkRowCols(cur); err != nil {
		return err
	}
	a.sBuf = wire.SpliceRow(a.sBuf[:0], cur, a.groupCols)
	a.bumpEncoded(cnt, sum)
	return nil
}

// FoldRow is the packed Fold: cnt 1, sum read off the SUM column under
// AsFloat coercion (matching the boxed error on non-numeric non-null).
func (a *Agg) FoldRow(cur *wire.Cursor) error {
	sum := 0.0
	if a.sumCol >= 0 {
		if err := a.checkRowCols(cur); err != nil {
			return err
		}
		f, ok := cur.FieldFloat(a.sumCol)
		if !ok && cur.Kind(a.sumCol) != types.KindNull {
			return fmt.Errorf("ops: SUM argument %v is not numeric", cur.Value(a.sumCol))
		}
		sum = f
	} else if a.Kind != Count {
		return fmt.Errorf("ops: %s needs a sum expression", a.Kind)
	}
	return a.UpdateRow(cur, 1, sum)
}

// Fold feeds one raw tuple (cnt 1, sum = SumE(t) when configured).
func (a *Agg) Fold(t types.Tuple) (types.Tuple, error) {
	sum := 0.0
	if a.SumE != nil {
		v, err := a.SumE.Eval(t)
		if err != nil {
			return nil, err
		}
		f, ok := v.AsFloat()
		if !ok && !v.IsNull() {
			return nil, fmt.Errorf("ops: SUM argument %v is not numeric", v)
		}
		sum = f
	} else if a.Kind != Count {
		return nil, fmt.Errorf("ops: %s needs a sum expression", a.Kind)
	}
	return a.Update(t, 1, sum)
}

// rowOf renders one group's output row: the group values followed by the
// aggregate. group is copied (it may be scratch).
func (a *Agg) rowOf(group types.Tuple, cnt int64, sum float64) types.Tuple {
	out := make(types.Tuple, 0, len(group)+1)
	out = append(out, group...)
	switch a.Kind {
	case Count:
		out = append(out, types.Int(cnt))
	case Sum:
		out = append(out, types.Float(sum))
	case Avg:
		if cnt == 0 {
			out = append(out, types.Null())
		} else {
			out = append(out, types.Float(sum/float64(cnt)))
		}
	}
	return out
}

// Rows returns the current aggregate rows.
func (a *Agg) Rows() []types.Tuple {
	if a.groups != nil {
		out := make([]types.Tuple, 0, len(a.groups))
		for _, st := range a.groups {
			out = append(out, a.rowOf(st.group, st.cnt, st.sum))
		}
		return out
	}
	out := make([]types.Tuple, 0, len(a.states))
	for i := range a.states {
		st := &a.states[i]
		out = append(out, a.rowOf(a.arena.Decode(st.ref), st.cnt, st.sum))
	}
	return out
}

// Groups returns the number of distinct groups.
func (a *Agg) Groups() int {
	if a.groups != nil {
		return len(a.groups)
	}
	return len(a.states)
}

// MemSize approximates accumulator state; real bytes in the compact layout.
func (a *Agg) MemSize() int {
	if a.groups != nil {
		return a.mem + 48
	}
	return a.arena.MemSize() + a.idx.MemSize() + 24*cap(a.states) + 48
}

// aggBolt adapts Agg to the dataflow engine.
type aggBolt struct{ a *Agg }

func (b aggBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	row, err := b.a.Fold(in.Tuple)
	if err != nil {
		return err
	}
	if row != nil {
		return out.Emit(row)
	}
	return nil
}

func (b aggBolt) Finish(out *dataflow.Collector) error {
	if b.a.Incremental {
		return nil
	}
	for _, row := range b.a.Rows() {
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b aggBolt) MemSize() int { return b.a.MemSize() }

// newAgg picks the group-table layout: compact slab (default) or the map
// opt-out (squall.Options.LegacyState).
func newAgg(groupBy []expr.Expr, kind AggKind, sumE expr.Expr, incremental, legacy bool) *Agg {
	if legacy {
		return NewMapAgg(groupBy, kind, sumE, incremental)
	}
	return NewAgg(groupBy, kind, sumE, incremental)
}

// AggBolt builds a per-task aggregation component. Upstream edges must group
// by the group-by columns (Fields or KeyMapped) so each group lands on one
// task. legacy selects the pre-slab map group table; packed additionally
// makes the bolt frame-capable (dataflow.RowBolt) when the accumulator's
// expressions lower, so incoming packed frames fold without decoding.
func AggBolt(groupBy []expr.Expr, kind AggKind, sumE expr.Expr, incremental, legacy, packed bool) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		a := newAgg(groupBy, kind, sumE, incremental, legacy)
		if packed && a.PackedCapable() {
			return packedAggBolt{aggBolt{a}, &vec.FrameView{}, &wire.Cursor{}}
		}
		return aggBolt{a}
	}
}

// packedAggBolt adds the frame path to aggBolt: one cursor read per row,
// group keys spliced from the encoded fields, zero materialization. It is
// also a dataflow.FrameBolt: footered frames fold group-wise through
// Agg.FoldFrame (see vec.go), bare ones through the per-row walk.
type packedAggBolt struct {
	aggBolt
	view *vec.FrameView
	fcur *wire.Cursor
}

func (b packedAggBolt) ExecuteRow(in dataflow.RowInput, _ *dataflow.Collector) error {
	return b.a.FoldRow(in.Cur)
}

// MergeBolt merges pre-aggregated partial rows of shape (group..., cnt, sum)
// emitted by AggJoinBolt tasks into final aggregate rows. ngroup is the
// number of leading group columns; legacy selects the pre-slab map group
// table; packed makes the bolt frame-capable.
func MergeBolt(ngroup int, kind AggKind, incremental, legacy, packed bool) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		groupBy := make([]expr.Expr, ngroup)
		for i := range groupBy {
			groupBy[i] = expr.C(i)
		}
		mb := &mergeBolt{a: newAgg(groupBy, kind, nil, incremental, legacy), ngroup: ngroup}
		if packed && mb.a.PackedCapable() {
			return packedMergeBolt{mb, &vec.FrameView{}, &wire.Cursor{}}
		}
		return mb
	}
}

// packedMergeBolt adds the frame path to mergeBolt: cnt and sum are read
// off the encoded row under the same coercions the boxed path applies. Like
// packedAggBolt it is frame-capable: uniform (cnt, sum) columns gather into
// slices and fold group-wise (see vec.go).
type packedMergeBolt struct {
	*mergeBolt
	view *vec.FrameView
	fcur *wire.Cursor
}

func (b packedMergeBolt) ExecuteRow(in dataflow.RowInput, _ *dataflow.Collector) error {
	return b.mergeRow(in.Cur)
}

func (b packedMergeBolt) mergeRow(cur *wire.Cursor) error {
	if cur.Arity() != b.ngroup+2 {
		return fmt.Errorf("ops: merge row arity %d, want %d group cols + cnt + sum", cur.Arity(), b.ngroup)
	}
	cnt, ok := cur.FieldInt(b.ngroup)
	if !ok {
		return fmt.Errorf("ops: merge row cnt %v not integer", cur.Value(b.ngroup))
	}
	sum, _ := cur.FieldFloat(b.ngroup + 1)
	return b.a.UpdateRow(cur, cnt, sum)
}

type mergeBolt struct {
	a      *Agg
	ngroup int
}

func (b *mergeBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	t := in.Tuple
	if len(t) != b.ngroup+2 {
		return fmt.Errorf("ops: merge row arity %d, want %d group cols + cnt + sum", len(t), b.ngroup)
	}
	cnt, ok := t[b.ngroup].AsInt()
	if !ok {
		return fmt.Errorf("ops: merge row cnt %v not integer", t[b.ngroup])
	}
	sum, _ := t[b.ngroup+1].AsFloat()
	row, err := b.a.Update(t, cnt, sum)
	if err != nil {
		return err
	}
	if row != nil {
		return out.Emit(row)
	}
	return nil
}

func (b *mergeBolt) Finish(out *dataflow.Collector) error {
	if b.a.Incremental {
		return nil
	}
	for _, row := range b.a.Rows() {
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b *mergeBolt) MemSize() int { return b.a.MemSize() }
