// Package ops provides Squall's physical operators (§2): selections,
// projections and aggregations, plus the bolts that assemble them into
// dataflow components. A component is a pipeline of co-located operators —
// e.g. a data source followed by a selection, or a join followed by a
// partial aggregation — executed inside one bolt to avoid network hops,
// exactly like the paper's operator co-location.
package ops

import (
	"fmt"

	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/types"
)

// Op is one tuple-at-a-time operator stage: zero or more output tuples per
// input tuple.
type Op interface {
	Apply(t types.Tuple) ([]types.Tuple, error)
}

// OneOp is optionally implemented by operators that emit at most one tuple
// per input (selections, projections, parsers). Pipeline.Each uses it to run
// chains of such operators without allocating per-tuple result slices —
// the Apply signature costs several slice headers per tuple, which dominated
// source-pipeline profiles.
type OneOp interface {
	ApplyOne(t types.Tuple) (types.Tuple, bool, error)
}

// Select filters by a predicate.
type Select struct{ P expr.Pred }

// Apply keeps t when the predicate holds.
func (s Select) Apply(t types.Tuple) ([]types.Tuple, error) {
	out, keep, err := s.ApplyOne(t)
	if err != nil || !keep {
		return nil, err
	}
	return []types.Tuple{out}, nil
}

// ApplyOne keeps t when the predicate holds, without allocating.
func (s Select) ApplyOne(t types.Tuple) (types.Tuple, bool, error) {
	ok, err := s.P.Eval(t)
	if err != nil {
		return nil, false, err
	}
	return t, ok, nil
}

// Project maps each tuple through a list of expressions — the paper's output
// schemes: a component sends only the fields/expressions needed downstream.
type Project struct{ Es []expr.Expr }

// Apply evaluates every projection expression.
func (p Project) Apply(t types.Tuple) ([]types.Tuple, error) {
	out, _, err := p.ApplyOne(t)
	if err != nil {
		return nil, err
	}
	return []types.Tuple{out}, nil
}

// ApplyOne evaluates every projection expression into one output tuple.
func (p Project) ApplyOne(t types.Tuple) (types.Tuple, bool, error) {
	out := make(types.Tuple, len(p.Es))
	for i, e := range p.Es {
		v, err := e.Eval(t)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// Pipeline chains operators; the output of each stage feeds the next.
type Pipeline []Op

// Apply runs the pipeline on one input tuple.
func (p Pipeline) Apply(t types.Tuple) ([]types.Tuple, error) {
	in := []types.Tuple{t}
	for _, op := range p {
		var out []types.Tuple
		for _, tu := range in {
			o, err := op.Apply(tu)
			if err != nil {
				return nil, err
			}
			out = append(out, o...)
		}
		if len(out) == 0 {
			return nil, nil
		}
		in = out
	}
	return in, nil
}

// Each runs the pipeline on one input tuple, streaming outputs to emit.
// Stages implementing OneOp are chained without any intermediate slices; a
// multi-output stage falls back to Apply for its fanout. Reuse one emit
// closure across calls — this is the hot path of every source pipeline.
func (p Pipeline) Each(t types.Tuple, emit func(types.Tuple) error) error {
	for i, op := range p {
		one, ok := op.(OneOp)
		if !ok {
			outs, err := op.Apply(t)
			if err != nil {
				return err
			}
			rest := p[i+1:]
			for _, o := range outs {
				if err := rest.Each(o, emit); err != nil {
					return err
				}
			}
			return nil
		}
		out, keep, err := one.ApplyOne(t)
		if err != nil || !keep {
			return err
		}
		t = out
	}
	return emit(t)
}

// PipedSpout co-locates a pipeline with a data source (source + selection
// in one component, saving a network hop, as Squall's optimizer does). With
// an empty pipeline the factory is returned unchanged. A broken pipeline
// surfaces at the first tuple by panicking, matching the Spout contract
// (no error channel).
func PipedSpout(f dataflow.SpoutFactory, p Pipeline) dataflow.SpoutFactory {
	if len(p) == 0 {
		return f
	}
	return func(task, ntasks int) dataflow.Spout {
		s := &pipedSpout{inner: f(task, ntasks), p: p}
		s.emit = func(t types.Tuple) error { s.queue = append(s.queue, t); return nil }
		return s
	}
}

type pipedSpout struct {
	inner dataflow.Spout
	p     Pipeline
	queue []types.Tuple
	head  int
	emit  func(types.Tuple) error
}

func (s *pipedSpout) Next() (types.Tuple, bool) {
	for {
		if s.head < len(s.queue) {
			t := s.queue[s.head]
			s.head++
			return t, true
		}
		s.queue, s.head = s.queue[:0], 0
		t, ok := s.inner.Next()
		if !ok {
			return nil, false
		}
		if err := s.p.Each(t, s.emit); err != nil {
			panic(fmt.Sprintf("ops: source pipeline: %v", err))
		}
	}
}

// MapBolt runs a pipeline inside a component and emits the results.
func MapBolt(p Pipeline) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		return dataflow.FuncBolt{OnTuple: func(in dataflow.Input, out *dataflow.Collector) error {
			res, err := p.Apply(in.Tuple)
			if err != nil {
				return err
			}
			for _, t := range res {
				if err := out.Emit(t); err != nil {
					return err
				}
			}
			return nil
		}}
	}
}

// AggKind enumerates the supported aggregates (§2: sum, count, average).
type AggKind uint8

// Supported aggregate functions.
const (
	Count AggKind = iota
	Sum
	Avg
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// groupState is one group's accumulator.
type groupState struct {
	group types.Tuple
	cnt   int64
	sum   float64
}

// Agg is a hash group-by aggregation over a single input stream. In
// full-history mode every input updates the group's accumulator and the
// final values are emitted on Finish; with Incremental set, the refreshed
// aggregate row is emitted on every update (online view maintenance).
type Agg struct {
	GroupBy     []expr.Expr
	Kind        AggKind
	SumE        expr.Expr // required for Sum/Avg
	Incremental bool

	groups map[string]*groupState
	mem    int
}

// NewAgg copies the configuration into a fresh accumulator.
func NewAgg(groupBy []expr.Expr, kind AggKind, sumE expr.Expr, incremental bool) *Agg {
	return &Agg{GroupBy: groupBy, Kind: kind, SumE: sumE, Incremental: incremental,
		groups: map[string]*groupState{}}
}

// Update folds one tuple with an explicit (cnt, sum) weight — the join bolts
// feed pre-aggregated deltas this way. It returns the refreshed output row
// when Incremental is set.
func (a *Agg) Update(t types.Tuple, cnt int64, sum float64) (types.Tuple, error) {
	g := make(types.Tuple, len(a.GroupBy))
	for i, e := range a.GroupBy {
		v, err := e.Eval(t)
		if err != nil {
			return nil, err
		}
		g[i] = v
	}
	k := g.Key()
	st, ok := a.groups[k]
	if !ok {
		st = &groupState{group: g}
		a.groups[k] = st
		a.mem += g.MemSize() + len(k) + 32
	}
	st.cnt += cnt
	st.sum += sum
	if !a.Incremental {
		return nil, nil
	}
	return a.row(st), nil
}

// Fold feeds one raw tuple (cnt 1, sum = SumE(t) when configured).
func (a *Agg) Fold(t types.Tuple) (types.Tuple, error) {
	sum := 0.0
	if a.SumE != nil {
		v, err := a.SumE.Eval(t)
		if err != nil {
			return nil, err
		}
		f, ok := v.AsFloat()
		if !ok && !v.IsNull() {
			return nil, fmt.Errorf("ops: SUM argument %v is not numeric", v)
		}
		sum = f
	} else if a.Kind != Count {
		return nil, fmt.Errorf("ops: %s needs a sum expression", a.Kind)
	}
	return a.Update(t, 1, sum)
}

func (a *Agg) row(st *groupState) types.Tuple {
	out := st.group.Clone()
	switch a.Kind {
	case Count:
		out = append(out, types.Int(st.cnt))
	case Sum:
		out = append(out, types.Float(st.sum))
	case Avg:
		if st.cnt == 0 {
			out = append(out, types.Null())
		} else {
			out = append(out, types.Float(st.sum/float64(st.cnt)))
		}
	}
	return out
}

// Rows returns the current aggregate rows.
func (a *Agg) Rows() []types.Tuple {
	out := make([]types.Tuple, 0, len(a.groups))
	for _, st := range a.groups {
		out = append(out, a.row(st))
	}
	return out
}

// MemSize approximates accumulator state.
func (a *Agg) MemSize() int { return a.mem + 48 }

// aggBolt adapts Agg to the dataflow engine.
type aggBolt struct{ a *Agg }

func (b aggBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	row, err := b.a.Fold(in.Tuple)
	if err != nil {
		return err
	}
	if row != nil {
		return out.Emit(row)
	}
	return nil
}

func (b aggBolt) Finish(out *dataflow.Collector) error {
	if b.a.Incremental {
		return nil
	}
	for _, row := range b.a.Rows() {
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b aggBolt) MemSize() int { return b.a.MemSize() }

// AggBolt builds a per-task aggregation component. Upstream edges must group
// by the group-by columns (Fields or KeyMapped) so each group lands on one
// task.
func AggBolt(groupBy []expr.Expr, kind AggKind, sumE expr.Expr, incremental bool) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		return aggBolt{NewAgg(groupBy, kind, sumE, incremental)}
	}
}

// MergeBolt merges pre-aggregated partial rows of shape (group..., cnt, sum)
// emitted by AggJoinBolt tasks into final aggregate rows. ngroup is the
// number of leading group columns.
func MergeBolt(ngroup int, kind AggKind, incremental bool) dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt {
		groupBy := make([]expr.Expr, ngroup)
		for i := range groupBy {
			groupBy[i] = expr.C(i)
		}
		return &mergeBolt{a: NewAgg(groupBy, kind, nil, incremental), ngroup: ngroup}
	}
}

type mergeBolt struct {
	a      *Agg
	ngroup int
}

func (b *mergeBolt) Execute(in dataflow.Input, out *dataflow.Collector) error {
	t := in.Tuple
	if len(t) != b.ngroup+2 {
		return fmt.Errorf("ops: merge row arity %d, want %d group cols + cnt + sum", len(t), b.ngroup)
	}
	cnt, ok := t[b.ngroup].AsInt()
	if !ok {
		return fmt.Errorf("ops: merge row cnt %v not integer", t[b.ngroup])
	}
	sum, _ := t[b.ngroup+1].AsFloat()
	row, err := b.a.Update(t, cnt, sum)
	if err != nil {
		return err
	}
	if row != nil {
		return out.Emit(row)
	}
	return nil
}

func (b *mergeBolt) Finish(out *dataflow.Collector) error {
	if b.a.Incremental {
		return nil
	}
	for _, row := range b.a.Rows() {
		if err := out.Emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (b *mergeBolt) MemSize() int { return b.a.MemSize() }
