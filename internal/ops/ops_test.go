package ops

import (
	"math"
	"sort"
	"testing"

	"squall/internal/dataflow"
	"squall/internal/dbtoaster"
	"squall/internal/expr"
	"squall/internal/types"
)

func TestSelectAndProject(t *testing.T) {
	sel := Select{P: expr.Cmp{Op: expr.Gt, L: expr.C(0), R: expr.I(3)}}
	if out, err := sel.Apply(types.Tuple{types.Int(5)}); err != nil || len(out) != 1 {
		t.Errorf("Select(5>3) = %v, %v", out, err)
	}
	if out, err := sel.Apply(types.Tuple{types.Int(1)}); err != nil || len(out) != 0 {
		t.Errorf("Select(1>3) = %v, %v", out, err)
	}
	proj := Project{Es: []expr.Expr{expr.C(1), expr.Arith{Op: expr.Mul, L: expr.C(0), R: expr.I(2)}}}
	out, err := proj.Apply(types.Tuple{types.Int(3), types.Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	want := types.Tuple{types.Str("x"), types.Int(6)}
	if !out[0].Equal(want) {
		t.Errorf("Project = %v, want %v", out[0], want)
	}
}

func TestPipelineShortCircuits(t *testing.T) {
	p := Pipeline{
		Select{P: expr.Cmp{Op: expr.Gt, L: expr.C(0), R: expr.I(0)}},
		Project{Es: []expr.Expr{expr.C(0)}},
	}
	if out, err := p.Apply(types.Tuple{types.Int(-1)}); err != nil || out != nil {
		t.Errorf("filtered tuple = %v, %v", out, err)
	}
	if out, err := p.Apply(types.Tuple{types.Int(2)}); err != nil || len(out) != 1 {
		t.Errorf("passing tuple = %v, %v", out, err)
	}
}

func TestAggCountSumAvg(t *testing.T) {
	rows := []types.Tuple{
		{types.Str("a"), types.Int(1)},
		{types.Str("a"), types.Int(3)},
		{types.Str("b"), types.Int(10)},
	}
	for _, tc := range []struct {
		kind AggKind
		want map[string]float64
	}{
		{Count, map[string]float64{"a": 2, "b": 1}},
		{Sum, map[string]float64{"a": 4, "b": 10}},
		{Avg, map[string]float64{"a": 2, "b": 10}},
	} {
		for _, mk := range []func([]expr.Expr, AggKind, expr.Expr, bool) *Agg{NewAgg, NewMapAgg} {
			a := mk([]expr.Expr{expr.C(0)}, tc.kind, expr.C(1), false)
			for _, r := range rows {
				if _, err := a.Fold(r); err != nil {
					t.Fatal(err)
				}
			}
			got := map[string]float64{}
			for _, row := range a.Rows() {
				f, _ := row[1].AsFloat()
				got[row[0].Str] = f
			}
			for k, want := range tc.want {
				if math.Abs(got[k]-want) > 1e-9 {
					t.Errorf("%s group %s = %g, want %g", tc.kind, k, got[k], want)
				}
			}
		}
	}
}

func TestAggIncrementalEmitsUpdates(t *testing.T) {
	for _, mk := range []func([]expr.Expr, AggKind, expr.Expr, bool) *Agg{NewAgg, NewMapAgg} {
		a := mk([]expr.Expr{expr.C(0)}, Count, nil, true)
		r1, err := a.Fold(types.Tuple{types.Str("k")})
		if err != nil || r1 == nil || r1[1].I != 1 {
			t.Fatalf("first update = %v, %v", r1, err)
		}
		r2, _ := a.Fold(types.Tuple{types.Str("k")})
		if r2[1].I != 2 {
			t.Errorf("second update = %v", r2)
		}
	}
}

func TestAggSumRequiresExpr(t *testing.T) {
	a := NewAgg(nil, Sum, nil, false)
	if _, err := a.Fold(types.Tuple{types.Int(1)}); err == nil {
		t.Error("SUM without expression must error")
	}
}

// runJoinTopology wires 3 spouts through a join bolt under the given local
// join kind and returns the sorted result rows.
func runJoinTopology(t *testing.T, kind LocalJoinKind) []types.Tuple {
	t.Helper()
	g := expr.MustJoinGraph(3,
		expr.EquiCol(0, 1, 1, 0),
		expr.EquiCol(1, 1, 2, 0),
	)
	mk := func(n int, f func(i int) types.Tuple) []types.Tuple {
		rows := make([]types.Tuple, n)
		for i := range rows {
			rows[i] = f(i)
		}
		return rows
	}
	r := mk(20, func(i int) types.Tuple { return types.Tuple{types.Int(int64(i)), types.Int(int64(i % 4))} })
	s := mk(20, func(i int) types.Tuple { return types.Tuple{types.Int(int64(i % 4)), types.Int(int64(i % 3))} })
	u := mk(20, func(i int) types.Tuple { return types.Tuple{types.Int(int64(i % 3)), types.Int(int64(i))} })
	sink := dataflow.NewGather()
	topo, err := dataflow.NewBuilder().
		Spout("R", 1, dataflow.SliceSpout(r)).
		Spout("S", 1, dataflow.SliceSpout(s)).
		Spout("T", 1, dataflow.SliceSpout(u)).
		Bolt("join", 1, JoinBolt(g, kind, map[string]int{"R": 0, "S": 1, "T": 2}, nil, false, false, nil)).
		Bolt("sink", 1, sink.Factory()).
		Input("join", "R", dataflow.Global()).
		Input("join", "S", dataflow.Global()).
		Input("join", "T", dataflow.Global()).
		Input("sink", "join", dataflow.Global()).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dataflow.Run(topo, dataflow.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return sink.SortedRows()
}

func TestJoinBoltTraditionalAndDBToasterAgree(t *testing.T) {
	trad := runJoinTopology(t, Traditional)
	dbt := runJoinTopology(t, DBToaster)
	if len(trad) == 0 {
		t.Fatal("join produced nothing")
	}
	if len(trad) != len(dbt) {
		t.Fatalf("traditional %d rows, dbtoaster %d", len(trad), len(dbt))
	}
	for i := range trad {
		if !trad[i].Equal(dbt[i]) {
			t.Fatalf("row %d: %v vs %v", i, trad[i], dbt[i])
		}
	}
}

func TestAggJoinBoltWithMerge(t *testing.T) {
	// COUNT(*) GROUP BY R.y over R ⋈ S on y, parallel joiners + one merger.
	g := expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0))
	spec := dbtoaster.AggSpec{
		GroupBy: []dbtoaster.ColRef{{Rel: 0, E: expr.C(0)}},
		Kind:    dbtoaster.AggCount,
	}
	var r, s []types.Tuple
	for i := 0; i < 40; i++ {
		r = append(r, types.Tuple{types.Int(int64(i % 5))})
		s = append(s, types.Tuple{types.Int(int64(i % 5))})
	}
	sink := dataflow.NewGather()
	topo, err := dataflow.NewBuilder().
		Spout("R", 2, dataflow.SliceSpout(r)).
		Spout("S", 2, dataflow.SliceSpout(s)).
		Bolt("join", 4, AggJoinBolt(g, spec, map[string]int{"R": 0, "S": 1}, false)).
		Bolt("merge", 1, MergeBolt(1, Count, false, false, false)).
		Bolt("sink", 1, sink.Factory()).
		Input("join", "R", dataflow.Fields(0)).
		Input("join", "S", dataflow.Fields(0)).
		Input("merge", "join", dataflow.Global()).
		Input("sink", "merge", dataflow.Global()).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dataflow.Run(topo, dataflow.Options{Seed: 4}); err != nil {
		t.Fatal(err)
	}
	rows := sink.SortedRows()
	if len(rows) != 5 {
		t.Fatalf("groups = %v", rows)
	}
	for _, row := range rows {
		// Each key appears 8x in R and 8x in S: count 64.
		if row[1].I != 64 {
			t.Errorf("group %v count = %v, want 64", row[0], row[1])
		}
	}
}

func TestMergeBoltRejectsBadArity(t *testing.T) {
	b := MergeBolt(1, Count, false, false, false)(0, 1)
	err := b.Execute(dataflow.Input{Tuple: types.Tuple{types.Int(1)}}, nil)
	if err == nil {
		t.Error("short merge row must error")
	}
}

func TestJoinBoltUnknownStream(t *testing.T) {
	g := expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0))
	b := JoinBolt(g, Traditional, map[string]int{"R": 0}, nil, false, false, nil)(0, 1)
	err := b.Execute(dataflow.Input{Stream: "???", Tuple: types.Tuple{types.Int(1)}}, nil)
	if err == nil {
		t.Error("unknown stream must error")
	}
}

func sortRows(rows []types.Tuple) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
}

// TestAggLayoutParity drives random updates through both group-table
// layouts and requires identical result rows — including the group-identity
// corner where Int(2) and Float(2.0) are distinct groups (their canonical
// encodings differ), which the compact layout's byte-equality verification
// must preserve.
func TestAggLayoutParity(t *testing.T) {
	slabA := NewAgg([]expr.Expr{expr.C(0), expr.C(1)}, Sum, expr.C(2), false)
	mapA := NewMapAgg([]expr.Expr{expr.C(0), expr.C(1)}, Sum, expr.C(2), false)
	rows := []types.Tuple{
		{types.Int(2), types.Str("x"), types.Int(1)},
		{types.Float(2.0), types.Str("x"), types.Int(10)}, // distinct group from Int(2)
		{types.Int(2), types.Str("x"), types.Int(100)},
		{types.Null(), types.Str(""), types.Int(7)},
		{types.Int(-5), types.Str("long payload string"), types.Int(3)},
	}
	for i := 0; i < 200; i++ {
		rows = append(rows, types.Tuple{
			types.Int(int64(i % 17)), types.Str("g"), types.Int(int64(i)),
		})
	}
	for _, r := range rows {
		if _, err := slabA.Fold(r); err != nil {
			t.Fatal(err)
		}
		if _, err := mapA.Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	if slabA.Groups() != mapA.Groups() {
		t.Fatalf("group counts diverge: slab %d, map %d", slabA.Groups(), mapA.Groups())
	}
	key := func(rs []types.Tuple) map[string]string {
		out := map[string]string{}
		for _, r := range rs {
			out[r[:2].Key()] = r.String()
		}
		return out
	}
	sr, mr := key(slabA.Rows()), key(mapA.Rows())
	for k, v := range mr {
		if sr[k] != v {
			t.Errorf("group %q: slab %q, map %q", k, sr[k], v)
		}
	}
}

// TestAggUpdateAllocFree pins the satellite fix: steady-state updates (all
// groups already present) must not allocate, in either layout.
func TestAggUpdateAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *Agg
	}{
		{"slab", NewAgg([]expr.Expr{expr.C(0)}, Count, nil, false)},
		{"map", NewMapAgg([]expr.Expr{expr.C(0)}, Count, nil, false)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rows := make([]types.Tuple, 64)
			for i := range rows {
				rows[i] = types.Tuple{types.Int(int64(i % 8))}
			}
			for _, r := range rows { // materialize all groups first
				if _, err := tc.a.Update(r, 1, 0); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				for _, r := range rows {
					if _, err := tc.a.Update(r, 1, 0); err != nil {
						t.Fatal(err)
					}
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Update allocates %.1f objects per 64 updates, want 0", allocs)
			}
		})
	}
}
