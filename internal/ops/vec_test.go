package ops

import (
	"math/rand"
	"testing"

	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/types"
	"squall/internal/vec"
	"squall/internal/wire"
)

// frameOf encodes rows into one footered frame.
func frameOf(rows []types.Tuple) []byte {
	return wire.AppendFooter(wire.EncodeBatch(nil, rows))
}

// TestRunFrameAgreesWithEachRow pushes footered frames through RunFrame and
// the same rows one at a time through EachRow, requiring identical output
// streams — across fully vectorizable pipelines, projection/selection
// interleavings (column-map composition) and spill-to-row-path fallbacks.
func TestRunFrameAgreesWithEachRow(t *testing.T) {
	pipelines := []Pipeline{
		nil,
		{Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(25)}}},
		{Project{Es: []expr.Expr{expr.C(3), expr.C(0)}}},
		{
			Select{P: expr.Cmp{Op: expr.Ge, L: expr.C(2), R: expr.F(5)}},
			Project{Es: []expr.Expr{expr.C(0), expr.C(2), expr.C(3)}},
			Select{P: expr.Cmp{Op: expr.Ne, L: expr.C(0), R: expr.I(7)}},
		},
		// Predicate behind two projections: the column map must compose.
		{
			Project{Es: []expr.Expr{expr.C(3), expr.C(2), expr.C(0)}},
			Project{Es: []expr.Expr{expr.C(2), expr.C(1)}},
			Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(25)}},
		},
		// Unlowerable select (DATE): every survivor spills to the row path.
		{
			Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(40)}},
			Select{P: expr.Cmp{Op: expr.Gt, L: expr.Date{Inner: expr.C(1)}, R: expr.I(9500)}},
			Project{Es: []expr.Expr{expr.C(1), expr.C(3)}},
		},
		// Unlowerable projection (arith) mid-pipeline.
		{
			Project{Es: []expr.Expr{expr.Arith{Op: expr.Mul, L: expr.C(0), R: expr.I(3)}, expr.C(3)}},
			Select{P: expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(60)}},
		},
	}
	rng := rand.New(rand.NewSource(31))
	rows := make([]types.Tuple, 300)
	for i := range rows {
		rows[i] = pipelineRow(rng, i)
	}
	view := &vec.FrameView{}
	for pi, p := range pipelines {
		pp := CompilePipeline(p)
		for off := 0; off < len(rows); off += 30 {
			chunk := rows[off : off+30]
			var want []types.Tuple
			var cur wire.Cursor
			var enc []byte
			collect := func(dst *[]types.Tuple) func(row []byte, _ *wire.Cursor) error {
				return func(row []byte, _ *wire.Cursor) error {
					o, _, err := wire.Decode(row)
					if err != nil {
						return err
					}
					*dst = append(*dst, o)
					return nil
				}
			}
			for _, tu := range chunk {
				enc = wire.Encode(enc[:0], tu)
				if err := cur.Reset(enc); err != nil {
					t.Fatal(err)
				}
				if err := pp.EachRow(enc, &cur, collect(&want)); err != nil {
					t.Fatalf("pipeline %d row path: %v", pi, err)
				}
			}
			frame := frameOf(chunk)
			if !view.Reset(frame) {
				t.Fatalf("pipeline %d: frame has no footer", pi)
			}
			var got []types.Tuple
			handled, err := pp.RunFrame(view, collect(&got))
			if err != nil {
				t.Fatalf("pipeline %d RunFrame: %v", pi, err)
			}
			if !handled {
				t.Fatalf("pipeline %d: RunFrame refused a uniform footered frame", pi)
			}
			if len(got) != len(want) {
				t.Fatalf("pipeline %d: frame %d rows, row path %d", pi, len(got), len(want))
			}
			for k := range got {
				if !got[k].Equal(want[k]) {
					t.Fatalf("pipeline %d row %d: frame %v, row path %v", pi, k, got[k], want[k])
				}
			}
		}
	}
}

// TestRunFrameMixedKindFallback feeds a frame whose predicate column mixes
// kinds: the kernel bows out per frame and RunFrame spills every row through
// the row-path predicate, still producing the reference answer.
func TestRunFrameMixedKindFallback(t *testing.T) {
	rows := []types.Tuple{
		{types.Int(1), types.Str("a")},
		{types.Float(2.5), types.Str("b")},
		{types.Int(3), types.Str("c")},
	}
	p := Pipeline{Select{P: expr.Cmp{Op: expr.Gt, L: expr.C(0), R: expr.I(1)}}}
	pp := CompilePipeline(p)
	view := &vec.FrameView{}
	if !view.Reset(frameOf(rows)) {
		t.Fatal("frame has no footer")
	}
	var got []types.Tuple
	handled, err := pp.RunFrame(view, func(row []byte, _ *wire.Cursor) error {
		o, _, err := wire.Decode(row)
		if err != nil {
			return err
		}
		got = append(got, o)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !handled {
		t.Fatalf("mixed-kind frame: want spill through the row path, got handled=false")
	}
	if len(got) != 2 || !got[0].Equal(rows[1]) || !got[1].Equal(rows[2]) {
		t.Fatalf("mixed-kind spill selected %v", got)
	}
}

// TestAggFoldFrameAgreesWithFoldRow differentials the group-wise frame fold
// against the per-row fold for every aggregate kind.
func TestAggFoldFrameAgreesWithFoldRow(t *testing.T) {
	for _, kind := range []AggKind{Count, Sum, Avg} {
		var sumE expr.Expr
		if kind != Count {
			sumE = expr.C(2)
		}
		rowAgg := NewAgg([]expr.Expr{expr.C(0)}, kind, sumE, false)
		frameAgg := NewAgg([]expr.Expr{expr.C(0)}, kind, sumE, false)
		if !rowAgg.PackedCapable() || !frameAgg.PackedCapable() {
			t.Fatalf("%v col-ref agg must be packed-capable", kind)
		}
		rng := rand.New(rand.NewSource(37))
		view := &vec.FrameView{}
		var cur wire.Cursor
		for f := 0; f < 10; f++ {
			rows := make([]types.Tuple, 50)
			for i := range rows {
				rows[i] = pipelineRow(rng, f*50+i)
			}
			frame := frameOf(rows)
			if !view.Reset(frame) {
				t.Fatal("frame has no footer")
			}
			handled, err := frameAgg.FoldFrame(view, view.All())
			if err != nil {
				t.Fatal(err)
			}
			if !handled {
				t.Fatal("FoldFrame refused a uniform frame")
			}
			if _, _, err := wire.EachRow(frame, &cur, func(_ []byte) error {
				return rowAgg.FoldRow(&cur)
			}); err != nil {
				t.Fatal(err)
			}
		}
		wantBag := map[string]int{}
		for _, r := range rowAgg.Rows() {
			wantBag[r.Key()]++
		}
		for _, r := range frameAgg.Rows() {
			k := r.Key()
			if wantBag[k] == 0 {
				t.Fatalf("%v: frame row %v not in row-path rows", kind, r)
			}
			wantBag[k]--
		}
		if rowAgg.Groups() != frameAgg.Groups() {
			t.Fatalf("%v: groups %d vs %d", kind, frameAgg.Groups(), rowAgg.Groups())
		}
	}
}

// TestAggFoldFrameFallbackTouchesNothing pins the handled=false contract: a
// frame the fold cannot vectorize (string SUM column) must leave the group
// table untouched so the caller can re-fold row by row without double
// counting.
func TestAggFoldFrameFallbackTouchesNothing(t *testing.T) {
	a := NewAgg([]expr.Expr{expr.C(0)}, Sum, expr.C(1), false)
	if !a.PackedCapable() {
		t.Fatal("agg must be packed-capable")
	}
	rows := []types.Tuple{
		{types.Int(1), types.Str("2.5")},
		{types.Int(1), types.Str("3.5")},
	}
	view := &vec.FrameView{}
	frame := frameOf(rows)
	if !view.Reset(frame) {
		t.Fatal("frame has no footer")
	}
	handled, err := a.FoldFrame(view, view.All())
	if err != nil {
		t.Fatal(err)
	}
	if handled {
		t.Fatal("string SUM column must fall back to the row path")
	}
	if a.Groups() != 0 {
		t.Fatalf("fallback mutated the group table: %d groups", a.Groups())
	}
	var cur wire.Cursor
	if _, _, err := wire.EachRow(frame, &cur, func(_ []byte) error {
		return a.FoldRow(&cur)
	}); err != nil {
		t.Fatal(err)
	}
	rowsOut := a.Rows()
	if len(rowsOut) != 1 || rowsOut[0][1].F != 6 {
		t.Fatalf("row-path fold after fallback: %v", rowsOut)
	}
}

// TestPackedAggBoltExecuteFrame drives the FrameBolt face with footered and
// bare frames and checks both match the per-row face.
func TestPackedAggBoltExecuteFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rows := make([]types.Tuple, 120)
	for i := range rows {
		rows[i] = pipelineRow(rng, i)
	}
	build := func() dataflow.Bolt {
		return AggBolt([]expr.Expr{expr.C(0)}, Avg, expr.C(2), false, false, true)(0, 1)
	}
	ref := build().(packedAggBolt)
	var cur wire.Cursor
	var enc []byte
	for _, tu := range rows {
		enc = wire.Encode(enc[:0], tu)
		if err := cur.Reset(enc); err != nil {
			t.Fatal(err)
		}
		if err := ref.ExecuteRow(dataflow.RowInput{Row: enc, Cur: &cur}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for name, foot := range map[string]bool{"footered": true, "bare": false} {
		fb, ok := build().(dataflow.FrameBolt)
		if !ok {
			t.Fatal("packed agg bolt must be a FrameBolt")
		}
		for off := 0; off < len(rows); off += 40 {
			frame := wire.EncodeBatch(nil, rows[off:off+40])
			if foot {
				frame = wire.AppendFooter(frame)
			}
			if err := fb.ExecuteFrame(dataflow.FrameInput{Frame: frame, Count: 40}, nil); err != nil {
				t.Fatal(err)
			}
		}
		got := fb.(packedAggBolt).a
		wantBag := map[string]int{}
		for _, r := range ref.a.Rows() {
			wantBag[r.Key()]++
		}
		for _, r := range got.Rows() {
			k := r.Key()
			if wantBag[k] == 0 {
				t.Fatalf("%s: frame-path row %v not in row-path rows", name, r)
			}
			wantBag[k]--
		}
		if got.Groups() != ref.a.Groups() {
			t.Fatalf("%s: groups %d vs %d", name, got.Groups(), ref.a.Groups())
		}
	}
}

// TestPackedMergeBoltExecuteFrame drives the merge FrameBolt with uniform
// (vectorizable) and float-cnt (fallback) partial rows.
func TestPackedMergeBoltExecuteFrame(t *testing.T) {
	partials := make([]types.Tuple, 0, 60)
	for i := 0; i < 60; i++ {
		partials = append(partials, types.Tuple{
			types.Int(int64(i % 7)), types.Int(int64(1 + i%3)), types.Float(float64(i) / 2),
		})
	}
	// Float counts force the per-row walk (AsInt truncation stays boxed).
	floatCnt := make([]types.Tuple, len(partials))
	for i, tu := range partials {
		floatCnt[i] = types.Tuple{tu[0], types.Float(float64(tu[1].I)), tu[2]}
	}
	for name, input := range map[string][]types.Tuple{"int-cnt": partials, "float-cnt": floatCnt} {
		ref := MergeBolt(1, Avg, false, false, true)(0, 1).(packedMergeBolt)
		var cur wire.Cursor
		var enc []byte
		for _, tu := range input {
			enc = wire.Encode(enc[:0], tu)
			if err := cur.Reset(enc); err != nil {
				t.Fatal(err)
			}
			if err := ref.ExecuteRow(dataflow.RowInput{Row: enc, Cur: &cur}, nil); err != nil {
				t.Fatal(err)
			}
		}
		fb, ok := MergeBolt(1, Avg, false, false, true)(0, 1).(dataflow.FrameBolt)
		if !ok {
			t.Fatal("packed merge bolt must be a FrameBolt")
		}
		for off := 0; off < len(input); off += 20 {
			frame := frameOf(input[off : off+20])
			if err := fb.ExecuteFrame(dataflow.FrameInput{Frame: frame, Count: 20}, nil); err != nil {
				t.Fatal(err)
			}
		}
		got := fb.(packedMergeBolt).a
		wantBag := map[string]int{}
		for _, r := range ref.a.Rows() {
			wantBag[r.Key()]++
		}
		for _, r := range got.Rows() {
			k := r.Key()
			if wantBag[k] == 0 {
				t.Fatalf("%s: frame-path row %v not in row-path rows", name, r)
			}
			wantBag[k]--
		}
		if got.Groups() != ref.a.Groups() {
			t.Fatalf("%s: groups %d vs %d", name, got.Groups(), ref.a.Groups())
		}
	}
}
