// Vectorized operator paths (PR 6): group-wise aggregation folds over
// footered frames, and the FrameBolt adapters that let the executor hand
// whole transport frames to the packed agg/merge bolts. Every frame entry
// point falls back — to the row-at-a-time walk of the same frame — whenever
// the footer is missing or a referenced column defeats the kernels, so
// semantics are identical with vectorized execution on or off.
package ops

import (
	"fmt"

	"squall/internal/dataflow"
	"squall/internal/types"
	"squall/internal/vec"
	"squall/internal/wire"
)

// FoldFrame folds the selected rows of a footered frame into the group
// table: splice and validate every group key first, resolve all keys to
// accumulator slots in one hashing pass, then bump the accumulators in a
// tight loop with the SUM column gathered as a float64 slice. Callers must
// have checked PackedCapable.
//
// handled=false means this frame cannot fold vectorized (mixed-kind or
// string SUM column, or a footer inconsistency) and — critically — that no
// accumulator was touched, so the caller can re-fold the whole frame row by
// row without double counting.
func (a *Agg) FoldFrame(view *vec.FrameView, sel vec.Sel) (handled bool, err error) {
	if len(sel) == 0 {
		return true, nil
	}
	var sums []float64
	if a.sumCol >= 0 {
		if a.sumCol >= view.NCols() {
			return true, fmt.Errorf("expr: column %d out of range for arity %d", a.sumCol, view.NCols())
		}
		switch types.Kind(view.KindByte(a.sumCol)) {
		case types.KindInt, types.KindFloat:
			var ok bool
			sums, ok = view.NumsAsFloat64(a.sumCol)
			if !ok {
				return false, nil
			}
		case types.KindNull:
			// A NULL sum operand contributes 0 on the row path too.
		default:
			// Strings may parse numerically row by row; mixed kinds are
			// unknowable frame-wide. The row path decides.
			return false, nil
		}
	} else if a.Kind != Count {
		return true, fmt.Errorf("ops: %s needs a sum expression", a.Kind)
	}
	return a.foldFrameSlots(view, sel, nil, sums)
}

// foldFrameSlots is the shared core of the frame folds: per-row count from
// cnts (nil = 1 each) and per-row sum from sums (nil = 0 each), both indexed
// by frame row. The key-splice pass runs to completion before any state
// mutates, preserving the handled=false contract.
func (a *Agg) foldFrameSlots(view *vec.FrameView, sel vec.Sel, cnts []int64, sums []float64) (bool, error) {
	nc := view.NCols()
	for _, c := range a.groupCols {
		if c < 0 || c >= nc {
			return true, fmt.Errorf("expr: column %d out of range for arity %d", c, nc)
		}
	}
	a.keyBuf = a.keyBuf[:0]
	a.keyEnds = a.keyEnds[:0]
	for _, r := range sel {
		var ok bool
		a.keyBuf, ok = view.AppendRow(a.keyBuf, a.groupCols, r)
		if !ok {
			return false, nil
		}
		a.keyEnds = append(a.keyEnds, int32(len(a.keyBuf)))
	}
	if cap(a.slots) < len(sel) {
		a.slots = make([]int32, len(sel))
	}
	slots := a.slots[:len(sel)]
	start := int32(0)
	for k := range sel {
		end := a.keyEnds[k]
		slots[k] = int32(a.slotFor(a.keyBuf[start:end]))
		start = end
	}
	switch {
	case cnts == nil && sums == nil:
		for _, s := range slots {
			a.states[s].cnt++
		}
	case cnts == nil:
		for k, s := range slots {
			st := &a.states[s]
			st.cnt++
			st.sum += sums[sel[k]]
		}
	default:
		for k, s := range slots {
			st := &a.states[s]
			st.cnt += cnts[sel[k]]
			if sums != nil {
				st.sum += sums[sel[k]]
			}
		}
	}
	return true, nil
}

// ExecuteFrame folds one transport frame (dataflow.FrameBolt): group-wise
// through FoldFrame when the frame carries a usable footer, row by row
// otherwise.
func (b packedAggBolt) ExecuteFrame(in dataflow.FrameInput, _ *dataflow.Collector) error {
	if b.view.Reset(in.Frame) {
		handled, err := b.a.FoldFrame(b.view, b.view.All())
		if err != nil {
			return err
		}
		if handled {
			return nil
		}
	}
	_, _, err := wire.EachRow(in.Frame, b.fcur, func(_ []byte) error {
		return b.a.FoldRow(b.fcur)
	})
	return err
}

// ExecuteFrame merges one frame of partial rows (dataflow.FrameBolt).
func (b packedMergeBolt) ExecuteFrame(in dataflow.FrameInput, _ *dataflow.Collector) error {
	if b.view.Reset(in.Frame) {
		handled, err := b.mergeFrame(b.view)
		if err != nil {
			return err
		}
		if handled {
			return nil
		}
	}
	_, _, err := wire.EachRow(in.Frame, b.fcur, func(_ []byte) error {
		return b.mergeRow(b.fcur)
	})
	return err
}

// mergeFrame gathers the trailing (cnt, sum) columns and folds the frame
// group-wise. The boxed path coerces cnt through AsInt (floats truncate,
// strings parse), so only a uniformly-INT cnt column vectorizes; anything
// else falls back to the per-row walk rather than guessing.
func (b packedMergeBolt) mergeFrame(v *vec.FrameView) (bool, error) {
	sel := v.All()
	if len(sel) == 0 {
		return true, nil
	}
	if v.NCols() != b.ngroup+2 {
		return true, fmt.Errorf("ops: merge row arity %d, want %d group cols + cnt + sum", v.NCols(), b.ngroup)
	}
	if types.Kind(v.KindByte(b.ngroup)) != types.KindInt {
		return false, nil
	}
	cnts, ok := v.Int64s(b.ngroup)
	if !ok {
		return false, nil
	}
	var sums []float64
	switch types.Kind(v.KindByte(b.ngroup + 1)) {
	case types.KindInt, types.KindFloat:
		sums, ok = v.NumsAsFloat64(b.ngroup + 1)
		if !ok {
			return false, nil
		}
	case types.KindNull:
		// FieldFloat's error is discarded on the row path; NULL sums are 0.
	default:
		return false, nil
	}
	return b.a.foldFrameSlots(v, sel, cnts, sums)
}
