package ewh

import (
	"math/rand"
	"testing"

	"squall/internal/datagen"
)

func sample(r *rand.Rand, n int, domain int64, zipf *datagen.Zipf) []int64 {
	out := make([]int64, n)
	for i := range out {
		if zipf != nil {
			out[i] = zipf.RankFrom(r.Float64())
		} else {
			out[i] = r.Int63n(domain)
		}
	}
	return out
}

func TestBandPredicates(t *testing.T) {
	w := Within(2)
	if !w.Matches(5, 4) || !w.Matches(4, 6) || w.Matches(1, 5) {
		t.Error("Within(2) misbehaves")
	}
	lt := LessThan()
	if !lt.Matches(1, 2) || lt.Matches(2, 2) || lt.Matches(3, 1) {
		t.Error("LessThan misbehaves")
	}
	if !lt.mayMatch(0, 10, 5, 6) {
		t.Error("ranges [0,10] vs [5,6] may satisfy a<b")
	}
	if lt.mayMatch(10, 20, 0, 5) {
		t.Error("[10,20] < [0,5] is impossible")
	}
	if !Within(1).mayMatch(0, 3, 4, 8) { // a=3,b=4 works
		t.Error("adjacent ranges may band-match")
	}
	if Within(1).mayMatch(0, 3, 5, 8) {
		t.Error("gap of 2 cannot band-match within 1")
	}
}

// TestMeetExactlyOnce: every matching (a, b) pair meets in exactly one
// region, and that region appears in both tuples' routing lists.
func TestMeetExactlyOnce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, band := range []Band{Within(3), LessThan(), Within(0)} {
		R := sample(r, 400, 100, nil)
		S := sample(r, 400, 100, nil)
		s, err := Build(R[:200], S[:200], 12, 9, band)
		if err != nil {
			t.Fatal(err)
		}
		matches := 0
		for _, a := range R {
			ra := s.RouteR(a)
			for _, b := range S {
				if !band.Matches(a, b) {
					continue
				}
				matches++
				region := s.MeetRegion(a, b)
				if region < 0 {
					t.Fatalf("matching pair (%d,%d) landed in a pruned cell", a, b)
				}
				if !contains(ra, region) || !contains(s.RouteS(b), region) {
					t.Fatalf("pair (%d,%d): region %d missing from routes %v / %v",
						a, b, region, ra, s.RouteS(b))
				}
			}
		}
		if matches == 0 {
			t.Fatal("no matches generated")
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestInequalityPrunesReplication: for a < b, roughly half the matrix is
// provably empty, so total routing fanout must be well below the 1-Bucket
// grid's (which replicates every tuple sqrt(p) ways regardless).
func TestInequalityPrunesReplication(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	R := sample(r, 2000, 1000, nil)
	S := sample(r, 2000, 1000, nil)
	const machines = 16
	s, err := Build(R[:500], S[:500], 16, machines, LessThan())
	if err != nil {
		t.Fatal(err)
	}
	var ewhCopies int
	for _, a := range R {
		ewhCopies += len(s.RouteR(a))
	}
	for _, b := range S {
		ewhCopies += len(s.RouteS(b))
	}
	rows, cols := OneBucketGrid(machines)
	oneBucketCopies := len(R)*cols + len(S)*rows
	if ewhCopies >= oneBucketCopies {
		t.Errorf("EWH shipped %d copies, 1-Bucket %d — pruning must win on inequality joins",
			ewhCopies, oneBucketCopies)
	}
}

// TestOutputBalanceUnderSkew: with zipfian keys, the EWH tiling balances
// estimated output weight across regions far better than an M-Bucket-style
// equal-input-rows split, which piles the heavy key's output on one machine
// (join product skew, [67]).
func TestOutputBalanceUnderSkew(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	z := datagen.NewZipf(1000, 1.4)
	R := sample(r, 4000, 0, z)
	S := sample(r, 4000, 0, z)
	const machines = 8
	s, err := Build(R[:1000], S[:1000], 24, machines, Within(2))
	if err != nil {
		t.Fatal(err)
	}
	// Realized output tuples per region.
	load := make([]int64, s.Machines())
	for _, a := range R {
		for _, b := range S {
			if Within(2).Matches(a, b) {
				if reg := s.MeetRegion(a, b); reg >= 0 {
					load[reg]++
				}
			}
		}
	}
	var total, maxv int64
	for _, l := range load {
		total += l
		if l > maxv {
			maxv = l
		}
	}
	if total == 0 {
		t.Fatal("no output")
	}
	ewhSkew := float64(maxv) / (float64(total) / float64(len(load)))
	// M-Bucket-style baseline: split R's key space into `machines` equal-
	// input stripes; each output lands in its a-stripe.
	bounds := equiDepth(R[:1000], machines)
	mload := make([]int64, len(bounds))
	for _, a := range R {
		for _, b := range S {
			if Within(2).Matches(a, b) {
				mload[bucketOf(bounds, a)]++
			}
		}
	}
	var mmax int64
	for _, l := range mload {
		if l > mmax {
			mmax = l
		}
	}
	mSkew := float64(mmax) / (float64(total) / float64(len(mload)))
	if ewhSkew >= mSkew {
		t.Errorf("EWH output skew %.2f must beat M-Bucket-style %.2f under zipf", ewhSkew, mSkew)
	}
	t.Logf("output skew: EWH %.2f vs M-Bucket-style %.2f", ewhSkew, mSkew)
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, []int64{1}, 4, 4, Within(1)); err == nil {
		t.Error("empty sample must fail")
	}
	if _, err := Build([]int64{1}, []int64{1}, 0, 4, Within(1)); err == nil {
		t.Error("zero buckets must fail")
	}
}

func TestDegenerateSingleValue(t *testing.T) {
	// All keys identical: one bucket, one region, everything meets there.
	s, err := Build([]int64{7, 7, 7}, []int64{7, 7}, 8, 4, Within(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.MeetRegion(7, 7) < 0 {
		t.Error("identical keys must meet")
	}
	if got := s.RouteR(7); len(got) != 1 {
		t.Errorf("single-bucket routing = %v", got)
	}
}

func TestOneBucketGrid(t *testing.T) {
	r, c := OneBucketGrid(16)
	if r*c != 16 || r != 4 {
		t.Errorf("grid = %dx%d", r, c)
	}
	r, c = OneBucketGrid(7)
	if r*c != 7 {
		t.Errorf("grid = %dx%d", r, c)
	}
}
