package ewh

import (
	"math/rand"
	"testing"
)

// Property tests cross-checking the EWH scheme against a brute-force oracle
// over generated band and inequality joins: every productive matrix cell is
// covered by exactly one region, matching key pairs always meet in exactly
// one region, and region weights stay within the paper's balance bound.

// genCase is one randomized scenario.
type genCase struct {
	band     Band
	rSample  []int64
	sSample  []int64
	buckets  int
	machines int
}

func randBand(rng *rand.Rand) Band {
	switch rng.Intn(4) {
	case 0:
		return Within(int64(1 + rng.Intn(40)))
	case 1:
		return LessThan()
	case 2: // asymmetric closed band
		lo := int64(-(1 + rng.Intn(30)))
		return Band{Lo: lo, Hi: lo + int64(1+rng.Intn(60))}
	default: // one-sided upper-open band: a - b >= Lo
		return Band{Lo: int64(-(1 + rng.Intn(20))), HiOpen: true}
	}
}

func randCase(rng *rand.Rand) genCase {
	domain := int64(20 + rng.Intn(400))
	mkSample := func(n int) []int64 {
		out := make([]int64, n)
		heavy := rng.Int63n(domain) // a heavy key: duplicate boundaries happen
		for i := range out {
			if rng.Intn(4) == 0 {
				out[i] = heavy
			} else {
				out[i] = rng.Int63n(domain)
			}
		}
		return out
	}
	return genCase{
		band:     randBand(rng),
		rSample:  mkSample(50 + rng.Intn(400)),
		sSample:  mkSample(50 + rng.Intn(400)),
		buckets:  2 + rng.Intn(14),
		machines: 1 + rng.Intn(15),
	}
}

// oracleWeights recomputes the cell-weight matrix exactly as Build defines
// it, straight from the samples — the brute-force reference the region
// tiling is checked against.
func oracleWeights(s *Scheme, c genCase) [][]float64 {
	rCnt := bucketCounts(c.rSample, s.rBounds)
	sCnt := bucketCounts(c.sSample, s.sBounds)
	w := make([][]float64, len(s.rBounds))
	for i := range w {
		w[i] = make([]float64, len(s.sBounds))
		aLo, aHi := s.bucketRange(s.rBounds, i)
		for j := range w[i] {
			bLo, bHi := s.bucketRange(s.sBounds, j)
			if c.band.mayMatch(aLo, aHi, bLo, bHi) {
				w[i][j] = float64(rCnt[i]) * float64(sCnt[j])
				if w[i][j] == 0 {
					w[i][j] = 1e-9
				}
			}
		}
	}
	return w
}

// TestPropertyCoverage: every productive cell belongs to exactly one region,
// regions are disjoint rectangles, and no pruned-only weight is assigned.
func TestPropertyCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		c := randCase(rng)
		s, err := Build(c.rSample, c.sSample, c.buckets, c.machines, c.band)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := s.Machines(); got > c.machines {
			t.Fatalf("trial %d: %d regions exceed %d machines", trial, got, c.machines)
		}
		w := oracleWeights(s, c)
		// Every productive cell is owned by exactly one region whose
		// rectangle contains it; every unproductive cell is unowned.
		for i := range w {
			for j := range w[i] {
				idx := s.cellRegion[i][j]
				switch {
				case w[i][j] > 0 && idx < 0:
					t.Fatalf("trial %d: productive cell (%d,%d) uncovered", trial, i, j)
				case w[i][j] == 0 && idx >= 0:
					t.Fatalf("trial %d: pruned cell (%d,%d) assigned region %d", trial, i, j, idx)
				case idx >= 0:
					r := s.regions[idx]
					if i < r.Row0 || i > r.Row1 || j < r.Col0 || j > r.Col1 {
						t.Fatalf("trial %d: cell (%d,%d) outside its region %d rect %+v", trial, i, j, idx, r)
					}
				}
			}
		}
		// Rectangles are pairwise disjoint (guillotine cuts), so "exactly
		// one region" holds for every cell, not just the marked ones.
		for a := 0; a < len(s.regions); a++ {
			for b := a + 1; b < len(s.regions); b++ {
				ra, rb := s.regions[a], s.regions[b]
				if ra.Row0 <= rb.Row1 && rb.Row0 <= ra.Row1 && ra.Col0 <= rb.Col1 && rb.Col0 <= ra.Col1 {
					t.Fatalf("trial %d: regions %d and %d overlap: %+v vs %+v", trial, a, b, ra, rb)
				}
			}
		}
	}
}

// TestPropertyMeetOracle: for random key pairs, the routing agrees with the
// brute-force predicate — matching pairs meet in exactly one region (the
// MeetRegion), and RouteR/RouteS never lose it.
func TestPropertyMeetOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		c := randCase(rng)
		s, err := Build(c.rSample, c.sSample, c.buckets, c.machines, c.band)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 200; probe++ {
			a := c.rSample[rng.Intn(len(c.rSample))] + int64(rng.Intn(21)-10)
			b := c.sSample[rng.Intn(len(c.sSample))] + int64(rng.Intn(21)-10)
			rRoute := s.RouteR(a)
			sRoute := s.RouteS(b)
			var meet []int
			for _, r := range rRoute {
				for _, q := range sRoute {
					if r == q {
						meet = append(meet, r)
					}
				}
			}
			if c.band.Matches(a, b) {
				m := s.MeetRegion(a, b)
				if m < 0 {
					t.Fatalf("trial %d: matching pair (%d,%d) in pruned cell", trial, a, b)
				}
				if len(meet) != 1 || meet[0] != m {
					t.Fatalf("trial %d: pair (%d,%d) meets in %v, want exactly [%d]", trial, a, b, meet, m)
				}
			} else if len(meet) > 1 {
				// Non-matching pairs may share the (unpruned) cell's owner,
				// but never more than one region — rectangles are disjoint.
				t.Fatalf("trial %d: non-matching pair (%d,%d) meets in %d regions", trial, a, b, len(meet))
			}
		}
	}
}

// TestPropertyBalanceBound: the guillotine tiling keeps every region's
// estimated output weight within the scheme's balance bound — the ideal
// share plus one indivisible cell per halving level (a heavy cell cannot be
// split, and the recursive bisection can miss its target by at most a cell
// at each of the ~log2(machines) levels).
func TestPropertyBalanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		c := randCase(rng)
		s, err := Build(c.rSample, c.sSample, c.buckets, c.machines, c.band)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		w := oracleWeights(s, c)
		total, maxCell := 0.0, 0.0
		for i := range w {
			for j := range w[i] {
				total += w[i][j]
				if w[i][j] > maxCell {
					maxCell = w[i][j]
				}
			}
		}
		if total == 0 {
			continue // fully pruned: nothing to balance
		}
		levels := 1.0
		for m := c.machines; m > 1; m /= 2 {
			levels++
		}
		bound := total/float64(c.machines) + levels*maxCell
		for idx, r := range s.regions {
			if r.Weight > bound+1e-6 {
				t.Fatalf("trial %d: region %d weight %.1f exceeds bound %.1f (total %.1f, machines %d, maxCell %.1f)",
					trial, idx, r.Weight, bound, total, c.machines, maxCell)
			}
		}
	}
}
