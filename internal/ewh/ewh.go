// Package ewh implements the Equi-Weight-Histogram partitioning scheme for
// 2-way band and inequality joins (Vitorovic, Elseidy, Koch — ICDE 2016,
// [66] in the paper; summarized in §3.1). The join's output space is a
// matrix over bucket boundaries of the two join keys; for low-selectivity
// band/inequality conditions, large contiguous portions of the matrix
// provably produce no output, so — unlike the 1-Bucket scheme, which
// replicates over the whole matrix — the scheme only assigns machines to
// potentially-productive cells, tiled into near-equal-weight rectangles.
//
// An M-Bucket-style baseline [54] (equal input rows per region, oblivious
// to output weight) is included; it suffers join-product skew exactly as
// the paper describes.
package ewh

import (
	"fmt"
	"sort"

	"squall/internal/types"
)

// Band describes the join condition R.a θ S.b supported by the scheme:
// Lo <= a - b <= Hi (inclusive). Band joins |a-b| <= w are {-w, w};
// inequality a < b is {Lo: -inf, Hi: -1} for integers, expressed with
// Unbounded flags.
type Band struct {
	Lo, Hi int64
	LoOpen bool // true: no lower bound (a - b can be arbitrarily small)
	HiOpen bool // true: no upper bound
}

// LessThan returns the condition a < b (for integer keys).
func LessThan() Band { return Band{LoOpen: true, Hi: -1} }

// Within returns |a - b| <= w.
func Within(w int64) Band { return Band{Lo: -w, Hi: w} }

// mayMatch reports whether any a in [aLo,aHi] and b in [bLo,bHi] can satisfy
// the band condition — the provable-emptiness test that lets the scheme
// prune matrix cells.
func (bd Band) mayMatch(aLo, aHi, bLo, bHi int64) bool {
	// a - b ranges over [aLo-bHi, aHi-bLo]; float64 avoids overflow at the
	// ±inf sentinels of the outermost buckets.
	dLo, dHi := float64(aLo)-float64(bHi), float64(aHi)-float64(bLo)
	if !bd.HiOpen && dLo > float64(bd.Hi) {
		return false
	}
	if !bd.LoOpen && dHi < float64(bd.Lo) {
		return false
	}
	return true
}

// Matches evaluates the condition on concrete keys.
func (bd Band) Matches(a, b int64) bool {
	d := a - b
	if !bd.HiOpen && d > bd.Hi {
		return false
	}
	if !bd.LoOpen && d < bd.Lo {
		return false
	}
	return true
}

// Region is one machine's share: a rectangle of histogram buckets.
type Region struct {
	Row0, Row1 int // bucket range on R's axis, inclusive
	Col0, Col1 int // bucket range on S's axis, inclusive
	Weight     float64
}

// Scheme is a built EWH partitioning.
type Scheme struct {
	band    Band
	rBounds []int64 // ascending split points: bucket i covers (rBounds[i-1], rBounds[i]]
	sBounds []int64
	regions []Region
	// cellRegion[row][col] is the owning region (-1 = provably empty cell).
	cellRegion [][]int
}

// Build constructs the scheme from key samples of both relations: equi-depth
// histograms with `buckets` buckets per axis, cell weights estimated from
// the sample cross product, and a recursive guillotine tiling into at most
// `machines` near-equal-weight regions.
func Build(rSample, sSample []int64, buckets, machines int, band Band) (*Scheme, error) {
	if len(rSample) == 0 || len(sSample) == 0 {
		return nil, fmt.Errorf("ewh: empty sample")
	}
	if buckets < 1 || machines < 1 {
		return nil, fmt.Errorf("ewh: need buckets >= 1 and machines >= 1")
	}
	s := &Scheme{band: band}
	s.rBounds = equiDepth(rSample, buckets)
	s.sBounds = equiDepth(sSample, buckets)
	nr, ns := len(s.rBounds), len(s.sBounds)

	// Estimated per-bucket input counts from the samples.
	rCnt := bucketCounts(rSample, s.rBounds)
	sCnt := bucketCounts(sSample, s.sBounds)

	// Cell weights: estimated join output (product of bucket counts) for
	// cells that may produce output; provably empty cells weigh nothing and
	// are never assigned.
	weights := make([][]float64, nr)
	for i := range weights {
		weights[i] = make([]float64, ns)
		aLo, aHi := s.bucketRange(s.rBounds, i)
		for j := range weights[i] {
			bLo, bHi := s.bucketRange(s.sBounds, j)
			if band.mayMatch(aLo, aHi, bLo, bHi) {
				weights[i][j] = float64(rCnt[i]) * float64(sCnt[j])
				if weights[i][j] == 0 {
					weights[i][j] = 1e-9 // keep coverable, nearly free
				}
			}
		}
	}

	s.cellRegion = make([][]int, nr)
	for i := range s.cellRegion {
		s.cellRegion[i] = make([]int, ns)
		for j := range s.cellRegion[i] {
			s.cellRegion[i][j] = -1
		}
	}
	s.tile(weights, 0, nr-1, 0, ns-1, machines)
	return s, nil
}

// bucketRange returns the key range covered by bucket i of bounds.
func (s *Scheme) bucketRange(bounds []int64, i int) (int64, int64) {
	const inf = int64(1) << 62
	lo := -inf
	if i > 0 {
		lo = bounds[i-1] + 1
	}
	hi := bounds[i]
	if i == len(bounds)-1 {
		hi = inf
	}
	return lo, hi
}

// tile recursively splits the rectangle [r0..r1]x[c0..c1] into up to k
// regions of near-equal weight using guillotine cuts along the axis whose
// split best balances the halves.
func (s *Scheme) tile(w [][]float64, r0, r1, c0, c1, k int) {
	total := rectWeight(w, r0, r1, c0, c1)
	if k <= 1 || total == 0 || (r0 == r1 && c0 == c1) {
		if total > 0 {
			idx := len(s.regions)
			s.regions = append(s.regions, Region{Row0: r0, Row1: r1, Col0: c0, Col1: c1, Weight: total})
			for i := r0; i <= r1; i++ {
				for j := c0; j <= c1; j++ {
					if w[i][j] > 0 {
						s.cellRegion[i][j] = idx
					}
				}
			}
		}
		return
	}
	k1 := k / 2
	want := total * float64(k1) / float64(k)
	// Best row cut.
	bestRow, bestRowErr := -1, total
	acc := 0.0
	for i := r0; i < r1; i++ {
		acc += rectWeight(w, i, i, c0, c1)
		if e := abs(acc - want); e < bestRowErr {
			bestRowErr, bestRow = e, i
		}
	}
	// Best column cut.
	bestCol, bestColErr := -1, total
	acc = 0.0
	for j := c0; j < c1; j++ {
		acc += rectWeight(w, r0, r1, j, j)
		if e := abs(acc - want); e < bestColErr {
			bestColErr, bestCol = e, j
		}
	}
	switch {
	case bestRow < 0 && bestCol < 0:
		s.tile(w, r0, r1, c0, c1, 1)
	case bestCol < 0 || (bestRow >= 0 && bestRowErr <= bestColErr):
		s.tile(w, r0, bestRow, c0, c1, k1)
		s.tile(w, bestRow+1, r1, c0, c1, k-k1)
	default:
		s.tile(w, r0, r1, c0, bestCol, k1)
		s.tile(w, r0, r1, bestCol+1, c1, k-k1)
	}
}

func rectWeight(w [][]float64, r0, r1, c0, c1 int) float64 {
	t := 0.0
	for i := r0; i <= r1; i++ {
		for j := c0; j <= c1; j++ {
			t += w[i][j]
		}
	}
	return t
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Machines returns the number of regions (machines used).
func (s *Scheme) Machines() int { return len(s.regions) }

// Regions exposes the tiling for inspection.
func (s *Scheme) Regions() []Region { return s.regions }

// bucketOf locates a key's bucket via binary search.
func bucketOf(bounds []int64, key int64) int {
	i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= key })
	if i >= len(bounds) {
		i = len(bounds) - 1
	}
	return i
}

// RouteR returns the regions an R tuple with key a must reach: every region
// owning a non-pruned cell of a's bucket row.
func (s *Scheme) RouteR(a int64) []int {
	row := bucketOf(s.rBounds, a)
	return distinctRegions(s.cellRegion[row])
}

// RouteS returns the regions an S tuple with key b must reach.
func (s *Scheme) RouteS(b int64) []int {
	col := bucketOf(s.sBounds, b)
	seen := map[int]bool{}
	var out []int
	for row := range s.cellRegion {
		if r := s.cellRegion[row][col]; r >= 0 && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// MeetRegion returns the single region where keys (a, b) meet, or -1 when
// the cell is pruned (provably no match).
func (s *Scheme) MeetRegion(a, b int64) int {
	return s.cellRegion[bucketOf(s.rBounds, a)][bucketOf(s.sBounds, b)]
}

func distinctRegions(cells []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range cells {
		if r >= 0 && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// equiDepth computes b equi-depth upper bounds from a sample.
func equiDepth(sample []int64, b int) []int64 {
	sorted := append([]int64(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bounds := make([]int64, 0, b)
	for i := 1; i <= b; i++ {
		idx := i*len(sorted)/b - 1
		if idx < 0 {
			idx = 0
		}
		v := sorted[idx]
		if n := len(bounds); n > 0 && bounds[n-1] >= v {
			continue // collapse duplicate boundaries (heavy keys)
		}
		bounds = append(bounds, v)
	}
	if len(bounds) == 0 {
		bounds = append(bounds, sorted[len(sorted)-1])
	}
	return bounds
}

func bucketCounts(sample []int64, bounds []int64) []int64 {
	counts := make([]int64, len(bounds))
	for _, v := range sample {
		counts[bucketOf(bounds, v)]++
	}
	return counts
}

// OneBucketGrid is the 1-Bucket baseline on the same metric: an rxc grid
// with random placement replicates each R tuple c times and each S tuple r
// times regardless of the condition — no pruning.
func OneBucketGrid(machines int) (rows, cols int) {
	best := 1
	for r := 1; r*r <= machines; r++ {
		if machines%r == 0 {
			best = r
		}
	}
	return best, machines / best
}

// Ensure types is used (key extraction helpers may grow here).
var _ = types.KindInt
