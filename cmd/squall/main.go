// squall is the command-line interface of the engine: run an ad-hoc SQL
// query over one of the built-in generated datasets and print results plus
// execution metrics.
//
//	go run ./cmd/squall -dataset google -machines 8 \
//	  -query "SELECT MACHINE_EVENTS.platform, COUNT(*) FROM TASK_EVENTS, MACHINE_EVENTS WHERE TASK_EVENTS.machineID = MACHINE_EVENTS.machineID GROUP BY MACHINE_EVENTS.platform"
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"squall"
	"squall/internal/datagen"
)

func main() {
	var (
		query    = flag.String("query", "", "SQL query (required)")
		dataset  = flag.String("dataset", "google", "dataset: tpch | google | web")
		scale    = flag.Int64("scale", 60000, "dataset scale (lineitems / task events / arcs)")
		zipf     = flag.Float64("zipf", 0, "zipfian skew factor for TPC-H foreign keys (paper uses 2)")
		machines = flag.Int("machines", 8, "joiner parallelism budget")
		scheme   = flag.String("scheme", "hybrid", "partitioning scheme: hash | random | hybrid")
		local    = flag.String("local", "dbtoaster", "local join: dbtoaster | traditional")
		limit    = flag.Int("limit", 20, "max result rows to print (0 = all)")
		seed     = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()
	if *query == "" {
		log.Fatal("squall: -query is required")
	}

	cat, err := catalogFor(*dataset, *scale, *zipf)
	if err != nil {
		log.Fatal(err)
	}
	opts := squall.SQLOptions{Machines: *machines}
	switch strings.ToLower(*scheme) {
	case "hash":
		opts.Scheme = squall.HashHypercube
	case "random":
		opts.Scheme = squall.RandomHypercube
	case "hybrid":
		opts.Scheme = squall.HybridHypercube
	default:
		log.Fatalf("squall: unknown scheme %q", *scheme)
	}
	switch strings.ToLower(*local) {
	case "dbtoaster":
		opts.Local = squall.DBToaster
	case "traditional":
		opts.Local = squall.Traditional
	default:
		log.Fatalf("squall: unknown local join %q", *local)
	}

	res, err := squall.RunSQL(*query, cat, opts, squall.Options{Seed: *seed, CollectLimit: *limit})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme: %v (%d machines), local join: %s\n", res.Hypercube, res.Hypercube.Machines(), *local)
	fmt.Printf("rows: %d\n", res.RowCount)
	for _, row := range res.SortedRows() {
		fmt.Println("  " + row.String())
	}
	cm := res.Metrics.Component(res.JoinerComponent)
	fmt.Printf("joiner load max/avg: %d/%.0f (skew %.2f), replication %.3f, elapsed %v\n",
		cm.MaxLoad(), cm.AvgLoad(), cm.SkewDegree(),
		res.Metrics.ReplicationFactor(res.JoinerComponent), res.Metrics.Elapsed)
}

func catalogFor(dataset string, scale int64, zipf float64) (squall.Catalog, error) {
	switch strings.ToLower(dataset) {
	case "tpch":
		gen := datagen.NewTPCH(42, scale, zipf)
		skew := map[string]bool{}
		freq := map[string]float64{}
		if zipf > 0 {
			skew["partkey"] = true
			freq["partkey"] = gen.TopPartkeyFreq()
		}
		return squall.Catalog{
			"customer": {Schema: datagen.CustomerSchema, Spout: gen.CustomerSpout(), Size: gen.Customers()},
			"orders":   {Schema: datagen.OrdersSchema, Spout: gen.OrdersSpout(), Size: gen.Orders()},
			"lineitem": {Schema: datagen.LineitemSchema, Spout: gen.LineitemSpout(), Size: gen.Lineitems,
				Skewed: skew, TopFreq: freq},
			"part":     {Schema: datagen.PartSchema, Spout: gen.PartSpout(), Size: gen.Parts()},
			"partsupp": {Schema: datagen.PartSuppSchema, Spout: gen.PartSuppSpout(), Size: gen.PartSupps()},
			"supplier": {Schema: datagen.SupplierSchema, Spout: gen.SupplierSpout(), Size: gen.Suppliers()},
		}, nil
	case "google":
		gen := &datagen.GoogleTrace{Seed: 42, TaskEvents: scale}
		return squall.Catalog{
			"job_events":     {Schema: datagen.JobEventsSchema, Spout: gen.JobEventsSpout(), Size: gen.JobEvents()},
			"task_events":    {Schema: datagen.TaskEventsSchema, Spout: gen.TaskEventsSpout(), Size: gen.TaskEvents},
			"machine_events": {Schema: datagen.MachineEventsSchema, Spout: gen.MachineEventsSpout(), Size: gen.MachineEvents()},
		}, nil
	case "web":
		w := datagen.NewWebGraphBi(42, scale/3+1, scale, 1.1, 1.3)
		c := &datagen.CrawlContent{Seed: 43, Hosts: w.Hosts}
		return squall.Catalog{
			"webgraph":     {Schema: datagen.WebGraphSchema, Spout: w.Spout(), Size: w.Arcs},
			"crawlcontent": {Schema: datagen.CrawlContentSchema, Spout: c.Spout(), Size: w.Hosts},
		}, nil
	default:
		return nil, fmt.Errorf("squall: unknown dataset %q (tpch|google|web)", dataset)
	}
}
