// Command squallserve hosts a multi-query serving Engine over HTTP: one set
// of shared TPC-H scans, a catalog of registrable continuous queries, and a
// registry API so operators can add, drop and inspect queries at runtime
// without restarting the sources.
//
// Endpoints:
//
//	POST /register?id=Q1&query=tpch9&tenant=acme[&machines=4][&evict=1]
//	POST /unregister?id=Q1
//	POST /budget?tenant=acme[&max_bytes=N][&max_queries=N]
//	POST /start               open the shared scans (after initial registrations)
//	GET  /queries             full registry snapshot (Engine.Stats)
//	GET  /results?id=Q1[&limit=N]
//	GET  /healthz             per-query / per-tenant / per-source counts
//
// Registration against an exhausted budget answers 429 with the budget
// detail; &evict=1 lets the registration evict the tenant's own oldest
// query instead.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"

	"squall"
	"squall/experiments"
	"squall/internal/datagen"
	"squall/internal/serve"
	"squall/internal/slab"
)

// catalog maps query names to builders. The builders produce standalone
// plans; shared() strips their private spouts so registration binds each
// relation to the engine's shared scan of the same name.
func catalog(gen *datagen.TPCH) map[string]func(machines int) *squall.JoinQuery {
	return map[string]func(machines int) *squall.JoinQuery{
		"tpch9": func(m int) *squall.JoinQuery {
			return shared(experiments.TPCH9Partial(gen, squall.HashHypercube, squall.DBToaster, m))
		},
		"q3": func(m int) *squall.JoinQuery {
			return shared(experiments.Q3(gen, squall.HashHypercube, squall.DBToaster, m))
		},
	}
}

func shared(q *squall.JoinQuery) *squall.JoinQuery {
	for i := range q.Sources {
		q.Sources[i].Spout = nil
	}
	return q
}

type server struct {
	eng     *squall.Engine
	queries map[string]func(machines int) *squall.JoinQuery
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8181", "address for the HTTP API")
	rows := flag.Int64("rows", 60_000, "Lineitem rows in the generated TPC-H stream")
	zipf := flag.Float64("zipf", 0, "zipf skew exponent (0 = uniform)")
	collect := flag.Int("collect", 10_000, "per-query collected-row cap")
	memcap := flag.Int64("memcap", 0, "engine-wide resident-state budget in bytes: query state runs tiered and spills as it fills; registrations are rejected at the cap (0 = uncapped)")
	flag.Parse()

	gen := datagen.NewTPCH(42, *rows, *zipf)
	eng := squall.NewEngine(squall.EngineOptions{
		Run:         squall.Options{CollectLimit: *collect},
		MemCapBytes: *memcap,
	})
	eng.AddSource("LINEITEM", gen.LineitemSpout(), gen.Lineitems)
	eng.AddSource("PARTSUPP", gen.PartSuppSpout(), gen.PartSupps())
	eng.AddSource("PART", gen.PartSpout(), gen.Parts())
	eng.AddSource("CUSTOMER", gen.CustomerSpout(), gen.Customers())
	eng.AddSource("ORDERS", gen.OrdersSpout(), gen.Orders())

	s := &server{eng: eng, queries: catalog(gen)}
	mux := http.NewServeMux()
	mux.HandleFunc("/register", s.register)
	mux.HandleFunc("/unregister", s.unregister)
	mux.HandleFunc("/budget", s.budget)
	mux.HandleFunc("/start", s.start)
	mux.HandleFunc("/queries", s.stats)
	mux.HandleFunc("/results", s.results)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/readyz", s.readyz)

	fmt.Printf("squallserve listening on %s\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func fail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) register(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	name := r.FormValue("query")
	build := s.queries[name]
	if build == nil {
		names := make([]string, 0, len(s.queries))
		for n := range s.queries {
			names = append(names, n)
		}
		sort.Strings(names)
		fail(w, http.StatusNotFound, fmt.Errorf("unknown query %q (catalog: %v)", name, names))
		return
	}
	machines := 4
	if m := r.FormValue("machines"); m != "" {
		if _, err := fmt.Sscanf(m, "%d", &machines); err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("machines: %v", err))
			return
		}
	}
	req := squall.RegisterRequest{
		Tenant: r.FormValue("tenant"),
		ID:     r.FormValue("id"),
		Query:  build(machines),
		Evict:  r.FormValue("evict") != "",
	}
	sq, err := s.eng.Register(req)
	switch {
	case errors.Is(err, serve.ErrBudgetExceeded):
		var be *serve.BudgetError
		errors.As(err, &be)
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error(), "budget": be})
		return
	case err != nil:
		fail(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": sq.ID, "tenant": sq.Tenant, "status": sq.Status().String(),
	})
}

func (s *server) unregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if err := s.eng.Unregister(r.FormValue("id")); err != nil {
		fail(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) budget(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	tenant := r.FormValue("tenant")
	if tenant == "" {
		fail(w, http.StatusBadRequest, errors.New("tenant required"))
		return
	}
	var b serve.Budget
	if v := r.FormValue("max_bytes"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &b.MaxBytes); err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("max_bytes: %v", err))
			return
		}
	}
	if v := r.FormValue("max_queries"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &b.MaxQueries); err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("max_queries: %v", err))
			return
		}
	}
	s.eng.SetTenantBudget(tenant, b)
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "budget": b})
}

func (s *server) start(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	s.eng.Start()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func (s *server) results(w http.ResponseWriter, r *http.Request) {
	sq, err := s.eng.Query(r.FormValue("id"))
	if err != nil {
		fail(w, http.StatusNotFound, err)
		return
	}
	rows := sq.Rows()
	limit := len(rows)
	if v := r.FormValue("limit"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &limit); err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("limit: %v", err))
			return
		}
	}
	out := make([]string, 0, min(limit, len(rows)))
	for _, t := range rows[:min(limit, len(rows))] {
		out = append(out, t.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": sq.ID, "status": sq.Status().String(), "total": len(rows), "rows": out,
	})
}

// healthz condenses the registry into operator-facing counts: how many
// queries are in each state, each tenant's usage against budget, the shared
// sources' fan-out counters, and — when a memcap is set — the pressure
// ladder (resident/spilled/sealed state and the current stage).
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthBody())
}

// readyz answers 200 while the engine can take new queries at full speed.
// It degrades to 503 one ladder rung BEFORE registrations start bouncing
// (Backpressure: spilling is not keeping residency under the cap), so a load
// balancer drains traffic away ahead of hard rejection.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	if p := s.eng.Pressure(); p != nil && p.Stage() >= slab.PressureBackpressure {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, s.healthBody())
}

func (s *server) healthBody() map[string]any {
	st := s.eng.Stats()
	byStatus := make(map[string]int)
	for _, q := range st.Queries {
		byStatus[q.Status]++
	}
	body := map[string]any{
		"ok":              true,
		"queries":         len(st.Queries),
		"query_status":    byStatus,
		"tenants":         st.Tenants,
		"sources":         st.Sources,
		"catalog_queries": len(s.queries),
	}
	if st.Pressure != nil {
		body["pressure"] = st.Pressure
	}
	return body
}
