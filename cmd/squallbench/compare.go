package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// compareTolerance is how much a gated metric may regress between two
// bench JSON files before the compare fails: 15%.
const compareTolerance = 0.15

// compareMain implements `squallbench compare old.json new.json` — the
// first slice of the ROADMAP bench-suite item. It walks both files'
// nested metrics and fails (exit 1) when any gated metric regresses by
// more than compareTolerance against the checked-in baseline.
//
// Gated metrics are the machine-portable ones: dimensionless ratios
// (keys ending in `_x` — speedups and reduction factors, higher is
// better) and allocation counts (`allocs_per_*`, deterministic for a
// given binary, lower is better). Absolute times (`*_ms`, `ns_per_*`,
// `*_ns`) vary with the host, so they are printed for context but never
// gate — the `_x` ratios already encode the same comparisons
// host-relatively.
func compareMain(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: squallbench compare old.json new.json")
		os.Exit(2)
	}
	oldV := loadBenchJSON(args[0])
	newV := loadBenchJSON(args[1])
	var rows []compareRow
	collectCompare("", oldV, newV, &rows)
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "compare: no shared numeric metrics between %s and %s\n", args[0], args[1])
		os.Exit(2)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].path < rows[j].path })

	header(fmt.Sprintf("Bench compare: %s -> %s (%.0f%% tolerance on gated metrics)", args[0], args[1], 100*compareTolerance))
	fmt.Printf("  %-52s %14s %14s %9s  %s\n", "metric", "old", "new", "delta", "verdict")
	failed := 0
	for _, r := range rows {
		verdict := ""
		switch {
		case !r.gated:
			verdict = "info"
		case r.regressed:
			verdict = "FAIL"
			failed++
		default:
			verdict = "ok"
		}
		fmt.Printf("  %-52s %14.3f %14.3f %8.1f%%  %s\n", r.path, r.old, r.new, 100*r.delta, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "compare: FAIL: %d metric(s) regressed more than %.0f%% vs %s\n", failed, 100*compareTolerance, args[0])
		os.Exit(1)
	}
	fmt.Printf("  all %d gated metrics within %.0f%% of baseline\n", countGated(rows), 100*compareTolerance)
}

type compareRow struct {
	path      string
	old, new  float64
	delta     float64 // signed relative change, positive = metric went up
	gated     bool
	regressed bool
}

func countGated(rows []compareRow) int {
	n := 0
	for _, r := range rows {
		if r.gated {
			n++
		}
	}
	return n
}

func loadBenchJSON(path string) any {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		os.Exit(2)
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		fmt.Fprintf(os.Stderr, "compare: %s: %v\n", path, err)
		os.Exit(2)
	}
	return v
}

// collectCompare walks old and new in lockstep, recording every numeric
// leaf present in both. Keys only one side has are skipped: bench schemas
// grow across PRs and a compare must work against older baselines.
func collectCompare(path string, oldV, newV any, rows *[]compareRow) {
	switch o := oldV.(type) {
	case map[string]any:
		n, ok := newV.(map[string]any)
		if !ok {
			return
		}
		for k, ov := range o {
			if nv, ok := n[k]; ok {
				collectCompare(joinPath(path, k), ov, nv, rows)
			}
		}
	case []any:
		n, ok := newV.([]any)
		if !ok {
			return
		}
		for i := range o {
			if i < len(n) {
				collectCompare(fmt.Sprintf("%s[%d]", path, i), o[i], n[i], rows)
			}
		}
	case float64:
		n, ok := newV.(float64)
		if !ok {
			return
		}
		r := compareRow{path: path, old: o, new: n}
		if o != 0 {
			r.delta = (n - o) / math.Abs(o)
		}
		switch classifyMetric(path) {
		case metricHigherBetter:
			r.gated = true
			r.regressed = o != 0 && r.delta < -compareTolerance
		case metricLowerBetter:
			r.gated = true
			// Alloc counts are integers per op: below 1 on both sides the
			// relative delta is rounding noise, not a regression.
			r.regressed = o != 0 && r.delta > compareTolerance && !(o < 1 && n < 1)
		case metricInfo:
			// shown, never gates
		default:
			return // counts, scales, identifiers: not a metric
		}
		*rows = append(*rows, r)
	}
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

type metricClass int

const (
	metricSkip metricClass = iota
	metricInfo
	metricLowerBetter
	metricHigherBetter
)

// classifyMetric decides how the leaf at path participates by its final
// key segment, matching the naming convention every BENCH_PR*.json uses.
func classifyMetric(path string) metricClass {
	key := path
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		key = key[i+1:]
	}
	switch {
	case strings.HasSuffix(key, "_x"):
		return metricHigherBetter
	case strings.HasPrefix(key, "allocs_per_"):
		return metricLowerBetter
	case strings.HasSuffix(key, "_ms"), strings.HasSuffix(key, "_ns"),
		strings.HasPrefix(key, "ns_per_"), strings.HasPrefix(key, "bytes_per_"):
		return metricInfo
	default:
		return metricSkip
	}
}
