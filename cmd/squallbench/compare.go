package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// compareTolerance is how much a gated metric may regress between two
// bench JSON files before the compare fails: 15%.
const compareTolerance = 0.15

// compareMain implements `squallbench compare old.json new.json` — the
// first slice of the ROADMAP bench-suite item. It walks both files'
// nested metrics and fails (exit 1) when any gated metric regresses by
// more than compareTolerance against the checked-in baseline, or when a
// gated metric from the baseline is missing from the new file (a dropped
// gate is a silent regression, not schema evolution).
//
// Gated metrics are the machine-portable ones: dimensionless ratios
// (keys ending in `_x` — speedups and reduction factors, higher is
// better) and allocation counts (`allocs_per_*`, deterministic for a
// given binary, lower is better). Absolute times (`*_ms`, `ns_per_*`,
// `*_ns`) vary with the host, so they are printed for context but never
// gate — the `_x` ratios already encode the same comparisons
// host-relatively. Metrics present only in the new file are listed as
// `new` for context: bench schemas grow across PRs.
func compareMain(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: squallbench compare old.json new.json")
		os.Exit(2)
	}
	os.Exit(compareFiles(args[0], args[1]))
}

// compareFiles runs the comparison and returns the process exit code:
// 0 clean, 1 gated regression, 2 unusable input.
func compareFiles(oldPath, newPath string) int {
	oldV, err := loadBenchJSON(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 2
	}
	newV, err := loadBenchJSON(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 2
	}
	var rows []compareRow
	collectCompare("", oldV, newV, &rows)
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "compare: no numeric metrics between %s and %s\n", oldPath, newPath)
		return 2
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].path < rows[j].path })

	header(fmt.Sprintf("Bench compare: %s -> %s (%.0f%% tolerance on gated metrics)", oldPath, newPath, 100*compareTolerance))
	fmt.Printf("  %-52s %14s %14s %9s  %s\n", "metric", "old", "new", "delta", "verdict")
	failed := 0
	for _, r := range rows {
		verdict := ""
		switch {
		case r.missingNew:
			verdict = "FAIL (missing)"
			failed++
		case r.missingOld:
			verdict = "new"
		case !r.gated:
			verdict = "info"
		case r.regressed:
			verdict = "FAIL"
			failed++
		default:
			verdict = "ok"
		}
		fmt.Printf("  %-52s %14s %14s %9s  %s\n",
			r.path, fmtMetric(r.old, r.missingOld), fmtMetric(r.new, r.missingNew), fmtDelta(r), verdict)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "compare: FAIL: %d metric(s) regressed more than %.0f%% or went missing vs %s\n", failed, 100*compareTolerance, oldPath)
		return 1
	}
	fmt.Printf("  all %d gated metrics within %.0f%% of baseline\n", countGated(rows), 100*compareTolerance)
	return 0
}

func fmtMetric(v float64, missing bool) string {
	if missing {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

func fmtDelta(r compareRow) string {
	switch {
	case r.missingOld || r.missingNew:
		return "-"
	case math.IsInf(r.delta, 1):
		return "+Inf%"
	case math.IsInf(r.delta, -1):
		return "-Inf%"
	default:
		return fmt.Sprintf("%.1f%%", 100*r.delta)
	}
}

type compareRow struct {
	path      string
	old, new  float64
	delta     float64 // signed relative change, positive = metric went up
	gated     bool
	regressed bool
	// missingNew marks a gated baseline metric absent from the new file (a
	// FAIL); missingOld marks a metric only the new file has (info).
	missingNew bool
	missingOld bool
}

func countGated(rows []compareRow) int {
	n := 0
	for _, r := range rows {
		if r.gated && !r.missingNew {
			n++
		}
	}
	return n
}

func loadBenchJSON(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// collectCompare walks old and new in lockstep, recording every numeric
// leaf present in both. A gated metric the baseline has but the new file
// lost is recorded as a failing row; non-gated one-sided keys become info
// rows (schemas grow across PRs, and a compare must still work against
// older baselines).
func collectCompare(path string, oldV, newV any, rows *[]compareRow) {
	switch o := oldV.(type) {
	case map[string]any:
		n, ok := newV.(map[string]any)
		if !ok {
			collectOneSided(path, oldV, rows, false)
			collectOneSided(path, newV, rows, true)
			return
		}
		for k, ov := range o {
			if nv, ok := n[k]; ok {
				collectCompare(joinPath(path, k), ov, nv, rows)
			} else {
				collectOneSided(joinPath(path, k), ov, rows, false)
			}
		}
		for k, nv := range n {
			if _, ok := o[k]; !ok {
				collectOneSided(joinPath(path, k), nv, rows, true)
			}
		}
	case []any:
		n, ok := newV.([]any)
		if !ok {
			collectOneSided(path, oldV, rows, false)
			collectOneSided(path, newV, rows, true)
			return
		}
		for i := range o {
			if i < len(n) {
				collectCompare(fmt.Sprintf("%s[%d]", path, i), o[i], n[i], rows)
			} else {
				collectOneSided(fmt.Sprintf("%s[%d]", path, i), o[i], rows, false)
			}
		}
		for i := len(o); i < len(n); i++ {
			collectOneSided(fmt.Sprintf("%s[%d]", path, i), n[i], rows, true)
		}
	case float64:
		n, ok := newV.(float64)
		if !ok {
			collectOneSided(path, oldV, rows, false)
			collectOneSided(path, newV, rows, true)
			return
		}
		r := compareRow{path: path, old: o, new: n}
		switch {
		case o != 0:
			r.delta = (n - o) / math.Abs(o)
		case n > 0:
			r.delta = math.Inf(1)
		case n < 0:
			r.delta = math.Inf(-1)
		}
		switch classifyMetric(path) {
		case metricHigherBetter:
			r.gated = true
			r.regressed = o != 0 && r.delta < -compareTolerance
		case metricLowerBetter:
			r.gated = true
			// Alloc counts are integers per op: below 1 on both sides the
			// relative delta is rounding noise, not a regression. A zero
			// baseline that grows to a whole alloc is a real one.
			r.regressed = r.delta > compareTolerance && !(o < 1 && n < 1)
		case metricInfo:
			// shown, never gates
		default:
			return // counts, scales, identifiers: not a metric
		}
		*rows = append(*rows, r)
	}
}

// collectOneSided records the numeric metrics under a subtree only one file
// has. From the baseline side, gated metrics become failing rows — a
// vanished gate must not pass silently; info metrics are dropped (they
// carry no comparison). From the new side every metric is an info row.
func collectOneSided(path string, v any, rows *[]compareRow, isNew bool) {
	switch t := v.(type) {
	case map[string]any:
		for k, sv := range t {
			collectOneSided(joinPath(path, k), sv, rows, isNew)
		}
	case []any:
		for i, sv := range t {
			collectOneSided(fmt.Sprintf("%s[%d]", path, i), sv, rows, isNew)
		}
	case float64:
		class := classifyMetric(path)
		if class == metricSkip {
			return
		}
		if isNew {
			*rows = append(*rows, compareRow{path: path, new: t, missingOld: true})
			return
		}
		if class == metricHigherBetter || class == metricLowerBetter {
			*rows = append(*rows, compareRow{path: path, old: t, gated: true, missingNew: true})
		}
	}
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

type metricClass int

const (
	metricSkip metricClass = iota
	metricInfo
	metricLowerBetter
	metricHigherBetter
)

// classifyMetric decides how the leaf at path participates by its final
// key segment, matching the naming convention every BENCH_PR*.json uses.
func classifyMetric(path string) metricClass {
	key := path
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		key = key[i+1:]
	}
	switch {
	case strings.HasSuffix(key, "_x"):
		return metricHigherBetter
	case strings.HasPrefix(key, "allocs_per_"):
		return metricLowerBetter
	case strings.HasSuffix(key, "_ms"), strings.HasSuffix(key, "_ns"),
		strings.HasPrefix(key, "ns_per_"), strings.HasPrefix(key, "bytes_per_"):
		return metricInfo
	default:
		return metricSkip
	}
}
