package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"squall"
	"squall/experiments"
	"squall/internal/datagen"
	"squall/internal/serve"
	"squall/internal/types"
)

// benchFileServe is where `-json serve` records the PR 9 numbers.
const benchFileServe = "BENCH_PR9.json"

// serveQueryRun is one registered query's outcome in the report.
type serveQueryRun struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Status string `json:"status"`
	Rows   int64  `json:"result_rows"`
	Err    string `json:"error,omitempty"`
}

type serveReport struct {
	PR        int    `json:"pr"`
	Benchmark string `json:"benchmark"`
	Lineitems int64  `json:"lineitems"`
	QueriesK  int    `json:"queries_k"`

	// Shared-scan accounting across every source: a private-per-query design
	// encodes each source row once per query that scans it; the engine
	// encodes it once, period.
	SourceRows       int64               `json:"source_rows"`
	SourceEncodes    int64               `json:"source_encodes"`
	PrivateEncodes   int64               `json:"private_design_encodes"`
	EncodesPerRow    float64             `json:"encodes_per_source_row"`
	Sources          []serve.SourceStats `json:"sources"`
	SharedEngineMS   float64             `json:"shared_engine_ms"`
	StandaloneSumMS  float64             `json:"standalone_total_ms"`
	RegisteredRuns   []serveQueryRun     `json:"registered_runs"`
	RejectedRegister string              `json:"rejected_registration"`

	// The CI gates. ServeBagEqualX: every one of the K shared-scan queries is
	// bag-equal to its standalone run. ServeEncodeOnceX: source rows are
	// wire-encoded once regardless of fan-out (rows/encodes). ServeScanShareX:
	// encodes a private-per-query design would have performed divided by the
	// engine's (the scan-sharing reduction, ~K on the hot source).
	// ServeIsolationX: the deliberately failing query settles as failed while
	// every sibling stays bag-equal. ServeAdmissionX: the over-budget
	// registration is rejected with the typed budget error while the same
	// tenant's admitted query runs to completion.
	ServeBagEqualX  float64 `json:"serve_bag_equal_x"`
	ServeEncodeOnce float64 `json:"serve_encode_once_x"`
	ServeScanShareX float64 `json:"serve_scan_share_x"`
	ServeIsolationX float64 `json:"serve_isolation_x"`
	ServeAdmissionX float64 `json:"serve_admission_x"`
}

// serveFailOp errors after `after` tuples — injected into one registered
// query's Pre to prove per-query fault isolation on a shared scan.
type serveFailOp struct {
	after int64
	seen  atomic.Int64
}

func (o *serveFailOp) Apply(t types.Tuple) ([]types.Tuple, error) {
	if o.seen.Add(1) > o.after {
		return nil, errors.New("injected query failure")
	}
	return []types.Tuple{t}, nil
}

// serveCount rewrites a builder query's aggregate to COUNT: integer group
// counts make the shared-vs-standalone differential exact (float SUMs would
// drift with arrival order across parallel tasks).
func serveCount(q *squall.JoinQuery) *squall.JoinQuery {
	q.Agg.Kind = squall.Count
	q.Agg.Sum = nil
	return q
}

// serveShared strips the private spouts so registration binds every relation
// to the engine's shared scan of the same name.
func serveShared(q *squall.JoinQuery) *squall.JoinQuery {
	for i := range q.Sources {
		q.Sources[i].Spout = nil
	}
	return q
}

// serveBench is the PR 9 experiment: K=8 continuous queries registered on
// one serving engine share five physical TPC-H scans; each must stay
// bag-equal to its standalone run while every source row is wire-encoded
// once instead of once per query. A ninth query carries an erroring
// pipeline (isolation gate) and a capped tenant exercises admission
// control alongside the healthy fleet.
func serveBench() {
	n := int64(60_000)
	if *smoke {
		n = 12_000
	}
	const k = 8
	const machines = 4
	header(fmt.Sprintf("Multi-query serving: %d shared-scan queries over TPC-H (%d lineitems, %dJ each)", k, n, machines))

	gen := datagen.NewTPCH(42, n, 0)
	opt := squall.Options{Seed: 9}
	mk := func(i int) *squall.JoinQuery {
		if i%2 == 0 {
			return serveCount(experiments.TPCH9Partial(gen, squall.HashHypercube, squall.DBToaster, machines))
		}
		return serveCount(experiments.Q3(gen, squall.HashHypercube, squall.DBToaster, machines))
	}

	eng := squall.NewEngine(squall.EngineOptions{Run: opt})
	eng.AddSource("LINEITEM", gen.LineitemSpout(), gen.Lineitems)
	eng.AddSource("PARTSUPP", gen.PartSuppSpout(), gen.PartSupps())
	eng.AddSource("PART", gen.PartSpout(), gen.Parts())
	eng.AddSource("CUSTOMER", gen.CustomerSpout(), gen.Customers())
	eng.AddSource("ORDERS", gen.OrdersSpout(), gen.Orders())

	fatal := func(stage string, err error) {
		fmt.Fprintf(os.Stderr, "serve: %s: %v\n", stage, err)
		os.Exit(1)
	}

	// tapCount tracks how many healthy queries scan each source: a
	// private-per-query design wire-encodes every source row once per
	// scanning query, the engine once, period.
	tapCount := make(map[string]int)
	noteScans := func(q *squall.JoinQuery) {
		for _, s := range q.Sources {
			tapCount[s.Name]++
		}
	}

	handles := make([]*squall.ServedQuery, k)
	for i := 0; i < k; i++ {
		q := mk(i)
		noteScans(q)
		sq, err := eng.Register(squall.RegisterRequest{
			Tenant: "main", ID: fmt.Sprintf("Q%d", i), Query: serveShared(q),
		})
		if err != nil {
			fatal(fmt.Sprintf("register Q%d", i), err)
		}
		handles[i] = sq
	}

	// The isolation probe: same shape as the fleet, but its ORDERS pipeline
	// errors after 100 tuples. It must settle failed without disturbing the
	// shared scan its eight siblings are riding.
	failQ := serveShared(mk(1))
	failQ.Sources[1].Pre = append(failQ.Sources[1].Pre, &serveFailOp{after: 100})
	failSQ, err := eng.Register(squall.RegisterRequest{Tenant: "chaos", ID: "QFAIL", Query: failQ})
	if err != nil {
		fatal("register QFAIL", err)
	}

	// Admission control: tenant "capped" may hold one query. The first
	// registration is admitted and must complete; the second is rejected with
	// the typed budget error before it touches any shared source.
	eng.SetTenantBudget("capped", serve.Budget{MaxQueries: 1})
	capQ := mk(1)
	noteScans(capQ)
	capSQ, err := eng.Register(squall.RegisterRequest{Tenant: "capped", ID: "QCAP", Query: serveShared(capQ)})
	if err != nil {
		fatal("register QCAP", err)
	}
	_, rejErr := eng.Register(squall.RegisterRequest{Tenant: "capped", ID: "QCAP2", Query: serveShared(mk(0))})
	admissionOK := errors.Is(rejErr, serve.ErrBudgetExceeded)
	var be *serve.BudgetError
	admissionOK = admissionOK && errors.As(rejErr, &be)

	start := time.Now()
	eng.Start()
	eng.Drain()
	sharedMS := float64(time.Since(start).Microseconds()) / 1000

	stats := eng.Stats()
	var srcRows, srcEncodes, privateEncodes int64
	for _, s := range stats.Sources {
		srcRows += s.Rows
		srcEncodes += s.Encodes
		privateEncodes += s.Rows * int64(tapCount[s.Name])
	}

	// Standalone oracle: the same K queries with their private spouts, run
	// sequentially. Each shared run must be bag-equal to its oracle.
	bagEqual := true
	var standaloneMS float64
	runs := make([]serveQueryRun, 0, k+2)
	for i := 0; i < k; i++ {
		res, err := handles[i].Wait()
		run := serveQueryRun{ID: handles[i].ID, Tenant: handles[i].Tenant, Status: handles[i].Status().String()}
		if err != nil {
			run.Err = err.Error()
			bagEqual = false
			runs = append(runs, run)
			continue
		}
		run.Rows = res.RowCount
		t0 := time.Now()
		oracle, err := mk(i).Run(opt)
		standaloneMS += float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			fatal(fmt.Sprintf("standalone Q%d", i), err)
		}
		if res.RowCount != oracle.RowCount || bagHash(res.Rows) != bagHash(oracle.Rows) {
			run.Err = "diverged from standalone run"
			bagEqual = false
		}
		runs = append(runs, run)
	}

	failRes, failErr := failSQ.Wait()
	isolationOK := failErr != nil && failSQ.Status() == squall.QueryFailed && bagEqual
	failRun := serveQueryRun{ID: "QFAIL", Tenant: "chaos", Status: failSQ.Status().String()}
	if failErr != nil {
		failRun.Err = failErr.Error()
	} else if failRes != nil {
		failRun.Rows = failRes.RowCount
	}
	runs = append(runs, failRun)

	capRes, capErr := capSQ.Wait()
	capRun := serveQueryRun{ID: "QCAP", Tenant: "capped", Status: capSQ.Status().String()}
	if capErr != nil {
		capRun.Err = capErr.Error()
		admissionOK = false
	} else {
		capRun.Rows = capRes.RowCount
		capOracle, err := mk(1).Run(opt)
		if err != nil {
			fatal("standalone QCAP", err)
		}
		admissionOK = admissionOK && bagHash(capRes.Rows) == bagHash(capOracle.Rows)
	}
	runs = append(runs, capRun)

	report := serveReport{
		PR: 9,
		Benchmark: fmt.Sprintf("%d shared-scan queries + 1 failing + capped tenant on one serving engine (%d lineitems, %dJ)",
			k, n, machines),
		Lineitems: n, QueriesK: k,
		SourceRows: srcRows, SourceEncodes: srcEncodes,
		PrivateEncodes: privateEncodes,
		Sources:        stats.Sources,
		SharedEngineMS: sharedMS, StandaloneSumMS: standaloneMS,
		RegisteredRuns: runs,
	}
	if rejErr != nil {
		report.RejectedRegister = rejErr.Error()
	}
	if srcEncodes > 0 {
		report.EncodesPerRow = float64(srcEncodes) / float64(srcRows)
		report.ServeScanShareX = float64(privateEncodes) / float64(srcEncodes)
		if srcEncodes == srcRows {
			report.ServeEncodeOnce = 1
		}
	}
	if bagEqual {
		report.ServeBagEqualX = 1
	}
	if isolationOK {
		report.ServeIsolationX = 1
	}
	if admissionOK {
		report.ServeAdmissionX = 1
	}

	fmt.Printf("  %-8s %-8s %-10s %10s  %s\n", "query", "tenant", "status", "rows", "note")
	for _, r := range runs {
		fmt.Printf("  %-8s %-8s %-10s %10d  %s\n", r.ID, r.Tenant, r.Status, r.Rows, r.Err)
	}
	fmt.Printf("  shared engine %.1fms for %d queries; %d standalone runs %.1fms total\n",
		sharedMS, k, k, standaloneMS)
	fmt.Printf("  source rows %d wire-encoded %d times (%.3f/row); private design would encode %d (%.1fx more)\n",
		srcRows, srcEncodes, report.EncodesPerRow, privateEncodes, report.ServeScanShareX)

	ok := true
	check := func(x float64, msg string) {
		if x != 1 {
			fmt.Fprintf(os.Stderr, "  FAIL: %s\n", msg)
			ok = false
		}
	}
	check(report.ServeBagEqualX, "a shared-scan query diverged from its standalone run")
	check(report.ServeEncodeOnce, "shared sources re-encoded rows (encodes != rows)")
	check(report.ServeIsolationX, "the failing query was not isolated (or poisoned its siblings)")
	check(report.ServeAdmissionX, "admission control failed (typed rejection or the admitted query broke)")
	if report.ServeScanShareX < 2 {
		fmt.Fprintf(os.Stderr, "  FAIL: scan sharing saved only %.2fx encodes\n", report.ServeScanShareX)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileServe, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileServe, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileServe)
	}
}
