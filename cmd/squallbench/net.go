package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"squall"
	"squall/internal/clusterjobs"
	"squall/internal/enginetest"
)

// benchFileNet is where `-json net` records the PR 7 numbers.
const benchFileNet = "BENCH_PR7.json"

const (
	// netWorkerEnv re-executes this binary as a squalld-style worker: set,
	// the process listens on a loopback port, prints it and serves cluster
	// sessions until killed.
	netWorkerEnv  = "SQUALLBENCH_NET_WORKER"
	netAddrPrefix = "SQUALLBENCH_WORKER_ADDR "
)

// maybeNetWorker hijacks the process when it was spawned as a bench worker.
// Called first thing in main, before flag parsing.
func maybeNetWorker() {
	if os.Getenv(netWorkerEnv) != "1" {
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "net worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", netAddrPrefix, ln.Addr())
	if err := squall.ServeWorker(ln); err != nil {
		fmt.Fprintf(os.Stderr, "net worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnNetWorker starts one worker process and returns its address; the
// returned func kills it.
func spawnNetWorker() (string, func(), error) {
	self, err := os.Executable()
	if err != nil {
		return "", nil, err
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), netWorkerEnv+"=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), netAddrPrefix); ok {
				addrCh <- addr
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr := <-addrCh:
		return addr, stop, nil
	case <-time.After(30 * time.Second):
		stop()
		return "", nil, fmt.Errorf("worker process never reported its address")
	}
}

// netRun is one configuration's measurement.
type netRun struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Rows      int64   `json:"result_rows"`
}

type netReport struct {
	PR        int    `json:"pr"`
	Benchmark string `json:"benchmark"`
	Tuples    int    `json:"tuples_per_rel"`
	Machines  int    `json:"machines"`
	Workers   int    `json:"worker_processes"`
	InProc    netRun `json:"in_process"`
	Cluster   netRun `json:"cluster_tcp"`
	Recovered netRun `json:"cluster_tcp_recovered_kill"`
	// HopOverheadPct is the TCP run's elapsed time over the in-process run,
	// minus one, in percent — the cost of crossing real sockets. Info only:
	// absolute overhead depends on the host's loopback stack.
	HopOverheadPct float64 `json:"hop_overhead_pct"`
	// BagEqualX / RecoveredX are the CI gates: 1 when the cluster run (and
	// the run with a remote joiner task killed and recovered) is bag-equal
	// to the in-process engine, 0 otherwise.
	BagEqualX  float64 `json:"bag_equal_x"`
	RecoveredX float64 `json:"recovered_x"`
}

// netBench is the PR 7 experiment: the same join once in-process and once as
// a real cluster — a coordinator plus two worker processes over loopback TCP
// — measuring what the socket hop costs and gating on the distributed run
// (including one with a remote joiner killed mid-run) staying bag-identical.
func netBench() {
	n := 40_000
	if *smoke {
		n = 8_000
	}
	const machines = 8
	header(fmt.Sprintf("Multi-node execution over TCP (2 relations x %d tuples, %dJ, 2 worker processes)", n, machines))

	params := clusterjobs.WorkloadParams{
		Seed: 7, NumRels: 2, RowsPerRel: n, KeyDomain: n / 6,
		Config: enginetest.EngineConfig{
			Scheme: squall.HashHypercube, Local: squall.Traditional,
			BatchSize: 64, Machines: machines, Seed: 7,
		},
	}

	runOnce := func(name string, cluster *squall.ClusterSpec, kill bool) (netRun, uint64, int64) {
		p := params
		p.Config.Kill = kill
		q, opts, err := p.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "net: %s: %v\n", name, err)
			os.Exit(1)
		}
		if cluster != nil {
			spec := *cluster
			spec.Params = p.Marshal()
			opts.Cluster = &spec
		}
		res, err := q.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "net: %s: %v\n", name, err)
			os.Exit(1)
		}
		if kill && res.Metrics.Recovery.Kills.Load() != 1 {
			fmt.Fprintf(os.Stderr, "net: %s: %d kills recovered, want 1\n", name, res.Metrics.Recovery.Kills.Load())
			os.Exit(1)
		}
		return netRun{
			Name:      name,
			ElapsedMS: float64(res.Metrics.Elapsed.Microseconds()) / 1000,
			Rows:      res.RowCount,
		}, bagHash(res.Rows), res.RowCount
	}

	// Best-of-reps on the timings; every rep must produce the identical bag.
	const reps = 3
	measure := func(name string, cluster *squall.ClusterSpec, kill bool) (netRun, uint64) {
		best, bestBag, rows := runOnce(name, cluster, kill)
		for i := 1; i < reps; i++ {
			r, bag, n := runOnce(name, cluster, kill)
			if bag != bestBag || n != rows {
				fmt.Fprintf(os.Stderr, "net: %s: nondeterministic result bag across reps\n", name)
				os.Exit(1)
			}
			if r.ElapsedMS < best.ElapsedMS {
				best.ElapsedMS = r.ElapsedMS
			}
		}
		return best, bestBag
	}

	inproc, inprocBag := measure("in-process", nil, false)

	var addrs []string
	for i := 0; i < 2; i++ {
		addr, stop, err := spawnNetWorker()
		if err != nil {
			fmt.Fprintf(os.Stderr, "net: spawning worker: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		addrs = append(addrs, addr)
	}
	spec := &squall.ClusterSpec{Workers: addrs, Job: clusterjobs.WorkloadJob}

	cluster, clusterBag := measure("cluster 3-process", spec, false)
	// The chaos point: the joiner lives on worker 1 under default placement,
	// so the injected kill and its recovery cross real process boundaries.
	recovered, recoveredBag := measure("cluster+remote-kill", spec, true)

	report := netReport{
		PR: 7,
		Benchmark: fmt.Sprintf("equi-join over loopback TCP: coordinator + 2 worker processes vs in-process (%d+%d tuples, %dJ)",
			n, n, machines),
		Tuples: n, Machines: machines, Workers: 2,
		InProc: inproc, Cluster: cluster, Recovered: recovered,
		HopOverheadPct: 100 * (cluster.ElapsedMS/inproc.ElapsedMS - 1),
	}
	if clusterBag == inprocBag && cluster.Rows == inproc.Rows {
		report.BagEqualX = 1
	}
	if recoveredBag == inprocBag && recovered.Rows == inproc.Rows {
		report.RecoveredX = 1
	}

	fmt.Printf("  %-22s %12s %12s\n", "run", "elapsed", "rows")
	for _, r := range []netRun{inproc, cluster, recovered} {
		fmt.Printf("  %-22s %10.1fms %12d\n", r.Name, r.ElapsedMS, r.Rows)
	}
	fmt.Printf("  TCP hop overhead: %+.1f%% end-to-end vs in-process (loopback, %d worker processes)\n",
		report.HopOverheadPct, report.Workers)

	ok := true
	if report.BagEqualX != 1 {
		fmt.Fprintf(os.Stderr, "  FAIL: cluster run is not bag-equal to the in-process engine\n")
		ok = false
	}
	if report.RecoveredX != 1 {
		fmt.Fprintf(os.Stderr, "  FAIL: cluster run with a killed remote joiner is not bag-equal to the in-process engine\n")
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileNet, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileNet, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileNet)
	}
}
