package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"squall/experiments"
	"squall/internal/dataflow"
	"squall/internal/datagen"
	"squall/internal/types"
	"squall/internal/wire"
)

// benchFile is where -json records the batched-transport numbers.
const benchFile = "BENCH_PR1.json"

// Figure5Runner runs one Figure 5 stage and returns its elapsed time.
type Figure5Runner = func() (time.Duration, error)

// stageResult is one Figure 5 stage measured at both transports.
type stageResult struct {
	Name       string  `json:"name"`
	Batch1NS   int64   `json:"batch1_ns"`
	BatchedNS  int64   `json:"batched_ns"`
	SpeedupX   float64 `json:"speedup_x"`
	Iterations int     `json:"iterations"`
}

// decodeResult compares per-tuple decode cost of the single-tuple path
// against the arena batch path on a 64-tuple frame.
type decodeResult struct {
	TuplesPerFrame      int     `json:"tuples_per_frame"`
	SingleNSPerTuple    float64 `json:"single_ns_per_tuple"`
	BatchNSPerTuple     float64 `json:"batch_ns_per_tuple"`
	SingleAllocsPerTup  float64 `json:"single_allocs_per_tuple"`
	BatchAllocsPerTup   float64 `json:"batch_allocs_per_tuple"`
	AllocReductionX     float64 `json:"alloc_reduction_x"`
	DecodeThroughputImp float64 `json:"decode_speedup_x"`
}

type benchReport struct {
	PR        int           `json:"pr"`
	Benchmark string        `json:"benchmark"`
	BatchSize int           `json:"batch_size"`
	Stages    []stageResult `json:"stages"`
	Decode    decodeResult  `json:"decode"`
}

// batchTransport measures what PR 1 bought: the network-hop and full-join
// stages of Figure 5 under the legacy per-tuple transport (batch=1) and the
// default batched transport, plus the decode allocation amortization.
func batchTransport() {
	header(fmt.Sprintf("Batched transport: batch=1 (legacy) vs batch=%d (default)", dataflow.DefaultBatchSize))
	// 4x the bench_test scale: longer runs amortize additive scheduling noise
	// on shared boxes, which otherwise inflates the (shorter) batched runs
	// relatively more and understates the ratio.
	gen := datagen.NewTPCH(42, 960_000, 0)
	// Each configuration is measured like `go test -bench` measures it: one
	// discarded warmup run, then the mean of `reps` consecutive runs, so GC
	// pacing settles per configuration.
	const reps = 3
	hotStages := []string{"RF+sel(int),network", "Full join"}

	stagesFor := func(batchSize int) map[string]Figure5Runner {
		out := map[string]Figure5Runner{}
		for _, stage := range experiments.Figure5StagesBatch(gen, 4, 1, batchSize) {
			out[stage.Name] = stage.Run
		}
		return out
	}
	legacyStages := stagesFor(1)
	batchedStages := stagesFor(dataflow.DefaultBatchSize)
	measure := func(run Figure5Runner, name string) time.Duration {
		// Collect before timing (as testing.B does between benchmarks) so one
		// configuration doesn't inherit the GC debt of the runs before it.
		runtime.GC()
		d, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "  %s ERROR: %v\n", name, err)
			os.Exit(1)
		}
		return d
	}
	mean := func(run Figure5Runner, name string) time.Duration {
		measure(run, name) // warmup, discarded
		var total time.Duration
		for rep := 0; rep < reps; rep++ {
			total += measure(run, name)
		}
		return total / reps
	}

	report := benchReport{
		PR:        1,
		Benchmark: fmt.Sprintf("batched tuple transport (Figure 5 hot stages at 1/250-scale TPC-H, mean of %d after warmup)", reps),
		BatchSize: dataflow.DefaultBatchSize,
	}
	fmt.Printf("  %-22s %12s %12s %9s\n", "stage", "batch=1", "batched", "speedup")
	for _, name := range hotStages {
		l := mean(legacyStages[name], name)
		b := mean(batchedStages[name], name)
		sp := float64(l) / float64(b)
		fmt.Printf("  %-22s %12v %12v %8.2fx\n", name, l.Round(time.Millisecond), b.Round(time.Millisecond), sp)
		report.Stages = append(report.Stages, stageResult{
			Name: name, Batch1NS: l.Nanoseconds(), BatchedNS: b.Nanoseconds(),
			SpeedupX: sp, Iterations: reps,
		})
	}

	report.Decode = measureDecode(dataflow.DefaultBatchSize)
	fmt.Printf("  decode (%d-tuple frame): %.1f -> %.2f allocs/tuple (%.1fx fewer), %.0f -> %.0f ns/tuple\n",
		report.Decode.TuplesPerFrame, report.Decode.SingleAllocsPerTup, report.Decode.BatchAllocsPerTup,
		report.Decode.AllocReductionX, report.Decode.SingleNSPerTuple, report.Decode.BatchNSPerTuple)

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFile, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFile)
	}
}

// measureDecode uses testing.Benchmark to count decode allocations for one
// frame of n typical TPC-H-ish tuples, per-tuple vs arena batch decoding.
func measureDecode(n int) decodeResult {
	batch := make([]types.Tuple, n)
	for i := range batch {
		batch[i] = types.Tuple{
			types.Int(int64(i * 1001)),
			types.Str("1996-01-02"),
			types.Float(float64(i) + 0.25),
			types.Str("BUILDING"),
		}
	}
	frame := wire.EncodeBatch(nil, batch)
	encs := make([][]byte, n)
	for i, t := range batch {
		encs[i] = wire.Encode(nil, t)
	}

	single := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range encs {
				if _, _, err := wire.Decode(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	var dec wire.BatchDecoder
	arena := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := dec.Decode(frame); err != nil {
				b.Fatal(err)
			}
		}
	})

	perTuple := float64(n)
	res := decodeResult{
		TuplesPerFrame:     n,
		SingleNSPerTuple:   float64(single.NsPerOp()) / perTuple,
		BatchNSPerTuple:    float64(arena.NsPerOp()) / perTuple,
		SingleAllocsPerTup: float64(single.AllocsPerOp()) / perTuple,
		BatchAllocsPerTup:  float64(arena.AllocsPerOp()) / perTuple,
	}
	if res.BatchAllocsPerTup > 0 {
		res.AllocReductionX = res.SingleAllocsPerTup / res.BatchAllocsPerTup
	}
	if res.BatchNSPerTuple > 0 {
		res.DecodeThroughputImp = res.SingleNSPerTuple / res.BatchNSPerTuple
	}
	return res
}
