// squallbench regenerates the paper's tables and figures as text tables.
//
//	go run ./cmd/squallbench [-json] [-smoke] [figure5|figure6|figure7|figure8|table1|table2|section5|batch|adapt|state|recover|exec|vec|net|chaos|serve|spill|all]
//	go run ./cmd/squallbench compare old.json new.json
//
// The extra `batch` experiment measures the PR 1 batched-transport speedup
// (network-hop and full-join stages at batch=1 vs the default batch size,
// plus decode allocation counts); with -json it also writes the results to
// BENCH_PR1.json for the perf trajectory.
//
// The `adapt` experiment (PR 2) runs the §5 drifting-ratio comparison of
// the live adaptive 1-Bucket operator against static matrices; with -json
// it writes BENCH_PR2.json, and with -smoke it runs at CI scale. It exits
// non-zero when the adaptive run fails the paper's claims, so CI uses it
// as an acceptance gate.
//
// The `state` experiment (PR 3) compares the compact slab-backed operator
// state against the pre-slab map layout — insert/probe throughput,
// bytes/stored-tuple and allocs/op at a million-tuple join, plus end-to-end
// full-join time; with -json it writes BENCH_PR3.json, and it exits
// non-zero when the compact layout stops paying for itself (the CI gate).
//
// The `recover` experiment (PR 4) reproduces the §5 fault-tolerance claim
// live: a replicated Random-Hypercube join with one joiner task killed
// mid-run, recovered once from a peer machine and once from a disk
// checkpoint. With -json it writes BENCH_PR4.json; it exits non-zero when a
// recovered run stops being bag-equal to the fault-free run, when peer
// recovery stops beating disk recovery, or when the recovered run's
// end-to-end overhead reaches 25% (the CI gate).
//
// The `exec` experiment (PR 5) compares the packed-row execution path
// (wire.Cursor views, lowered predicates, frame transport, blitted slab
// inserts) against the boxed tuple pipeline: per-tuple cost and allocations
// on the source -> join hot path, plus end-to-end full-join throughput at
// the 1M-tuple point. With -json it writes BENCH_PR5.json; it exits
// non-zero when packed execution stops paying for itself (the CI gate).
//
// The `vec` experiment (PR 6) compares vectorized frame execution (column
// footers, selection-vector kernels, group-wise frame folds) against the
// PR 5 packed-row baseline and the boxed tuple pipeline: per-tuple cost on
// the select/agg hot path plus the end-to-end aggregated full join in all
// three modes. With -json it writes BENCH_PR6.json; it exits non-zero when
// the vectorized path misses its speedup gate or any mode's results
// diverge (the CI gate).
//
// The `net` experiment (PR 7) runs the same join once in-process and once as
// a real cluster — this binary re-executed as two squalld-style worker
// processes joined to the coordinator over loopback TCP — measuring the
// end-to-end cost of the socket hop. With -json it writes BENCH_PR7.json; it
// exits non-zero when the distributed run (including one with a remote
// joiner task killed and recovered mid-run) stops being bag-equal to the
// in-process engine (the CI gate).
//
// The `chaos` experiment (PR 8) measures cluster survivability under
// injected faults: the same trickled join with a worker killed mid-run under
// each ClusterSpec policy (FateShare, Retry, Recover) plus a one-way link
// partition — detectable only by missed heartbeats — injected through
// transport.FaultSpec. With -json it writes BENCH_PR8.json; it exits
// non-zero when FateShare/Retry stop failing loudly on a dead worker, or
// when Recover (kill) and Retry (partition) stop converging bag-equal to
// the in-process oracle (the CI gate).
//
// The `serve` experiment (PR 9) registers K=8 continuous queries on one
// multi-query serving engine sharing five physical TPC-H scans — plus a
// deliberately failing query and a budget-capped tenant — and gates that
// every shared-scan query stays bag-equal to its standalone run, that
// source rows are wire-encoded once instead of once per query, that the
// failing query is isolated, and that admission control rejects the
// over-budget registration with the typed error. With -json it writes
// BENCH_PR9.json (the CI gate).
//
// The `spill` experiment (PR 10) runs the same 2-way join untiered, tiered
// with an uncapped ladder, and tiered with the resident cap at 50% of the
// uncapped peak — the degradation ladder must keep residency under the cap
// by spilling sealed, CRC-checksummed segments while the result stays
// bag-equal — plus a full-vs-incremental checkpoint comparison and a run
// with one spill segment deliberately corrupted, which must be quarantined
// and recovered through the PR 4 plane exactly-once. With -json it writes
// BENCH_PR10.json (the CI gate).
//
// `squallbench compare old.json new.json` diffs two bench JSON files and
// exits non-zero when a gated metric (speedup/reduction ratios, alloc
// counts) regresses more than 15% — CI runs it against the checked-in
// smoke baseline.
//
// Scales are thousandth-scale stand-ins for the paper's cluster runs; the
// expected shapes (orderings, rough ratios) are documented per experiment in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"squall"
	"squall/experiments"
	"squall/internal/dataflow"
	"squall/internal/datagen"
)

var allSchemes = []squall.SchemeKind{squall.HashHypercube, squall.RandomHypercube, squall.HybridHypercube}

var (
	jsonOut = flag.Bool("json", false, "write machine-readable results (BENCH_PR1.json / BENCH_PR2.json) for the batch and adapt experiments")
	smoke   = flag.Bool("smoke", false, "run the adapt/state experiments at CI smoke scale")
)

func main() {
	maybeNetWorker()
	flag.Parse()
	if flag.NArg() > 0 && flag.Arg(0) == "compare" {
		compareMain(flag.Args()[1:])
		return
	}
	if flag.NArg() > 1 {
		// A flag after the experiment name (e.g. `batch -json`) would be
		// silently dropped by flag.Parse; reject it instead.
		fmt.Fprintf(os.Stderr, "unexpected arguments %v: flags go before the experiment name, e.g. `squallbench -json batch`\n", flag.Args()[1:])
		os.Exit(2)
	}
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	run := map[string]func(){
		"figure5":  figure5,
		"figure6":  figure6,
		"figure7":  figure7,
		"figure8":  figure8,
		"table1":   tables12, // Tables 1 and 2 come from the same runs
		"table2":   tables12,
		"section5": section5,
		"batch":    batchTransport,
		"adapt":    adaptBench,
		"state":    stateBench,
		"recover":  recoverBench,
		"exec":     execBench,
		"vec":      vecBench,
		"net":      netBench,
		"chaos":    chaosBench,
		"serve":    serveBench,
		"spill":    spillBench,
	}
	if what == "all" {
		for _, name := range []string{"figure5", "figure6", "figure7", "table1", "figure8", "section5"} {
			run[name]()
		}
		return
	}
	f, ok := run[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; options: figure5 figure6 figure7 figure8 table1 table2 section5 batch adapt state recover exec vec net chaos serve spill all (or: compare old.json new.json)\n", what)
		os.Exit(2)
	}
	f()
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func figure5() {
	header("Figure 5: finding the bottleneck (Customer ⋈ Orders, 240k orders, 4J)")
	gen := datagen.NewTPCH(42, 960_000, 0)
	var base time.Duration
	for _, stage := range experiments.Figure5Stages(gen, 4, 1) {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			d, err := stage.Run()
			if err != nil {
				fmt.Printf("  %-22s ERROR: %v\n", stage.Name, err)
				return
			}
			if d < best {
				best = d
			}
		}
		if base == 0 {
			base = best
		}
		fmt.Printf("  %-22s %10v  (%.2fx RF)\n", stage.Name, best.Round(time.Millisecond), float64(best)/float64(base))
	}
	fmt.Println("  paper shape: sel(int) ~+1.6%, sel(date) ~+16%, network dominates, join cpu small")
}

func figure6() {
	header("Figure 6: 3-reachability — multi-way join vs pipeline of 2-way joins (8J)")
	w := datagen.NewWebGraph(3, 3000, 30000, 0)
	fmt.Printf("  %-28s %12s %14s %10s\n", "plan", "runtime", "sent tuples", "groups")
	for _, scheme := range []squall.SchemeKind{squall.HashHypercube, squall.HybridHypercube} {
		res, err := experiments.Reachability3(w, scheme, squall.DBToaster, 8).Run(squall.Options{Seed: 1})
		if err != nil {
			fmt.Printf("  multiway %v ERROR: %v\n", scheme, err)
			return
		}
		fmt.Printf("  %-28s %12v %14d %10d\n", "Multiway-"+scheme.String(),
			res.Metrics.Elapsed.Round(time.Millisecond), res.Metrics.TotalSent(), res.RowCount)
	}
	pres, err := experiments.Reachability3Pipeline(w, squall.DBToaster, 8, 1)
	if err != nil {
		fmt.Printf("  pipeline ERROR: %v\n", err)
		return
	}
	fmt.Printf("  %-28s %12v %14d %10d\n", "Pipeline of 2-way joins",
		pres.Metrics.Elapsed.Round(time.Millisecond), pres.TotalSent, int64(len(pres.Rows)))
	fmt.Println("  paper shape: multiway ships less (132.6M vs 160.6M) and runs 1.43x faster")
}

func fig7cases() []struct {
	name      string
	mk        func(squall.SchemeKind) *squall.JoinQuery
	memBudget int
} {
	gen10 := datagen.NewTPCH(42, 60_000, 2)
	gen80 := datagen.NewTPCH(43, 480_000, 2)
	web := experiments.WebAnalyticsConfig{Seed: 5, Hosts: 20000, Arcs: 60000, InS: 1.1, OutS: 1.5}
	return []struct {
		name      string
		mk        func(squall.SchemeKind) *squall.JoinQuery
		memBudget int
	}{
		{"TPCH9-Partial 10G/8J", func(s squall.SchemeKind) *squall.JoinQuery {
			return experiments.TPCH9Partial(gen10, s, squall.DBToaster, 8)
		}, 0},
		// 32 MiB per task ≈ a blade's share at thousandth scale: fits the
		// Hybrid's balanced tuple-level state, not the Hash heavy task's.
		{"TPCH9-Partial 80G/100J", func(s squall.SchemeKind) *squall.JoinQuery {
			return experiments.TPCH9Partial(gen80, s, squall.DBToaster, 100)
		}, 32 << 20},
		{"WebAnalytics 40J", func(s squall.SchemeKind) *squall.JoinQuery {
			return experiments.WebAnalytics(web, s, squall.DBToaster, 40)
		}, 0},
	}
}

func figure7() {
	header("Figure 7: hypercube scheme comparison (runtime)")
	for _, c := range fig7cases() {
		fmt.Printf("  %s\n", c.name)
		for _, scheme := range allSchemes {
			q := c.mk(scheme)
			opts := squall.Options{Seed: 2}
			if c.memBudget > 0 {
				// The paper's blades have fixed RAM; tuple-level DBToaster
				// views grow with received load, so the skewed Hash run
				// exhausts its budget at 80G.
				q.ForceDeltaJoin = true
				opts.MemLimitPerTask = c.memBudget
			}
			res, err := q.Run(opts)
			if err != nil {
				fmt.Printf("    %-18s %12s (%v)\n", scheme, "OVERFLOW", err)
				continue
			}
			fmt.Printf("    %-18s %12v  scheme %v\n", scheme,
				res.Metrics.Elapsed.Round(time.Millisecond), res.Hypercube)
		}
	}
	fmt.Println("  paper shape: Hybrid fastest under skew; Hash overflows at 80G; Random pays replication")
}

func tables12() {
	header("Tables 1 & 2: load per machine and replication factor")
	fmt.Printf("  %-24s %-18s %12s %12s %8s %8s\n", "query", "scheme", "maxload", "avgload", "skew", "repl")
	for _, c := range fig7cases() {
		for _, scheme := range allSchemes {
			res, err := c.mk(scheme).Run(squall.Options{Seed: 3})
			if err != nil {
				fmt.Printf("  %-24s %-18s %12s\n", c.name, scheme, "N/A (overflow)")
				continue
			}
			cm := res.Metrics.Component(res.JoinerComponent)
			fmt.Printf("  %-24s %-18s %12d %12.0f %8.2f %8.3f\n",
				c.name, scheme, cm.MaxLoad(), cm.AvgLoad(), cm.SkewDegree(),
				res.Metrics.ReplicationFactor(res.JoinerComponent))
		}
	}
	fmt.Println("  paper Table 1 (10G): Hash 38.5M/8.5M, Random 15.6M/15.6M, Hybrid 22.8M/8.6M")
	fmt.Println("  paper Table 2 (10G): Hash 1, Random 1.83, Hybrid 1.01; (80G): N/A, 6.19, 1.11")
}

func figure8() {
	header("Figure 8: DBToaster vs traditional local joins")
	gen := datagen.NewTPCH(42, 60_000, 2)
	google := &datagen.GoogleTrace{Seed: 11, TaskEvents: 120_000}
	cases := []struct {
		name string
		mk   func(squall.LocalJoinKind) *squall.JoinQuery
	}{
		{"TPCH9-Partial 10G/8J", func(l squall.LocalJoinKind) *squall.JoinQuery {
			return experiments.TPCH9Partial(gen, squall.HybridHypercube, l, 8)
		}},
		{"TPC-H Q3 10G/8J", func(l squall.LocalJoinKind) *squall.JoinQuery {
			return experiments.Q3(gen, squall.HybridHypercube, l, 8)
		}},
		{"Google TaskCount 8J", func(l squall.LocalJoinKind) *squall.JoinQuery {
			return experiments.GoogleTaskCount(google, squall.HybridHypercube, l, 8)
		}},
	}
	w := datagen.NewWebGraph(3, 3000, 30000, 0)
	cases = append(cases, struct {
		name string
		mk   func(squall.LocalJoinKind) *squall.JoinQuery
	}{"3-Reachability 8J (high fan-out)", func(l squall.LocalJoinKind) *squall.JoinQuery {
		return experiments.Reachability3(w, squall.HybridHypercube, l, 8)
	}})
	for _, c := range cases {
		fmt.Printf("  %s\n", c.name)
		var dbt time.Duration
		for _, local := range []squall.LocalJoinKind{squall.DBToaster, squall.Traditional} {
			res, err := c.mk(local).Run(squall.Options{Seed: 5})
			if err != nil {
				fmt.Printf("    %-14s ERROR: %v\n", local, err)
				continue
			}
			suffix := ""
			if local == squall.DBToaster {
				dbt = res.Metrics.Elapsed
			} else if dbt > 0 {
				suffix = fmt.Sprintf("  (%.1fx slower than DBToaster)", float64(res.Metrics.Elapsed)/float64(dbt))
			}
			fmt.Printf("    %-14s %12v%s\n", local, res.Metrics.Elapsed.Round(time.Millisecond), suffix)
		}
	}
	fmt.Println("  paper shape: ~10x on 8a/8b (extrapolated), 3-4x on 8c; the gap grows")
	fmt.Println("  with join fan-out — aggregate views collapse match enumeration")
}

func section5() {
	header("Section 5: hash imperfections (d distinct keys over p=8 machines, 500 key domains)")
	fmt.Printf("  %-8s %14s %14s %12s %12s %14s\n", "d", "hash maxkeys", "rr maxkeys", "hash skew", "rr skew", "hash subopt")
	for _, d := range []int{5, 7, 8, 15, 25} {
		r := experiments.HashImperfection(d, 8, 500)
		fmt.Printf("  %-8d %14.2f %14.0f %12.2f %12.2f %13.0f%%\n",
			d, r.HashMaxKeys, r.RoundRobinMaxKeys, r.HashSkew, r.RoundRobinSkew, 100*r.HashSuboptimal)
	}
	header("Section 5: temporal skew (sorted arrival, 64 bursts x 2000 tuples, 8 machines)")
	fmt.Printf("  %-22s %14s %14s\n", "grouping", "burst skew", "overall skew")
	h := experiments.TemporalSkew(dataflow.Fields(0), 64, 2000, 8, 1)
	s := experiments.TemporalSkew(dataflow.Shuffle(), 64, 2000, 8, 1)
	fmt.Printf("  %-22s %14.2f %14.2f\n", "hash (content-sens.)", h.BurstSkew, h.OverallSkew)
	fmt.Printf("  %-22s %14.2f %14.2f\n", "random (content-ins.)", s.BurstSkew, s.OverallSkew)
	fmt.Println("  paper claim: only content-insensitive schemes address temporal skew;")
	fmt.Println("  hash looks balanced overall (skew ~1) while serializing every burst (skew = p)")
}
