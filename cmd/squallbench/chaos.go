package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"squall"
	"squall/internal/clusterjobs"
	"squall/internal/enginetest"
	"squall/internal/transport"
)

// benchFileChaos is where `-json chaos` records the PR 8 numbers.
const benchFileChaos = "BENCH_PR8.json"

// chaosRun is one survivability measurement. A run that (deliberately)
// failed records the error string and zero rows.
type chaosRun struct {
	Name        string  `json:"name"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Rows        int64   `json:"result_rows"`
	Attempts    int     `json:"attempts,omitempty"`
	WorkersLost int     `json:"workers_lost,omitempty"`
	Err         string  `json:"error,omitempty"`
}

type chaosReport struct {
	PR        int    `json:"pr"`
	Benchmark string `json:"benchmark"`
	Tuples    int    `json:"tuples_per_rel"`
	Machines  int    `json:"machines"`
	Workers   int    `json:"worker_processes"`

	Oracle         chaosRun `json:"in_process_oracle"`
	FateKill       chaosRun `json:"fate_share_worker_kill"`
	RetryKill      chaosRun `json:"retry_worker_kill"`
	RecoverKill    chaosRun `json:"recover_worker_kill"`
	RetryPartition chaosRun `json:"retry_link_partition"`

	// The CI gates (1 = claim holds, 0 = regression): under FateShare and
	// Retry a killed worker must fail the run loudly (dead processes are
	// not transient), under Recover the same kill must converge bag-equal
	// to the in-process oracle on a later attempt, and under Retry a
	// one-way link partition — detectable only by missed heartbeats — must
	// be survived by a re-dispatch over fresh connections.
	FateKillFailsX  float64 `json:"fate_kill_fails_x"`
	RetryKillFailsX float64 `json:"retry_kill_fails_x"`
	RecoverKillX    float64 `json:"recover_kill_x"`
	RetryPartitionX float64 `json:"retry_partition_x"`

	// RecoveryMS is detection + re-dispatch time for the Recover kill run
	// (first failure to final success). Info only: dominated by the
	// configured heartbeat window and the surviving attempt's runtime.
	RecoveryMS float64 `json:"recovery_ms"`
}

// chaosWorkers brings up n in-process WorkerServers; Close() on a handle is
// the chaos kill (listener and every live session link drop at once, the
// in-process equivalent of SIGKILL on a squalld).
func chaosWorkers(n int) ([]string, []*squall.WorkerServer, error) {
	addrs := make([]string, n)
	srvs := make([]*squall.WorkerServer, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		srv := squall.NewWorkerServer(ln)
		go srv.Serve()
		addrs[i] = ln.Addr().String()
		srvs[i] = srv
	}
	return addrs, srvs, nil
}

// chaosBench is the PR 8 experiment: the same trickled join under injected
// faults — a worker killed mid-run under each survivability policy, and a
// one-way link partition under Retry — gating that FateShare/Retry fail
// loudly on a dead process while Recover and the partition retry converge
// bag-equal to the in-process oracle.
func chaosBench() {
	n, trickle, killAfter := 3_000, 1_200, 250*time.Millisecond
	if *smoke {
		n, trickle, killAfter = 900, 500, 100*time.Millisecond
	}
	const machines = 6
	header(fmt.Sprintf("Cluster survivability under injected faults (3 relations x %d tuples, %dJ, 2 workers)", n, machines))

	params := clusterjobs.WorkloadParams{
		Seed: 8, NumRels: 3, RowsPerRel: n, KeyDomain: n / 6,
		TrickleRows: trickle, TrickleEveryUS: 500,
		Config: enginetest.EngineConfig{
			Scheme: squall.HashHypercube, Local: squall.Traditional,
			BatchSize: 16, Machines: machines, Seed: 8,
		},
	}

	runCase := func(name string, spec *squall.ClusterSpec, killIdx int) (chaosRun, uint64, float64) {
		q, opts, err := params.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %s: %v\n", name, err)
			os.Exit(1)
		}
		var srvs []*squall.WorkerServer
		if spec != nil {
			s := *spec
			var addrs []string
			addrs, srvs, err = chaosWorkers(2)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %s: %v\n", name, err)
				os.Exit(1)
			}
			defer func() {
				for _, srv := range srvs {
					srv.Close()
				}
			}()
			s.Workers = addrs
			s.Job = clusterjobs.WorkloadJob
			s.Params = params.Marshal()
			opts.Cluster = &s
		}
		if killIdx >= 0 {
			victim := srvs[killIdx]
			go func() {
				time.Sleep(killAfter)
				victim.Close()
			}()
		}
		start := time.Now()
		res, err := q.Run(opts)
		run := chaosRun{Name: name, ElapsedMS: float64(time.Since(start).Microseconds()) / 1000}
		if err != nil {
			run.Err = err.Error()
			return run, 0, 0
		}
		run.Rows = res.RowCount
		run.Attempts = res.Metrics.Cluster.Attempts
		run.WorkersLost = res.Metrics.Cluster.WorkersLost
		return run, bagHash(res.Rows), float64(res.Metrics.Cluster.RecoveryNS) / 1e6
	}

	mkSpec := func(policy squall.ClusterPolicy) *squall.ClusterSpec {
		return &squall.ClusterSpec{
			Policy: policy, MaxAttempts: 2,
			Heartbeat: 100 * time.Millisecond, HeartbeatMiss: 3,
			Retry: transport.RetryPolicy{Attempts: 2, BaseDelay: 20 * time.Millisecond, DialTimeout: 5 * time.Second},
		}
	}

	oracle, oracleBag, _ := runCase("in-process oracle", nil, -1)
	if oracle.Err != "" {
		fmt.Fprintf(os.Stderr, "chaos: oracle run failed: %s\n", oracle.Err)
		os.Exit(1)
	}

	// Worker 1 hosts the joiner under default placement: killing it is the
	// worst case short of losing the coordinator.
	fateKill, _, _ := runCase("FateShare + worker kill", mkSpec(squall.FateShare), 0)
	retryKill, _, _ := runCase("Retry + worker kill", mkSpec(squall.Retry), 0)
	recoverKill, recoverBag, recoveryMS := runCase("Recover + worker kill", mkSpec(squall.Recover), 0)

	partSpec := mkSpec(squall.Retry)
	partSpec.Fault = &transport.FaultSpec{Seed: 8, PartitionAfter: 40, MaxConns: 1}
	retryPart, partBag, _ := runCase("Retry + one-way partition", partSpec, -1)

	report := chaosReport{
		PR: 8,
		Benchmark: fmt.Sprintf("trickled 3-way join under injected faults: worker kill per policy + one-way partition (%d tuples/rel, %dJ, 2 workers)",
			n, machines),
		Tuples: n, Machines: machines, Workers: 2,
		Oracle: oracle, FateKill: fateKill, RetryKill: retryKill,
		RecoverKill: recoverKill, RetryPartition: retryPart,
		RecoveryMS: recoveryMS,
	}
	if fateKill.Err != "" {
		report.FateKillFailsX = 1
	}
	if retryKill.Err != "" {
		report.RetryKillFailsX = 1
	}
	if recoverKill.Err == "" && recoverBag == oracleBag && recoverKill.Rows == oracle.Rows && recoverKill.Attempts >= 2 {
		report.RecoverKillX = 1
	}
	if retryPart.Err == "" && partBag == oracleBag && retryPart.Rows == oracle.Rows && retryPart.Attempts == 2 {
		report.RetryPartitionX = 1
	}

	fmt.Printf("  %-28s %12s %10s %9s %6s  %s\n", "run", "elapsed", "rows", "attempts", "lost", "outcome")
	for _, r := range []chaosRun{oracle, fateKill, retryKill, recoverKill, retryPart} {
		outcome := "ok"
		if r.Err != "" {
			outcome = "failed (expected for FateShare/Retry kills)"
		}
		fmt.Printf("  %-28s %10.1fms %10d %9d %6d  %s\n", r.Name, r.ElapsedMS, r.Rows, r.Attempts, r.WorkersLost, outcome)
	}

	ok := true
	check := func(x float64, msg string) {
		if x != 1 {
			fmt.Fprintf(os.Stderr, "  FAIL: %s\n", msg)
			ok = false
		}
	}
	check(report.FateKillFailsX, "FateShare swallowed a dead worker instead of failing loudly")
	check(report.RetryKillFailsX, "Retry reported success against a permanently dead worker")
	check(report.RecoverKillX, "Recover did not converge bag-equal to the oracle after the worker kill")
	check(report.RetryPartitionX, "the one-way partition was not survived by re-dispatch")
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileChaos, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileChaos, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileChaos)
	}
}
