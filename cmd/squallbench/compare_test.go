package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareCleanPass(t *testing.T) {
	body := `{"pr": 1, "speedup_x": 2.0, "elapsed_ms": 10.0, "allocs_per_op": 3}`
	if code := compareFiles(writeBench(t, "old.json", body), writeBench(t, "new.json", body)); code != 0 {
		t.Fatalf("identical files: exit %d, want 0", code)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	old := writeBench(t, "old.json", `{"speedup_x": 2.0}`)
	bad := writeBench(t, "new.json", `{"speedup_x": 1.0}`)
	if code := compareFiles(old, bad); code != 1 {
		t.Fatalf("halved speedup: exit %d, want 1", code)
	}
	ok := writeBench(t, "ok.json", `{"speedup_x": 1.9}`)
	if code := compareFiles(old, ok); code != 0 {
		t.Fatalf("within tolerance: exit %d, want 0", code)
	}
}

// A gated metric present in the baseline but gone from the new file is a
// dropped gate — it must fail, not silently narrow the comparison.
func TestCompareMissingGatedMetricFails(t *testing.T) {
	old := writeBench(t, "old.json", `{"speedup_x": 2.0, "other_x": 1.0}`)
	missing := writeBench(t, "new.json", `{"other_x": 1.0}`)
	if code := compareFiles(old, missing); code != 1 {
		t.Fatalf("dropped gated metric: exit %d, want 1", code)
	}
	// An info metric disappearing is fine: times come and go with the host.
	old2 := writeBench(t, "old2.json", `{"speedup_x": 2.0, "elapsed_ms": 12.0}`)
	noInfo := writeBench(t, "new2.json", `{"speedup_x": 2.0}`)
	if code := compareFiles(old2, noInfo); code != 0 {
		t.Fatalf("dropped info metric: exit %d, want 0", code)
	}
}

// Metrics only the new file has are context, never failures: schemas grow
// across PRs and older baselines must keep working.
func TestCompareNewMetricIsInfoOnly(t *testing.T) {
	old := writeBench(t, "old.json", `{"speedup_x": 2.0}`)
	grown := writeBench(t, "new.json", `{"speedup_x": 2.0, "net": {"bag_equal_x": 1.0, "elapsed_ms": 5}}`)
	if code := compareFiles(old, grown); code != 0 {
		t.Fatalf("grown schema: exit %d, want 0", code)
	}
}

// A zero baseline used to make any regression invisible (no relative delta).
func TestCompareZeroBaseline(t *testing.T) {
	old := writeBench(t, "old.json", `{"allocs_per_op": 0}`)
	leak := writeBench(t, "new.json", `{"allocs_per_op": 2}`)
	if code := compareFiles(old, leak); code != 1 {
		t.Fatalf("allocs 0 -> 2: exit %d, want 1", code)
	}
	noise := writeBench(t, "noise.json", `{"allocs_per_op": 0.4}`)
	if code := compareFiles(old, noise); code != 0 {
		t.Fatalf("allocs 0 -> 0.4 is rounding noise: exit %d, want 0", code)
	}
	// Higher-better from zero is an improvement, and the +Inf delta must not
	// poison the verdict.
	oldX := writeBench(t, "oldx.json", `{"speedup_x": 0}`)
	newX := writeBench(t, "newx.json", `{"speedup_x": 3.0}`)
	if code := compareFiles(oldX, newX); code != 0 {
		t.Fatalf("speedup 0 -> 3: exit %d, want 0", code)
	}
}

func TestCompareInfDeltaRows(t *testing.T) {
	var rows []compareRow
	collectCompare("", map[string]any{"allocs_per_op": 0.0}, map[string]any{"allocs_per_op": 2.0}, &rows)
	if len(rows) != 1 || !math.IsInf(rows[0].delta, 1) || !rows[0].regressed {
		t.Fatalf("allocs 0 -> 2: rows %+v, want one +Inf regressed row", rows)
	}
	if got := fmtDelta(rows[0]); got != "+Inf%" {
		t.Fatalf("delta renders %q, want +Inf%%", got)
	}
}

func TestCompareUnusableInputs(t *testing.T) {
	empty := writeBench(t, "empty.json", `{}`)
	if code := compareFiles(empty, empty); code != 2 {
		t.Fatalf("empty objects: exit %d, want 2", code)
	}
	malformed := writeBench(t, "bad.json", `{not json`)
	good := writeBench(t, "good.json", `{"speedup_x": 1.0}`)
	if code := compareFiles(malformed, good); code != 2 {
		t.Fatalf("malformed old: exit %d, want 2", code)
	}
	if code := compareFiles(good, filepath.Join(t.TempDir(), "nope.json")); code != 2 {
		t.Fatalf("missing new file: exit %d, want 2", code)
	}
}

// A metric whose shape changed (object vs number) is one-sided on both
// ends: the baseline's gated leaves under it must still fail.
func TestCompareShapeChange(t *testing.T) {
	old := writeBench(t, "old.json", `{"exec": {"speedup_x": 2.0}}`)
	reshaped := writeBench(t, "new.json", `{"exec": 7}`)
	if code := compareFiles(old, reshaped); code != 1 {
		t.Fatalf("gated metric lost to a shape change: exit %d, want 1", code)
	}
}
