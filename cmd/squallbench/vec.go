package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"squall"
	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/ops"
	"squall/internal/types"
	"squall/internal/vec"
	"squall/internal/wire"
)

// benchFileVec is where `-json vec` records the PR 6 numbers.
const benchFileVec = "BENCH_PR6.json"

// vecHotRows is the rows-per-frame on the measured edge: the engine's
// transport frames are smaller, but the kernels are size-oblivious and a
// bigger frame keeps the benchmark loop out of the timer overhead.
const vecHotRows = 1024

// vecModeResult measures one execution mode on the select/agg hot path:
// a frame arrives, a selection prunes it, survivors fold into a grouped
// SUM — per tuple.
type vecModeResult struct {
	Name           string  `json:"name"`
	NSPerTuple     float64 `json:"ns_per_tuple"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
}

type vecReport struct {
	PR        int           `json:"pr"`
	Benchmark string        `json:"benchmark"`
	Boxed     vecModeResult `json:"boxed"`
	Packed    vecModeResult `json:"packed"`
	Vec       vecModeResult `json:"vectorized"`
	// SpeedupVsPackedX is the acceptance metric: vectorized vs the PR 5
	// packed-row baseline on the select/agg hot path.
	SpeedupVsPackedX float64          `json:"hot_path_speedup_vs_packed_x"`
	SpeedupVsBoxedX  float64          `json:"hot_path_speedup_vs_boxed_x"`
	FullJoin         vecFullJoinBench `json:"full_join"`
}

type vecFullJoinBench struct {
	RTuples  int     `json:"r_tuples"`
	STuples  int     `json:"s_tuples"`
	BoxedMS  float64 `json:"boxed_ms"`
	PackedMS float64 `json:"packed_ms"`
	VecMS    float64 `json:"vectorized_ms"`
	// SpeedupVsPackedX compares end-to-end elapsed time against the
	// VecOff (PR 5) engine; the gate only requires no regression — the
	// join dominates this workload, the kernels only run on its edges.
	SpeedupVsPackedX float64 `json:"throughput_speedup_vs_packed_x"`
	Groups           int64   `json:"result_groups"`
}

// vecHotPred keeps roughly a fifth of each frame: selective enough that
// the kernel's branch-free pruning pays, dense enough that the agg fold
// downstream still sees real work.
func vecHotPred(keyDomain int) expr.Pred {
	return expr.Cmp{Op: expr.Lt, L: expr.C(0), R: expr.I(int64(keyDomain / 5))}
}

// measureVecHotPath benchmarks one mode of the consumer side of an engine
// edge: a transport frame of vecHotRows rows runs select -> grouped SUM.
// The producer-encoded frame is built once (every mode reads the same
// bytes; the vectorized mode reads the footered form its producers emit)
// so the numbers isolate per-tuple execution cost, not encoding.
func measureVecHotPath(mode string, keyDomain int) vecModeResult {
	rows := make([]types.Tuple, vecHotRows)
	for i := range rows {
		rows[i] = stateTuple(int64(i*2654435761%keyDomain), i)
	}
	pred := vecHotPred(keyDomain)
	bare := wire.EncodeBatch(nil, rows)
	footered := wire.AppendFooter(append([]byte(nil), bare...))

	res := testing.Benchmark(func(b *testing.B) {
		agg := ops.NewAgg([]expr.Expr{expr.C(0)}, ops.Sum, expr.C(2), false)
		if !agg.PackedCapable() {
			b.Fatal("col-ref agg must be packed-capable")
		}
		var run func() error
		switch mode {
		case "boxed":
			var dec wire.BatchDecoder
			run = func() error {
				out, _, err := dec.Decode(bare)
				if err != nil {
					return err
				}
				for _, t := range out {
					keep, err := pred.Eval(t)
					if err != nil {
						return err
					}
					if !keep {
						continue
					}
					if _, err := agg.Fold(t); err != nil {
						return err
					}
				}
				return nil
			}
		case "packed":
			ppred, ok := expr.CompilePred(pred)
			if !ok {
				b.Fatal("selection did not lower to a packed predicate")
			}
			var cur wire.Cursor
			run = func() error {
				_, _, err := wire.EachRow(bare, &cur, func([]byte) error {
					keep, err := ppred(&cur)
					if err != nil || !keep {
						return err
					}
					return agg.FoldRow(&cur)
				})
				return err
			}
		case "vectorized":
			vpred, ok := expr.CompileVecPred(pred)
			if !ok {
				b.Fatal("selection did not lower to a vectorized predicate")
			}
			view := &vec.FrameView{}
			run = func() error {
				if !view.Reset(footered) {
					return fmt.Errorf("footered frame rejected")
				}
				sel, ok, err := vpred(view, nil, view.All())
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("uniform frame defeated the kernel")
				}
				handled, err := agg.FoldFrame(view, sel)
				if err != nil {
					return err
				}
				if !handled {
					return fmt.Errorf("uniform frame fell back to the row fold")
				}
				return nil
			}
		default:
			b.Fatalf("unknown mode %q", mode)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n += vecHotRows {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return vecModeResult{
		Name:           mode,
		NSPerTuple:     float64(res.NsPerOp()),
		AllocsPerTuple: float64(res.AllocsPerOp()),
	}
}

// vecFullJoin runs the end-to-end aggregated full join — co-located
// selections, 2-way equi join, grouped SUM on top — through the engine in
// all three modes and requires the result bags to be identical.
func vecFullJoin(rn, sn int) vecFullJoinBench {
	g := stateJoinGraph()
	rRows := make([]types.Tuple, rn)
	for i := range rRows {
		rRows[i] = stateTuple(int64(i%(rn/4+1)), i)
	}
	sRows := make([]types.Tuple, sn)
	for i := range sRows {
		sRows[i] = stateTuple(int64(i%(rn/4+1)), i)
	}
	schema := func(name string) *types.Schema {
		return types.NewSchema(name,
			types.Column{Name: "key", Kind: types.KindInt},
			types.Column{Name: "date", Kind: types.KindString},
			types.Column{Name: "price", Kind: types.KindFloat},
			types.Column{Name: "segment", Kind: types.KindString},
		)
	}
	run := func(packed squall.PackedMode, vecMode squall.VecMode) (time.Duration, map[string]int) {
		q := &squall.JoinQuery{
			Graph:    g,
			Scheme:   squall.HybridHypercube,
			Machines: 8,
			Local:    squall.Traditional,
			Sources: []squall.Source{
				{Name: "R", Schema: schema("R"), Spout: dataflow.SliceSpout(rRows), Size: int64(rn),
					Pre: ops.Pipeline{ops.Select{P: execSelPred()}}},
				{Name: "S", Schema: schema("S"), Spout: dataflow.SliceSpout(sRows), Size: int64(sn),
					Pre: ops.Pipeline{ops.Select{P: execSelPred()}}},
			},
			Agg: &squall.AggSpec{
				GroupBy: []squall.ColRef{{Rel: 0, E: expr.C(0)}},
				Kind:    squall.Sum,
				Sum:     &squall.ColRef{Rel: 1, E: expr.C(2)},
			},
		}
		runtime.GC()
		res, err := q.Run(squall.Options{Seed: 7, PackedExec: packed, VecExec: vecMode})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vec: full join (%v/%v): %v\n", packed, vecMode, err)
			os.Exit(1)
		}
		bag := make(map[string]int, len(res.Rows))
		for _, r := range res.Rows {
			bag[r.Key()]++
		}
		return res.Metrics.Elapsed, bag
	}
	const reps = 3
	mean := func(packed squall.PackedMode, vecMode squall.VecMode) (time.Duration, map[string]int) {
		run(packed, vecMode) // warmup, discarded
		var total time.Duration
		var bag map[string]int
		for i := 0; i < reps; i++ {
			d, b := run(packed, vecMode)
			total += d
			bag = b
		}
		return total / reps, bag
	}
	boxedD, boxedBag := mean(squall.PackedOff, squall.VecDefault)
	packedD, packedBag := mean(squall.PackedOn, squall.VecOff)
	vecD, vecBag := mean(squall.PackedOn, squall.VecOn)
	for name, bag := range map[string]map[string]int{"packed": packedBag, "vectorized": vecBag} {
		if len(bag) != len(boxedBag) {
			fmt.Fprintf(os.Stderr, "vec: FAIL: %s groups diverge: boxed %d, %s %d\n", name, len(boxedBag), name, len(bag))
			os.Exit(1)
		}
		for k, n := range boxedBag {
			if bag[k] != n {
				fmt.Fprintf(os.Stderr, "vec: FAIL: %s result diverges from boxed on group %q\n", name, k)
				os.Exit(1)
			}
		}
	}
	return vecFullJoinBench{
		RTuples: rn, STuples: sn,
		BoxedMS:          float64(boxedD.Microseconds()) / 1000,
		PackedMS:         float64(packedD.Microseconds()) / 1000,
		VecMS:            float64(vecD.Microseconds()) / 1000,
		SpeedupVsPackedX: float64(packedD) / float64(vecD),
		Groups:           int64(len(vecBag)),
	}
}

// vecBench is the PR 6 experiment: vectorized frame execution (column
// footers, selection-vector kernels, group-wise frame folds) against the
// PR 5 packed-row baseline and the boxed tuple pipeline — per-tuple cost
// on the select/agg hot path, plus the end-to-end aggregated full join in
// all three modes. It exits non-zero when the vectorized path stops paying
// for itself (the CI gate): >= 1.8x over packed rows on the hot path at
// full scale (the smoke gate is looser to absorb CI noise), no end-to-end
// regression, and bit-identical results across all three modes.
func vecBench() {
	keyDomain := 100_000
	fullR, fullS := 750_000, 250_000
	hotGate, joinGate := 1.8, 0.9
	if *smoke {
		keyDomain = 10_000
		fullR, fullS = 24_000, 6_000
		hotGate, joinGate = 1.2, 0.8
	}
	header(fmt.Sprintf("Vectorized frame execution vs packed rows vs boxed tuples (%d-row frames, %d:%d full join)", vecHotRows, fullR, fullS))

	// Best of 3 per mode: the per-tuple numbers sit in the tens of
	// nanoseconds, where one scheduler hiccup shifts a single run by more
	// than the gate margin.
	best := func(mode string) vecModeResult {
		r := measureVecHotPath(mode, keyDomain)
		for rep := 1; rep < 3; rep++ {
			if next := measureVecHotPath(mode, keyDomain); next.NSPerTuple < r.NSPerTuple {
				r = next
			}
		}
		return r
	}
	boxed := best("boxed")
	packed := best("packed")
	vectorized := best("vectorized")

	fmt.Printf("  %-12s %14s %16s\n", "exec", "hot-path ns/t", "allocs/t")
	for _, r := range []vecModeResult{boxed, packed, vectorized} {
		fmt.Printf("  %-12s %14.1f %16.3f\n", r.Name, r.NSPerTuple, r.AllocsPerTuple)
	}

	report := vecReport{
		PR: 6,
		Benchmark: fmt.Sprintf("select/agg hot path over %d-row frames (key domain %d, 20%% selectivity, grouped SUM) and end-to-end aggregated full join (%d:%d, 8J)",
			vecHotRows, keyDomain, fullR, fullS),
		Boxed:            boxed,
		Packed:           packed,
		Vec:              vectorized,
		SpeedupVsPackedX: packed.NSPerTuple / vectorized.NSPerTuple,
		SpeedupVsBoxedX:  boxed.NSPerTuple / vectorized.NSPerTuple,
	}
	report.FullJoin = vecFullJoin(fullR, fullS)

	fmt.Printf("  hot path: %.2fx vs packed rows, %.2fx vs boxed\n", report.SpeedupVsPackedX, report.SpeedupVsBoxedX)
	fmt.Printf("  end-to-end agg full join (%d:%d, 8J): boxed %.1fms, packed %.1fms, vectorized %.1fms (%.2fx vs packed), %d groups\n",
		fullR, fullS, report.FullJoin.BoxedMS, report.FullJoin.PackedMS, report.FullJoin.VecMS,
		report.FullJoin.SpeedupVsPackedX, report.FullJoin.Groups)

	ok := true
	if report.SpeedupVsPackedX < hotGate {
		fmt.Fprintf(os.Stderr, "  FAIL: hot-path speedup %.2fx < %.2fx gate\n", report.SpeedupVsPackedX, hotGate)
		ok = false
	}
	if report.FullJoin.SpeedupVsPackedX < joinGate {
		fmt.Fprintf(os.Stderr, "  FAIL: full-join throughput %.2fx < %.2fx gate\n", report.FullJoin.SpeedupVsPackedX, joinGate)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileVec, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileVec, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileVec)
	}
}
