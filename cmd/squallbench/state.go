package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"squall"
	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/localjoin"
	"squall/internal/types"
)

// benchFileState is where `-json state` records the PR 3 numbers.
const benchFileState = "BENCH_PR3.json"

// stateModeResult measures one state layout at the Figure-8-style scale
// point: a 2-way equi join storing `tuples` R rows, probed by `probes` S
// rows (each matching ~1 stored row), TPC-H-ish 4-column tuples.
type stateModeResult struct {
	Name              string  `json:"name"`
	InsertNSPerTuple  float64 `json:"insert_ns_per_tuple"`
	ProbeNSPerTuple   float64 `json:"probe_ns_per_tuple"`
	InsertProbePerSec float64 `json:"insert_probe_tuples_per_sec"`
	MemBytesPerTuple  float64 `json:"memsize_bytes_per_stored_tuple"`
	HeapBytesPerTuple float64 `json:"heap_bytes_per_stored_tuple"`
	AllocsPerOp       float64 `json:"allocs_per_probe_op"`
}

type stateReport struct {
	PR              int                `json:"pr"`
	Benchmark       string             `json:"benchmark"`
	Tuples          int                `json:"stored_tuples"`
	Probes          int                `json:"probe_tuples"`
	Map             stateModeResult    `json:"map"`
	Slab            stateModeResult    `json:"slab"`
	BytesReductionX float64            `json:"bytes_per_tuple_reduction_x"`
	HeapReductionX  float64            `json:"heap_bytes_reduction_x"`
	ThroughputX     float64            `json:"insert_probe_speedup_x"`
	FullJoin        fullJoinStateBench `json:"full_join"`
}

type fullJoinStateBench struct {
	RTuples  int     `json:"r_tuples"`
	STuples  int     `json:"s_tuples"`
	MapMS    float64 `json:"map_ms"`
	SlabMS   float64 `json:"slab_ms"`
	SpeedupX float64 `json:"speedup_x"`
	Rows     int64   `json:"result_rows"`
}

// stateTuple synthesizes a TPC-H-ish row: int key, date string, float, tag.
func stateTuple(key int64, i int) types.Tuple {
	return types.Tuple{
		types.Int(key),
		types.Str(fmt.Sprintf("1996-%02d-%02d", 1+i%12, 1+i%28)),
		types.Float(float64(i%100000) + 0.25),
		types.Str("BUILDING"),
	}
}

// stateJoinGraph is the 2-way equi join R.key = S.key.
func stateJoinGraph() *expr.JoinGraph {
	return expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0))
}

// heapInUse forces a collection and returns live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// measureStateMode builds the join state of one layout and measures
// insert/probe cost, real memory per stored tuple and allocs per probe.
func measureStateMode(name string, mk func(*expr.JoinGraph) *localjoin.Traditional, n, probes int) stateModeResult {
	g := stateJoinGraph()

	// Heap baseline precedes input generation: the map layout retains the
	// generated tuples as its state while the slab layout copies them into
	// the arena and lets them die, so measuring (heap with state, inputs
	// dropped) - (heap before inputs) attributes exactly the live state to
	// each layout.
	base := heapInUse()
	rRows := make([]types.Tuple, n)
	for i := range rRows {
		rRows[i] = stateTuple(int64(i), i)
	}
	j := mk(g)
	start := time.Now()
	for _, t := range rRows {
		if err := j.Insert(0, t); err != nil {
			fmt.Fprintf(os.Stderr, "state: %v\n", err)
			os.Exit(1)
		}
	}
	insertDur := time.Since(start)
	for i := range rRows {
		rRows[i] = nil
	}
	heapPer := (float64(heapInUse()) - float64(base)) / float64(n)

	sRows := make([]types.Tuple, probes)
	for i := range sRows {
		sRows[i] = stateTuple(int64((i*2654435761)%n), i)
	}
	start = time.Now()
	matched := 0
	for _, t := range sRows {
		deltas, err := j.OnTuple(1, t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "state: %v\n", err)
			os.Exit(1)
		}
		matched += len(deltas)
	}
	probeDur := time.Since(start)
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "state: probe workload produced no matches")
		os.Exit(1)
	}

	memPer := float64(j.MemSize()) / float64(j.StoredTuples())

	// Allocs per probe+insert op at steady state (small fresh state so the
	// benchmark loop stays fast; the alloc profile is scale-free).
	alloc := testing.Benchmark(func(b *testing.B) {
		bj := mk(g)
		for i := 0; i < 10000; i++ {
			if err := bj.Insert(0, stateTuple(int64(i), i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bj.OnTuple(1, stateTuple(int64(i%10000), i)); err != nil {
				b.Fatal(err)
			}
		}
	})

	total := insertDur + probeDur
	res := stateModeResult{
		Name:              name,
		InsertNSPerTuple:  float64(insertDur.Nanoseconds()) / float64(n),
		ProbeNSPerTuple:   float64(probeDur.Nanoseconds()) / float64(probes),
		InsertProbePerSec: float64(n+probes) / total.Seconds(),
		MemBytesPerTuple:  memPer,
		HeapBytesPerTuple: heapPer,
		AllocsPerOp:       float64(alloc.AllocsPerOp()),
	}
	runtime.KeepAlive(j)
	return res
}

// fullJoinState runs the end-to-end 2-way full join through the engine in
// both state layouts and compares elapsed time and row counts.
func fullJoinState(rn, sn int) fullJoinStateBench {
	g := stateJoinGraph()
	rRows := make([]types.Tuple, rn)
	for i := range rRows {
		rRows[i] = stateTuple(int64(i%(rn/4+1)), i)
	}
	sRows := make([]types.Tuple, sn)
	for i := range sRows {
		sRows[i] = stateTuple(int64(i%(rn/4+1)), i)
	}
	run := func(legacy bool) (time.Duration, int64) {
		q := &squall.JoinQuery{
			Graph:    g,
			Scheme:   squall.HybridHypercube,
			Machines: 8,
			Local:    squall.Traditional,
			Sources: []squall.Source{
				{Name: "R", Spout: dataflow.SliceSpout(rRows), Size: int64(rn)},
				{Name: "S", Spout: dataflow.SliceSpout(sRows), Size: int64(sn)},
			},
		}
		runtime.GC()
		res, err := q.Run(squall.Options{Seed: 7, CollectLimit: 1, LegacyState: legacy})
		if err != nil {
			fmt.Fprintf(os.Stderr, "state: full join (legacy=%v): %v\n", legacy, err)
			os.Exit(1)
		}
		return res.Metrics.Elapsed, res.RowCount
	}
	const reps = 3
	mean := func(legacy bool) (time.Duration, int64) {
		run(legacy) // warmup, discarded
		var total time.Duration
		var rows int64
		for i := 0; i < reps; i++ {
			d, r := run(legacy)
			total += d
			rows = r
		}
		return total / reps, rows
	}
	mapD, mapRows := mean(true)
	slabD, slabRows := mean(false)
	if mapRows != slabRows {
		fmt.Fprintf(os.Stderr, "state: FAIL: full join rows diverge: map %d, slab %d\n", mapRows, slabRows)
		os.Exit(1)
	}
	return fullJoinStateBench{
		RTuples: rn, STuples: sn,
		MapMS:    float64(mapD.Microseconds()) / 1000,
		SlabMS:   float64(slabD.Microseconds()) / 1000,
		SpeedupX: float64(mapD) / float64(slabD),
		Rows:     slabRows,
	}
}

// stateBench is the PR 3 experiment: map-backed vs slab-backed operator
// state at a Figure-8-style million-tuple join. It exits non-zero when the
// compact layout stops paying for itself (CI smoke gate): bytes/stored-tuple
// must drop >= 2x and insert+probe throughput must not regress (>= 1.5x at
// the full million-tuple scale point, where GC pressure dominates the map
// layout; the smoke scale asserts no regression).
func stateBench() {
	n, probes := 1_000_000, 250_000
	fullR, fullS := 240_000, 60_000
	throughputGate := 1.5
	if *smoke {
		n, probes = 60_000, 15_000
		fullR, fullS = 24_000, 6_000
		throughputGate = 1.0
	}
	header(fmt.Sprintf("Compact slab state vs map state (2-way equi join, %d stored / %d probes)", n, probes))

	mapRes := measureStateMode("map", localjoin.NewTraditionalMap, n, probes)
	slabRes := measureStateMode("slab", localjoin.NewTraditional, n, probes)

	fmt.Printf("  %-6s %12s %12s %14s %11s %11s %9s\n",
		"state", "insert ns/t", "probe ns/t", "ins+prb t/s", "mem B/t", "heap B/t", "allocs/op")
	for _, r := range []stateModeResult{mapRes, slabRes} {
		fmt.Printf("  %-6s %12.0f %12.0f %14.0f %11.1f %11.1f %9.1f\n",
			r.Name, r.InsertNSPerTuple, r.ProbeNSPerTuple, r.InsertProbePerSec,
			r.MemBytesPerTuple, r.HeapBytesPerTuple, r.AllocsPerOp)
	}

	report := stateReport{
		PR: 3,
		Benchmark: fmt.Sprintf("slab-backed vs map-backed join state (%d stored tuples, %d probes, 4-col TPC-H-ish rows)",
			n, probes),
		Tuples: n, Probes: probes,
		Map: mapRes, Slab: slabRes,
		BytesReductionX: mapRes.MemBytesPerTuple / slabRes.MemBytesPerTuple,
		HeapReductionX:  mapRes.HeapBytesPerTuple / slabRes.HeapBytesPerTuple,
		ThroughputX:     slabRes.InsertProbePerSec / mapRes.InsertProbePerSec,
	}
	report.FullJoin = fullJoinState(fullR, fullS)

	fmt.Printf("  bytes/stored-tuple: %.1fx smaller (MemSize), %.1fx smaller (live heap)\n",
		report.BytesReductionX, report.HeapReductionX)
	fmt.Printf("  insert+probe throughput: %.2fx\n", report.ThroughputX)
	fmt.Printf("  end-to-end full join (%d:%d, 8J): map %.1fms, slab %.1fms (%.2fx), %d rows\n",
		fullR, fullS, report.FullJoin.MapMS, report.FullJoin.SlabMS, report.FullJoin.SpeedupX, report.FullJoin.Rows)

	ok := true
	if report.BytesReductionX < 2 {
		fmt.Fprintf(os.Stderr, "  FAIL: bytes/stored-tuple reduction %.2fx < 2x\n", report.BytesReductionX)
		ok = false
	}
	if report.ThroughputX < throughputGate {
		fmt.Fprintf(os.Stderr, "  FAIL: insert+probe throughput %.2fx < %.2fx gate\n", report.ThroughputX, throughputGate)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileState, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileState, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileState)
	}
}
