package main

import (
	"encoding/json"
	"fmt"
	"os"

	"squall/experiments"
)

// benchFileAdapt is where `-json adapt` records the PR 2 numbers.
const benchFileAdapt = "BENCH_PR2.json"

// adaptReport is the machine-readable result of the drift experiment.
type adaptReport struct {
	PR                     int                    `json:"pr"`
	Benchmark              string                 `json:"benchmark"`
	Machines               int                    `json:"machines"`
	RTuples                int                    `json:"r_tuples"`
	STuples                int                    `json:"s_tuples"`
	Runs                   []experiments.DriftRun `json:"runs"`
	AdaptiveVsWorstStaticX float64                `json:"adaptive_vs_worst_static_maxload_x"`
	AdaptiveVsBestStaticX  float64                `json:"adaptive_vs_best_static_maxload_x"`
}

// adaptBench runs the §5 drifting-ratio experiment: the live adaptive
// 1-Bucket operator against every power-of-two static matrix, on max
// per-task load. It exits non-zero if the adaptive run fails the paper's
// claim (>= 1 reshape, result parity, better than the worst static shape),
// so the CI smoke run doubles as an acceptance gate.
func adaptBench() {
	cfg := experiments.DriftConfig{Machines: 8, RTuples: 48_000, STuples: 3_000, KeyDomain: 4096, Seed: 9}
	if *smoke {
		cfg.RTuples, cfg.STuples, cfg.KeyDomain = 6_000, 400, 1024
	}
	header(fmt.Sprintf("Adaptive 1-Bucket under drifting |R|:|S| (%d:%d over %dJ)", cfg.RTuples, cfg.STuples, cfg.Machines))
	runs, err := experiments.AdaptiveDrift(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adapt: %v\n", err)
		os.Exit(1)
	}
	adaptive := runs[0]
	best, worst := runs[1], runs[1]
	fmt.Printf("  %-14s %7s %10s %10s %7s %9s %10s %11s %10s\n",
		"run", "matrix", "maxload", "avgload", "skew", "reshapes", "migrated", "mig bytes", "elapsed")
	for _, r := range runs {
		fmt.Printf("  %-14s %7s %10d %10.0f %7.2f %9d %10d %11d %8.1fms\n",
			r.Name, r.Matrix, r.MaxLoad, r.AvgLoad, r.Skew, r.Reshapes, r.MigratedTuples, r.MigratedBytes, r.ElapsedMS)
		if r.Name == adaptive.Name {
			continue
		}
		if r.MaxLoad < best.MaxLoad {
			best = r
		}
		if r.MaxLoad > worst.MaxLoad {
			worst = r
		}
	}
	report := adaptReport{
		PR: 2,
		Benchmark: fmt.Sprintf("live adaptive 1-Bucket vs static matrices under a drifting ratio (%d:%d, %d joiners)",
			cfg.RTuples, cfg.STuples, cfg.Machines),
		Machines:               cfg.Machines,
		RTuples:                cfg.RTuples,
		STuples:                cfg.STuples,
		Runs:                   runs,
		AdaptiveVsWorstStaticX: float64(worst.MaxLoad) / float64(adaptive.MaxLoad),
		AdaptiveVsBestStaticX:  float64(best.MaxLoad) / float64(adaptive.MaxLoad),
	}
	fmt.Printf("  adaptive vs worst static (%s): %.2fx lower max load; vs best static (%s): %.2fx\n",
		worst.Name, report.AdaptiveVsWorstStaticX, best.Name, report.AdaptiveVsBestStaticX)

	ok := true
	if adaptive.Reshapes < 1 {
		fmt.Fprintln(os.Stderr, "  FAIL: adaptive run never reshaped")
		ok = false
	}
	if adaptive.MigratedBytes <= 0 {
		fmt.Fprintln(os.Stderr, "  FAIL: adaptive run reported no migrated bytes")
		ok = false
	}
	for _, r := range runs[1:] {
		if r.Rows != adaptive.Rows {
			fmt.Fprintf(os.Stderr, "  FAIL: %s produced %d rows, adaptive %d\n", r.Name, r.Rows, adaptive.Rows)
			ok = false
		}
	}
	if adaptive.MaxLoad >= worst.MaxLoad {
		fmt.Fprintf(os.Stderr, "  FAIL: adaptive max load %d does not beat worst static %d\n", adaptive.MaxLoad, worst.MaxLoad)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileAdapt, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileAdapt, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileAdapt)
	}
}
