package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"squall"
	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/recovery"
	"squall/internal/slab"
	"squall/internal/types"
)

// benchFileSpill is where `-json spill` records the PR 10 numbers.
const benchFileSpill = "BENCH_PR10.json"

// spillRun is one configuration's measurement of the same 2-way join.
type spillRun struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Rows      int64   `json:"result_rows"`
	// PeakResidentKB is the pressure ladder's high-water resident total —
	// the number the under-cap gate checks (0 when the run had no ladder).
	// SpilledKB is the high-water on-disk total (current totals read zero
	// after run end, when finished tasks refund their charges).
	PeakResidentKB float64 `json:"peak_resident_kb,omitempty"`
	SpilledKB      float64 `json:"peak_spilled_kb,omitempty"`
	Spills         int64   `json:"spills,omitempty"`
	SegmentFaults  int64   `json:"segment_faults,omitempty"`
	ThrottleEvents int64   `json:"throttle_events,omitempty"`
	Checkpoints    int64   `json:"checkpoints,omitempty"`
	CheckpointKB   float64 `json:"checkpoint_kb,omitempty"`
	// SegmentRestoredKB counts sealed-segment blobs read back during a
	// post-fault restore (corrupt run only).
	SegmentRestoredKB float64 `json:"segment_restored_kb,omitempty"`
	RecoveredFaults   int64   `json:"recovered_faults,omitempty"`
}

type spillReport struct {
	PR        int    `json:"pr"`
	Benchmark string `json:"benchmark"`
	RTuples   int    `json:"r_tuples"`
	STuples   int    `json:"s_tuples"`
	Machines  int    `json:"machines"`
	// CapKB is the resident budget of the capped run: half the tiered
	// uncapped run's peak residency.
	CapKB    float64  `json:"cap_kb"`
	Untiered spillRun `json:"untiered_baseline"`
	Uncapped spillRun `json:"tiered_uncapped"`
	Capped   spillRun `json:"tiered_capped"`
	CkptFull spillRun `json:"checkpoint_full"`
	CkptIncr spillRun `json:"checkpoint_incremental"`
	Corrupt  spillRun `json:"corrupt_segment_recovery"`
	// SpillBagEqual: every tiered/capped/recovered run produced the exact
	// result bag of the untiered baseline (the hard gate; the bench exits
	// non-zero when it fails).
	SpillBagEqual bool `json:"spill_bag_equal"`
	// CorruptRecovered: the deliberately corrupted spill segment was caught
	// by its CRC, quarantined, and the task restored through the recovery
	// plane exactly-once (bag-equal, >= 1 fault).
	CorruptRecovered bool `json:"corrupt_segment_recovered"`
	// CappedThroughputRatio is capped elapsed relative to uncapped-tiered
	// elapsed, inverted so higher is better (1.0 = spilling was free). How
	// often probes fault spilled segments back in is scheduling-dependent,
	// so this ratio swings well past the compare tolerance run to run; it
	// is reported for the trajectory and gated in-binary with an absolute
	// floor instead (a capped run slower than 10x uncapped means
	// degradation stopped being graceful).
	CappedThroughputRatio float64 `json:"capped_throughput_ratio"`
	// CkptReduction is full-checkpoint bytes over incremental-checkpoint
	// bytes for the identical run: how much manifest traffic sealed-segment
	// references save once a checkpoint only re-exports the hot region. The
	// incremental side counts hot-region bytes at each checkpoint instant,
	// which depends on how the two sources' arrivals interleaved — so like
	// the throughput ratio it is gated with an absolute in-binary floor
	// (>= 4x) rather than against the smoke baseline.
	CkptReduction float64 `json:"ckpt_bytes_reduction_ratio"`
}

// corruptingStore wraps a segment store and flips one byte in the Nth spill
// ("sp-") write — the checkpoint ("ck-") domain stays clean, modeling media
// corruption on the spill device while the durable copy survives. It records
// the victim key and whether the tier later quarantined it (observed as the
// best-effort DeleteSegment of that key).
type corruptingStore struct {
	inner slab.SegmentStore

	mu          sync.Mutex
	target      int    // corrupt the target'th sp- put
	puts        int    // sp- puts seen
	victim      string // corrupted key ("" until the target put arrives)
	quarantined bool   // tier deleted the corrupted key after the CRC failed
}

func (c *corruptingStore) PutSegment(key string, blob []byte) error {
	if strings.HasPrefix(key, "sp-") {
		c.mu.Lock()
		c.puts++
		if c.puts == c.target && c.victim == "" {
			c.victim = key
			bad := append([]byte(nil), blob...)
			bad[len(bad)/2] ^= 0x40
			blob = bad
		}
		c.mu.Unlock()
	}
	return c.inner.PutSegment(key, blob)
}

func (c *corruptingStore) GetSegment(key string) ([]byte, bool, error) {
	return c.inner.GetSegment(key)
}

func (c *corruptingStore) DeleteSegment(key string) error {
	c.mu.Lock()
	if key != "" && key == c.victim {
		c.quarantined = true
	}
	c.mu.Unlock()
	return c.inner.DeleteSegment(key)
}

// spillTuple pads each row so segments carry realistic payload bytes.
func spillTuple(key int64, i int) types.Tuple {
	return types.Tuple{
		types.Int(key),
		types.Int(int64(i)),
		types.Str("spill-bench-payload-0123456789abcdefghijklmnopqrstuvwxyz-0123456789"),
	}
}

// spillBench is the PR 10 experiment: memory-pressure survival made
// measurable. The same 2-way hash-hypercube join runs (a) untiered, (b)
// tiered with an effectively infinite cap — measuring the tier's bookkeeping
// and true peak residency, (c) tiered with the cap at 50% of that peak — the
// degradation ladder must keep residency under the cap by sealing and
// spilling cold segments while the result stays bag-equal, (d) twice under
// checkpointing, full vs incremental manifests, and (e) with one spilled
// segment deliberately corrupted — the CRC must catch it, quarantine the
// segment and restore the task through the recovery plane exactly-once.
// Gates (CI smoke): every run bag-equal to the untiered baseline, capped
// peak residency under the cap, incremental checkpoints strictly smaller
// than full ones, and the corrupted segment quarantined + recovered.
func spillBench() {
	nR, nS := 48_000, 48_000
	if *smoke {
		nR, nS = 14_000, 14_000
	}
	domain := int64(nR / 4)
	const machines = 4
	const segRows = 256
	header(fmt.Sprintf("Memory-pressure survival: tiered state under a 50%% cap (R=%d, S=%d, %dJ)", nR, nS, machines))

	rRows := make([]types.Tuple, nR)
	for i := range rRows {
		rRows[i] = spillTuple(int64(i)%domain, i)
	}
	sRows := make([]types.Tuple, nS)
	for i := range sRows {
		sRows[i] = spillTuple(int64(i*7)%domain, i)
	}
	g := expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0))
	mkQuery := func() *squall.JoinQuery {
		return &squall.JoinQuery{
			Graph:    g,
			Scheme:   squall.HashHypercube,
			Machines: machines,
			Local:    squall.Traditional,
			Sources: []squall.Source{
				{Name: "R", Spout: dataflow.SliceSpout(rRows), Size: int64(nR)},
				{Name: "S", Spout: dataflow.SliceSpout(sRows), Size: int64(nS)},
			},
		}
	}

	spillRoot, err := os.MkdirTemp("", "squall-spill-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "spill: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(spillRoot)
	dirs := 0

	runOnce := func(name string, opts squall.Options) (spillRun, *squall.Result) {
		// Shallow inboxes keep the spouts backpressure-sensitive, so the
		// ladder's throttle stage actually reaches them.
		opts.Seed = 17
		opts.ChannelBuf = 8
		res, err := mkQuery().Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spill: %s: %v\n", name, err)
			os.Exit(1)
		}
		r := spillRun{
			Name:      name,
			ElapsedMS: float64(res.Metrics.Elapsed.Microseconds()) / 1000,
			Rows:      res.RowCount,
		}
		if p := res.Pressure; p != nil {
			r.PeakResidentKB = float64(p.PeakResident) / 1024
			r.SpilledKB = float64(p.PeakSpilled) / 1024
			r.Spills = p.Spills
			r.SegmentFaults = p.SegmentFaults
			r.ThrottleEvents = p.ThrottleEvents
		}
		rm := &res.Metrics.Recovery
		r.Checkpoints = rm.Checkpoints.Load()
		r.CheckpointKB = float64(rm.CheckpointBytes.Load()) / 1024
		r.SegmentRestoredKB = float64(rm.SegmentBytes.Load()) / 1024
		r.RecoveredFaults = rm.Faults.Load()
		return r, res
	}

	// Best-of-reps on the two timed configurations; every rep must produce
	// the identical bag (elapsed is minimized, counters come from the first
	// rep — they are deterministic given the seed).
	const reps = 3
	measure := func(name string, mkOpts func() squall.Options) (spillRun, uint64) {
		best, res := runOnce(name, mkOpts())
		bag := bagHash(res.Rows)
		for i := 1; i < reps; i++ {
			r, rres := runOnce(name, mkOpts())
			if bagHash(rres.Rows) != bag || r.Rows != best.Rows {
				fmt.Fprintf(os.Stderr, "spill: %s: nondeterministic result bag across reps\n", name)
				os.Exit(1)
			}
			if r.ElapsedMS < best.ElapsedMS {
				best.ElapsedMS = r.ElapsedMS
			}
		}
		return best, bag
	}
	spillDir := func() string {
		dirs++
		d := fmt.Sprintf("%s/run%d", spillRoot, dirs)
		if err := os.Mkdir(d, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "spill: %v\n", err)
			os.Exit(1)
		}
		return d
	}

	// (a) Untiered baseline: the bag oracle and the no-tier elapsed.
	base, baseBag := measure("untiered", func() squall.Options {
		return squall.Options{}
	})

	// (b) Tiered, effectively uncapped: the ladder never leaves Normal, so
	// nothing spills — its PeakResident is the join's true arena residency,
	// which sets the cap for (c).
	uncapped, uncappedBag := measure("tiered-uncapped", func() squall.Options {
		return squall.Options{Tier: &squall.TierOptions{
			SegmentRows: segRows, MemCapBytes: 1 << 40,
		}}
	})
	capBytes := int64(uncapped.PeakResidentKB*1024) / 2

	// (c) Tiered with the cap at 50% of that peak, spilling to real files:
	// the run must finish bag-equal with peak residency under the cap.
	capped, cappedBag := measure("tiered-capped", func() squall.Options {
		return squall.Options{Tier: &squall.TierOptions{
			SegmentRows: segRows, MemCapBytes: capBytes, SpillDir: spillDir(),
		}}
	})

	// (d) Checkpointing, full vs incremental: identical runs and cadence;
	// the tiered one's manifests reference sealed segments already persisted
	// at spill time instead of re-exporting every row.
	ckEvery := nR / 8
	ckFull, ckFullRes := runOnce("ckpt-full", squall.Options{
		Recovery: &squall.RecoveryOptions{CheckpointEvery: ckEvery},
	})
	ckFullBag := bagHash(ckFullRes.Rows)
	ckIncr, ckIncrRes := runOnce("ckpt-incremental", squall.Options{
		Recovery: &squall.RecoveryOptions{CheckpointEvery: ckEvery},
		Tier:     &squall.TierOptions{SegmentRows: segRows, CacheSegments: 4},
	})
	ckIncrBag := bagHash(ckIncrRes.Rows)

	// (e) Corruption: flip one byte in one spill write (the checkpoint copy
	// stays clean). The next fault-in must fail the CRC, quarantine the
	// segment and panic into the recovery plane, which restores the task
	// from the clean incremental checkpoint and replays — exactly-once.
	// Target a mid-run spill write: late enough that a checkpoint (with
	// segment references) precedes the fault, so the restore reads sealed
	// segments back instead of degenerating to replay-only.
	cs := &corruptingStore{inner: recovery.NewMemStore(), target: 48}
	corrupt, corruptRes := runOnce("corrupt-spill", squall.Options{
		Recovery: &squall.RecoveryOptions{CheckpointEvery: ckEvery / 4, DisablePeer: true},
		Tier:     &squall.TierOptions{SegmentRows: segRows, CacheSegments: 4, Store: cs},
	})
	corruptBag := bagHash(corruptRes.Rows)

	report := spillReport{
		PR: 10,
		Benchmark: fmt.Sprintf("tiered joiner state under a 50%% resident cap on a hash-hypercube 2-way join (%d+%d tuples, %dJ)",
			nR, nS, machines),
		RTuples: nR, STuples: nS, Machines: machines,
		CapKB:    float64(capBytes) / 1024,
		Untiered: base, Uncapped: uncapped, Capped: capped,
		CkptFull: ckFull, CkptIncr: ckIncr, Corrupt: corrupt,
		CappedThroughputRatio: uncapped.ElapsedMS / capped.ElapsedMS,
		CkptReduction:         ckFull.CheckpointKB / ckIncr.CheckpointKB,
	}

	fmt.Printf("  %-18s %10s %12s %12s %10s %8s %8s %10s\n",
		"run", "elapsed", "rows", "peak-res", "spilled", "spills", "faults", "ckpt-kb")
	for _, r := range []spillRun{base, uncapped, capped, ckFull, ckIncr, corrupt} {
		peak, spilled := "-", "-"
		if r.PeakResidentKB > 0 {
			peak = fmt.Sprintf("%.0fKB", r.PeakResidentKB)
		}
		if r.Spills > 0 {
			spilled = fmt.Sprintf("%.0fKB", r.SpilledKB)
		}
		ck := "-"
		if r.Checkpoints > 0 {
			ck = fmt.Sprintf("%.1f", r.CheckpointKB)
		}
		fmt.Printf("  %-18s %9.1fms %12d %12s %10s %8d %8d %10s\n",
			r.Name, r.ElapsedMS, r.Rows, peak, spilled, r.Spills, r.SegmentFaults, ck)
	}
	fmt.Printf("  cap %0.fKB (50%% of uncapped peak %.0fKB); capped peak %.0fKB, %d spills, %d fault-ins, %d throttle events\n",
		report.CapKB, uncapped.PeakResidentKB, capped.PeakResidentKB, capped.Spills, capped.SegmentFaults, capped.ThrottleEvents)
	fmt.Printf("  capped run at %.2fx uncapped throughput; incremental checkpoints %.1fx smaller (%.1fKB vs %.1fKB over %d ckpts)\n",
		report.CappedThroughputRatio, report.CkptReduction, ckIncr.CheckpointKB, ckFull.CheckpointKB, ckFull.Checkpoints)
	fmt.Printf("  corrupt spill segment: quarantined=%v faults=%d restored=%.0fKB from segments\n",
		cs.quarantined, corrupt.RecoveredFaults, corrupt.SegmentRestoredKB)

	ok := true
	bagEqual := baseBag == uncappedBag && baseBag == cappedBag &&
		baseBag == ckFullBag && baseBag == ckIncrBag && baseBag == corruptBag &&
		base.Rows == uncapped.Rows && base.Rows == capped.Rows &&
		base.Rows == ckFull.Rows && base.Rows == ckIncr.Rows && base.Rows == corrupt.Rows
	report.SpillBagEqual = bagEqual
	if !bagEqual {
		fmt.Fprintf(os.Stderr, "  FAIL: tiered/capped/recovered runs are not bag-equal to the untiered baseline\n")
		ok = false
	}
	if capped.PeakResidentKB*1024 > float64(capBytes) {
		fmt.Fprintf(os.Stderr, "  FAIL: capped run peaked at %.0fKB resident, over the %.0fKB cap\n",
			capped.PeakResidentKB, report.CapKB)
		ok = false
	}
	if capped.Spills == 0 || capped.SpilledKB == 0 {
		fmt.Fprintf(os.Stderr, "  FAIL: capped run never spilled — the cap was not exercised\n")
		ok = false
	}
	if report.CappedThroughputRatio < 0.1 {
		fmt.Fprintf(os.Stderr, "  FAIL: capped run ran %.1fx slower than uncapped — degradation is no longer graceful\n",
			1/report.CappedThroughputRatio)
		ok = false
	}
	if ckFull.Checkpoints == 0 || ckIncr.Checkpoints == 0 {
		fmt.Fprintf(os.Stderr, "  FAIL: checkpoint runs took no checkpoints (full=%d incremental=%d)\n",
			ckFull.Checkpoints, ckIncr.Checkpoints)
		ok = false
	}
	if report.CkptReduction < 4 {
		fmt.Fprintf(os.Stderr, "  FAIL: incremental checkpoints only %.1fx smaller than full (%.1fKB vs %.1fKB), want >= 4x\n",
			report.CkptReduction, ckIncr.CheckpointKB, ckFull.CheckpointKB)
		ok = false
	}
	report.CorruptRecovered = cs.quarantined && corrupt.RecoveredFaults >= 1 && baseBag == corruptBag
	if cs.victim == "" {
		fmt.Fprintf(os.Stderr, "  FAIL: corruption run never reached %d spill writes\n", cs.target)
		ok = false
	}
	if !cs.quarantined {
		fmt.Fprintf(os.Stderr, "  FAIL: corrupted segment %q was never quarantined — bad bytes may have been decoded\n", cs.victim)
		ok = false
	}
	if corrupt.RecoveredFaults < 1 {
		fmt.Fprintf(os.Stderr, "  FAIL: corruption fired %d recoveries, want >= 1\n", corrupt.RecoveredFaults)
		ok = false
	}
	if corrupt.SegmentRestoredKB == 0 {
		fmt.Fprintf(os.Stderr, "  FAIL: the post-corruption restore read no sealed segments back — the incremental-checkpoint restore path was not exercised\n")
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileSpill, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileSpill, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileSpill)
	}
}
