package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"squall"
	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/localjoin"
	"squall/internal/ops"
	"squall/internal/types"
	"squall/internal/wire"
)

// benchFileExec is where `-json exec` records the PR 5 numbers.
const benchFileExec = "BENCH_PR5.json"

// execModeResult measures one execution path on the source -> join hot
// path: transport framing, a lowered selection, routing hash and the
// joiner's probe+insert, per tuple.
type execModeResult struct {
	Name           string  `json:"name"`
	NSPerTuple     float64 `json:"ns_per_tuple"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
}

type execReport struct {
	PR              int               `json:"pr"`
	Benchmark       string            `json:"benchmark"`
	Legacy          execModeResult    `json:"legacy"`
	Packed          execModeResult    `json:"packed"`
	SpeedupX        float64           `json:"hot_path_speedup_x"`
	AllocReductionX float64           `json:"allocs_per_tuple_reduction_x"`
	FullJoin        fullJoinExecBench `json:"full_join"`
}

type fullJoinExecBench struct {
	RTuples  int     `json:"r_tuples"`
	STuples  int     `json:"s_tuples"`
	LegacyMS float64 `json:"legacy_ms"`
	PackedMS float64 `json:"packed_ms"`
	SpeedupX float64 `json:"throughput_speedup_x"`
	Rows     int64   `json:"result_rows"`
}

// execSelPred is the co-located selection both paths run per tuple (always
// true for the synthesized payloads, so the join load is identical).
func execSelPred() expr.Pred {
	return expr.Cmp{Op: expr.Lt, L: expr.C(2), R: expr.F(1e9)}
}

// measureExecHotPath benchmarks the source -> select -> route -> join
// insert/probe chain per tuple in one mode. The joiner is preloaded with
// `stored` R rows; the measured loop streams S arrivals through transport
// batches of 64, mirroring one engine edge at steady state.
func measureExecHotPath(packed bool, stored int) execModeResult {
	g := stateJoinGraph()
	const batch = 64
	rows := make([]types.Tuple, batch)
	pred := execSelPred()

	name := "legacy"
	if packed {
		name = "packed"
	}
	res := testing.Benchmark(func(b *testing.B) {
		j := localjoin.NewTraditional(g)
		for i := 0; i < stored; i++ {
			if err := j.Insert(0, stateTuple(int64(i), i)); err != nil {
				b.Fatal(err)
			}
		}
		for i := range rows {
			rows[i] = stateTuple(int64(i*2654435761%stored), i)
		}
		ppred, ok := expr.CompilePred(pred)
		if !ok {
			b.Fatal("selection did not lower")
		}
		var frame []byte
		var dec wire.BatchDecoder
		var cur wire.Cursor
		emit := func([]byte) error { return nil }
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n += batch {
			// Producer: one wire frame per batch (both paths pay this).
			frame = wire.EncodeBatch(frame[:0], rows)
			if packed {
				// Consumer: cursor walk, lowered selection, packed routing
				// hash, blitted insert + packed probe.
				_, _, err := wire.EachRow(frame, &cur, func(row []byte) error {
					keep, err := ppred(&cur)
					if err != nil || !keep {
						return err
					}
					_ = cur.Hash(0) // hash-route on the join key
					return j.OnRow(1, row, &cur, emit)
				})
				if err != nil {
					b.Fatal(err)
				}
			} else {
				// Consumer: batch decode, boxed Eval, boxed routing hash,
				// decode-verify probe + re-encoding insert.
				out, _, err := dec.Decode(frame)
				if err != nil {
					b.Fatal(err)
				}
				for _, t := range out {
					keep, err := pred.Eval(t)
					if err != nil || !keep {
						b.Fatal(err)
					}
					_ = t.Hash(0)
					if _, err := j.OnTuple(1, t); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	return execModeResult{
		Name:           name,
		NSPerTuple:     float64(res.NsPerOp()),
		AllocsPerTuple: float64(res.AllocsPerOp()),
	}
}

// fullJoinExec runs the end-to-end 2-way full join through the engine with
// packed execution on and off and compares elapsed time and row counts.
func fullJoinExec(rn, sn int) fullJoinExecBench {
	g := stateJoinGraph()
	rRows := make([]types.Tuple, rn)
	for i := range rRows {
		rRows[i] = stateTuple(int64(i%(rn/4+1)), i)
	}
	sRows := make([]types.Tuple, sn)
	for i := range sRows {
		sRows[i] = stateTuple(int64(i%(rn/4+1)), i)
	}
	run := func(mode squall.PackedMode) (time.Duration, int64) {
		q := &squall.JoinQuery{
			Graph:    g,
			Scheme:   squall.HybridHypercube,
			Machines: 8,
			Local:    squall.Traditional,
			Sources: []squall.Source{
				{Name: "R", Spout: dataflow.SliceSpout(rRows), Size: int64(rn),
					Pre: ops.Pipeline{ops.Select{P: execSelPred()}}},
				{Name: "S", Spout: dataflow.SliceSpout(sRows), Size: int64(sn),
					Pre: ops.Pipeline{ops.Select{P: execSelPred()}}},
			},
		}
		runtime.GC()
		res, err := q.Run(squall.Options{Seed: 7, CollectLimit: 1, PackedExec: mode})
		if err != nil {
			fmt.Fprintf(os.Stderr, "exec: full join (%v): %v\n", mode, err)
			os.Exit(1)
		}
		return res.Metrics.Elapsed, res.RowCount
	}
	const reps = 3
	mean := func(mode squall.PackedMode) (time.Duration, int64) {
		run(mode) // warmup, discarded
		var total time.Duration
		var rows int64
		for i := 0; i < reps; i++ {
			d, r := run(mode)
			total += d
			rows = r
		}
		return total / reps, rows
	}
	legacyD, legacyRows := mean(squall.PackedOff)
	packedD, packedRows := mean(squall.PackedOn)
	if legacyRows != packedRows {
		fmt.Fprintf(os.Stderr, "exec: FAIL: full join rows diverge: legacy %d, packed %d\n", legacyRows, packedRows)
		os.Exit(1)
	}
	return fullJoinExecBench{
		RTuples: rn, STuples: sn,
		LegacyMS: float64(legacyD.Microseconds()) / 1000,
		PackedMS: float64(packedD.Microseconds()) / 1000,
		SpeedupX: float64(legacyD) / float64(packedD),
		Rows:     packedRows,
	}
}

// execBench is the PR 5 experiment: the packed-row execution path against
// the boxed tuple pipeline — per-tuple cost and allocations on the
// source -> join hot path, plus end-to-end full-join throughput at the
// 1M-tuple point. It exits non-zero when packed execution stops paying for
// itself (the CI gate): allocs/tuple must drop >= 2x at any scale, and
// end-to-end throughput must improve >= 1.3x at the full scale point (the
// smoke scale, dominated by topology startup, only asserts no regression).
func execBench() {
	stored := 200_000
	fullR, fullS := 750_000, 250_000
	speedupGate := 1.3
	if *smoke {
		stored = 20_000
		fullR, fullS = 24_000, 6_000
		speedupGate = 0.95
	}
	header(fmt.Sprintf("Packed-row execution vs boxed tuple pipeline (%d stored, %d:%d full join)", stored, fullR, fullS))

	legacy := measureExecHotPath(false, stored)
	packed := measureExecHotPath(true, stored)

	fmt.Printf("  %-8s %14s %16s\n", "exec", "hot-path ns/t", "allocs/t")
	for _, r := range []execModeResult{legacy, packed} {
		fmt.Printf("  %-8s %14.0f %16.2f\n", r.Name, r.NSPerTuple, r.AllocsPerTuple)
	}

	report := execReport{
		PR: 5,
		Benchmark: fmt.Sprintf("packed vs boxed source->join hot path (%d stored R rows, 4-col TPC-H-ish rows) and end-to-end full join (%d:%d, 8J)",
			stored, fullR, fullS),
		Legacy:   legacy,
		Packed:   packed,
		SpeedupX: legacy.NSPerTuple / packed.NSPerTuple,
	}
	if packed.AllocsPerTuple > 0 {
		report.AllocReductionX = legacy.AllocsPerTuple / packed.AllocsPerTuple
	} else {
		report.AllocReductionX = legacy.AllocsPerTuple / 0.01 // alloc-free packed path
	}
	report.FullJoin = fullJoinExec(fullR, fullS)

	fmt.Printf("  hot path: %.2fx faster, %.1fx fewer allocs/tuple\n", report.SpeedupX, report.AllocReductionX)
	fmt.Printf("  end-to-end full join (%d:%d, 8J): legacy %.1fms, packed %.1fms (%.2fx), %d rows\n",
		fullR, fullS, report.FullJoin.LegacyMS, report.FullJoin.PackedMS, report.FullJoin.SpeedupX, report.FullJoin.Rows)

	ok := true
	if report.AllocReductionX < 2 {
		fmt.Fprintf(os.Stderr, "  FAIL: allocs/tuple reduction %.2fx < 2x\n", report.AllocReductionX)
		ok = false
	}
	if report.FullJoin.SpeedupX < speedupGate {
		fmt.Fprintf(os.Stderr, "  FAIL: full-join throughput %.2fx < %.2fx gate\n", report.FullJoin.SpeedupX, speedupGate)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileExec, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileExec, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileExec)
	}
}
