package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"squall"
	"squall/internal/dataflow"
	"squall/internal/expr"
	"squall/internal/recovery"
	"squall/internal/types"
)

// Disk model for the recovery baseline, mirroring the engine's CPU-for-
// network substitution: the paper's blades (§7) pair a 1 Gbit network with
// contended local spinning disks, so checkpoint reads pay a seek plus
// ~120 MB/s sequential bandwidth instead of this machine's page cache.
const (
	diskSeek      = 2 * time.Millisecond
	diskReadBytes = 120 << 20
)

// benchFileRecover is where `-json recover` records the PR 4 numbers.
const benchFileRecover = "BENCH_PR4.json"

// recoverRun is one configuration's measurement: a fault-free or killed run
// of the same replicated 2-way join.
type recoverRun struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Rows      int64   `json:"result_rows"`
	// RecoveryUS is the fault's gate-to-ack recovery time (0 when no fault).
	RecoveryUS     float64 `json:"recovery_us,omitempty"`
	PeerRels       int64   `json:"peer_rels,omitempty"`
	CheckpointRels int64   `json:"checkpoint_rels,omitempty"`
	RestoredTuples int64   `json:"restored_tuples,omitempty"`
	ReplayedTuples int64   `json:"replayed_tuples,omitempty"`
	Checkpoints    int64   `json:"checkpoints,omitempty"`
	CheckpointKB   float64 `json:"checkpoint_kb,omitempty"`
}

type recoverReport struct {
	PR        int        `json:"pr"`
	Benchmark string     `json:"benchmark"`
	RTuples   int        `json:"r_tuples"`
	STuples   int        `json:"s_tuples"`
	Machines  int        `json:"machines"`
	KillAfter int        `json:"kill_after_tuples"`
	Baseline  recoverRun `json:"baseline"`
	FaultFree recoverRun `json:"fault_free_checkpointing"`
	Peer      recoverRun `json:"kill_peer_recovery"`
	Disk      recoverRun `json:"kill_disk_recovery"`
	// PeerSpeedupX is disk recovery time / peer recovery time — the §5
	// claim ("network accesses are several times faster than disk").
	PeerSpeedupX float64 `json:"peer_recovery_speedup_x"`
	// RecoveredOverheadX is the killed-and-recovered run's elapsed time over
	// the fault-free run of the same configuration — the cost of the fault
	// itself (gate: < 1.25).
	RecoveredOverheadX float64 `json:"recovered_run_overhead_x"`
	// CheckpointOverheadX is fault-free-with-checkpointing over the plain
	// no-recovery baseline — the steady-state cost of the subsystem.
	CheckpointOverheadX float64 `json:"checkpoint_overhead_x"`
}

// recoverTuple synthesizes a padded row so restores move realistic bytes.
func recoverTuple(key int64, i int) types.Tuple {
	return types.Tuple{
		types.Int(key),
		types.Int(int64(i)),
		types.Str("recover-bench-payload-0123456789"),
	}
}

// bagHash is an order-independent multiset hash of the collected rows: two
// runs are bag-equal iff counts and hashes agree (the smoke gate's cheap
// stand-in for a full bag diff at bench scales).
func bagHash(rows []types.Tuple) uint64 {
	var sum uint64
	for _, r := range rows {
		h := fnv.New64a()
		h.Write([]byte(r.Key()))
		sum += h.Sum64()
	}
	return sum
}

// recoverBench is the PR 4 experiment: the §5 fault-tolerance claim made
// live. A Random-Hypercube 2-way join (fully replicated, so every relation
// is peer-recoverable) runs fault-free, then with one joiner task killed
// mid-run and recovered from a peer, then with the same kill recovered from
// a disk checkpoint. Gates (CI smoke): every run bag-equal to the fault-free
// baseline, peer recovery strictly faster than disk recovery, and the
// recovered run's end-to-end overhead under 25%.
func recoverBench() {
	nR, nS := 60_000, 60_000
	if *smoke {
		nR, nS = 16_000, 16_000
	}
	domain := int64(nR / 4)
	const machines = 8
	killAfter := nR / machines
	header(fmt.Sprintf("Live fault tolerance: peer vs disk recovery (R=%d, S=%d, %dJ, kill after %d tuples)", nR, nS, machines, killAfter))

	rRows := make([]types.Tuple, nR)
	for i := range rRows {
		rRows[i] = recoverTuple(int64(i)%domain, i)
	}
	sRows := make([]types.Tuple, nS)
	for i := range sRows {
		sRows[i] = recoverTuple(int64(i*7)%domain, i)
	}
	g := expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0))
	mkQuery := func() *squall.JoinQuery {
		return &squall.JoinQuery{
			Graph:    g,
			Scheme:   squall.RandomHypercube,
			Machines: machines,
			Local:    squall.Traditional,
			Sources: []squall.Source{
				{Name: "R", Spout: dataflow.SliceSpout(rRows), Size: int64(nR)},
				{Name: "S", Spout: dataflow.SliceSpout(sRows), Size: int64(nS)},
			},
		}
	}

	ckptRoot, err := os.MkdirTemp("", "squall-ckpt-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "recover: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(ckptRoot)

	runs := 0
	runOnce := func(name string, kill, disablePeer, withRecovery bool) (recoverRun, uint64) {
		// Every run gets a fresh checkpoint directory: each execution models
		// a fresh cluster, and a stale manifest from a previous run must
		// never masquerade as this run's history.
		runs++
		store, err := recovery.NewModeledDiskStore(fmt.Sprintf("%s/run%d", ckptRoot, runs), diskSeek, diskReadBytes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recover: %v\n", err)
			os.Exit(1)
		}
		opts := squall.Options{
			Seed: 11,
			// Shallow inboxes backpressure the spouts, so the kill lands
			// genuinely mid-stream and post-recovery tuples join against the
			// restored state.
			ChannelBuf: 4,
		}
		if withRecovery {
			opts.Recovery = &squall.RecoveryOptions{
				// A couple of checkpoints land before the kill point, so the
				// disk route genuinely restores from the medium (plus a
				// bounded replay) instead of degenerating to replay-only.
				CheckpointEvery: killAfter * 3 / 4,
				Store:           store,
				DisablePeer:     disablePeer,
			}
		}
		if kill {
			opts.FaultPlan = &squall.FaultPlan{Task: 0, AfterTuples: killAfter}
		}
		res, err := mkQuery().Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recover: %s: %v\n", name, err)
			os.Exit(1)
		}
		rm := &res.Metrics.Recovery
		if kill && rm.Faults.Load() != 1 {
			fmt.Fprintf(os.Stderr, "recover: %s: %d faults fired, want 1\n", name, rm.Faults.Load())
			os.Exit(1)
		}
		return recoverRun{
			Name:           name,
			ElapsedMS:      float64(res.Metrics.Elapsed.Microseconds()) / 1000,
			Rows:           res.RowCount,
			RecoveryUS:     float64(rm.LastRecoveryNS.Load()) / 1000,
			PeerRels:       rm.PeerRels.Load(),
			CheckpointRels: rm.CheckpointRels.Load(),
			RestoredTuples: rm.RestoredTuples.Load(),
			ReplayedTuples: rm.ReplayedTuples.Load(),
			Checkpoints:    rm.Checkpoints.Load(),
			CheckpointKB:   float64(rm.CheckpointBytes.Load()) / 1024,
		}, bagHash(res.Rows)
	}

	// Best-of-reps for the timing claims (elapsed and recovery time are
	// minimized independently — a noisy neighbor should not decide the §5
	// comparison); every rep must produce the identical result bag.
	const reps = 3
	measure := func(name string, kill, disablePeer, withRecovery bool) (recoverRun, uint64) {
		best, bestBag := runOnce(name, kill, disablePeer, withRecovery)
		for i := 1; i < reps; i++ {
			r, bag := runOnce(name, kill, disablePeer, withRecovery)
			if bag != bestBag || r.Rows != best.Rows {
				fmt.Fprintf(os.Stderr, "recover: %s: nondeterministic result bag across reps\n", name)
				os.Exit(1)
			}
			if r.ElapsedMS < best.ElapsedMS {
				best.ElapsedMS = r.ElapsedMS
			}
			if r.RecoveryUS > 0 && (best.RecoveryUS == 0 || r.RecoveryUS < best.RecoveryUS) {
				best.RecoveryUS = r.RecoveryUS
			}
		}
		return best, bestBag
	}

	base, baseBag := measure("baseline", false, false, false)
	ff, ffBag := measure("fault-free+ckpt", false, false, true)
	peer, peerBag := measure("kill+peer", true, false, true)
	disk, diskBag := measure("kill+disk", true, true, true)

	report := recoverReport{
		PR: 4,
		Benchmark: fmt.Sprintf("mid-run joiner kill on a replicated Random-Hypercube 2-way join (%d+%d tuples, %dJ)",
			nR, nS, machines),
		RTuples: nR, STuples: nS, Machines: machines, KillAfter: killAfter,
		Baseline: base, FaultFree: ff, Peer: peer, Disk: disk,
		PeerSpeedupX:        disk.RecoveryUS / peer.RecoveryUS,
		RecoveredOverheadX:  peer.ElapsedMS / ff.ElapsedMS,
		CheckpointOverheadX: ff.ElapsedMS / base.ElapsedMS,
	}

	fmt.Printf("  %-18s %10s %10s %12s %8s %10s %10s %8s\n",
		"run", "elapsed", "recovery", "rows", "routes", "restored", "replayed", "ckpts")
	for _, r := range []recoverRun{base, ff, peer, disk} {
		routes := "-"
		if r.PeerRels+r.CheckpointRels > 0 {
			routes = fmt.Sprintf("%dp/%dc", r.PeerRels, r.CheckpointRels)
		}
		recovery := "-"
		if r.RecoveryUS > 0 {
			recovery = fmt.Sprintf("%.0fµs", r.RecoveryUS)
		}
		fmt.Printf("  %-18s %9.1fms %10s %12d %8s %10d %10d %8d\n",
			r.Name, r.ElapsedMS, recovery, r.Rows, routes, r.RestoredTuples, r.ReplayedTuples, r.Checkpoints)
	}
	fmt.Printf("  peer recovery %.2fx faster than disk-checkpoint recovery (%.0fµs vs %.0fµs; disk modeled at %v seek + %dMB/s)\n",
		report.PeerSpeedupX, peer.RecoveryUS, disk.RecoveryUS, diskSeek, diskReadBytes>>20)
	fmt.Printf("  recovered-run overhead %.2fx vs fault-free; checkpointing alone %.2fx vs no recovery\n",
		report.RecoveredOverheadX, report.CheckpointOverheadX)

	ok := true
	if baseBag != ffBag || baseBag != peerBag || baseBag != diskBag ||
		base.Rows != ff.Rows || base.Rows != peer.Rows || base.Rows != disk.Rows {
		fmt.Fprintf(os.Stderr, "  FAIL: recovered runs are not bag-equal to the fault-free run\n")
		ok = false
	}
	if peer.PeerRels != 2 {
		fmt.Fprintf(os.Stderr, "  FAIL: replicated scheme recovered %d of 2 relations from peers\n", peer.PeerRels)
		ok = false
	}
	if disk.CheckpointRels != 2 {
		fmt.Fprintf(os.Stderr, "  FAIL: disk run recovered %d of 2 relations from checkpoints\n", disk.CheckpointRels)
		ok = false
	}
	if peer.RecoveryUS >= disk.RecoveryUS {
		fmt.Fprintf(os.Stderr, "  FAIL: peer recovery (%.0fµs) not faster than disk recovery (%.0fµs)\n",
			peer.RecoveryUS, disk.RecoveryUS)
		ok = false
	}
	if report.RecoveredOverheadX >= 1.25 {
		fmt.Fprintf(os.Stderr, "  FAIL: recovered-run overhead %.2fx >= 1.25x\n", report.RecoveredOverheadX)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchFileRecover, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", benchFileRecover, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchFileRecover)
	}
}
