// Command squalld is a squall cluster worker: it listens for coordinator
// sessions (see squall.ServeWorker), rebuilds each job's plan from the
// registered cluster jobs and runs its share of the topology. A second
// listener serves /healthz (liveness: active sessions, per-link
// last-heartbeat ages, failure counters) and /readyz (503 when any live
// link has gone silent past its detection window).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"squall"

	_ "squall/internal/clusterjobs" // register the jobs this worker can host
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7171", "address for coordinator and peer connections")
	healthz := flag.String("healthz", "", "address for the /healthz and /readyz HTTP endpoints (empty = disabled)")
	memcap := flag.Int64("memcap", 0, "resident-state budget in bytes: session state runs tiered, spilling cold segments as it fills (0 = uncapped)")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("squalld: %v", err)
	}
	srv := squall.NewWorkerServer(ln)
	if *memcap > 0 {
		// /healthz gains resident/spilled/sealed counters and the ladder
		// stage; /readyz degrades once spilling stops keeping up.
		srv.SetMemCap(*memcap)
	}
	// The chosen port matters when -listen used :0; print it for harnesses.
	fmt.Printf("squalld listening on %s\n", ln.Addr())

	if *healthz != "" {
		mux := http.NewServeMux()
		// Liveness: always 200 with session/heartbeat detail. Readiness:
		// 503 once any live link misses its heartbeat window — the signal
		// for an external supervisor to restart a wedged worker.
		mux.Handle("/healthz", srv.Healthz())
		mux.Handle("/readyz", srv.Readyz())
		go func() {
			if err := http.ListenAndServe(*healthz, mux); err != nil {
				log.Printf("squalld: healthz: %v", err)
			}
		}()
	}

	if err := srv.Serve(); err != nil {
		log.Printf("squalld: %v", err)
		os.Exit(1)
	}
}
