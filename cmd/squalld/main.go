// Command squalld is a squall cluster worker: it listens for coordinator
// sessions (see squall.ServeWorker), rebuilds each job's plan from the
// registered cluster jobs and runs its share of the topology. A second
// listener serves /healthz for liveness probes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"squall"

	_ "squall/internal/clusterjobs" // register the jobs this worker can host
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7171", "address for coordinator and peer connections")
	healthz := flag.String("healthz", "", "address for the /healthz HTTP endpoint (empty = disabled)")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("squalld: %v", err)
	}
	srv := squall.NewWorkerServer(ln)
	// The chosen port matters when -listen used :0; print it for harnesses.
	fmt.Printf("squalld listening on %s\n", ln.Addr())

	if *healthz != "" {
		mux := http.NewServeMux()
		mux.Handle("/healthz", srv.Healthz())
		go func() {
			if err := http.ListenAndServe(*healthz, mux); err != nil {
				log.Printf("squalld: healthz: %v", err)
			}
		}()
	}

	if err := srv.Serve(); err != nil {
		log.Printf("squalld: %v", err)
		os.Exit(1)
	}
}
