// Worker side of a cluster session (see cluster.go for the protocol). A
// WorkerServer accepts coordinator and peer connections, rebuilds the job's
// plan from the cluster-job registry, runs its share of the topology and
// reports metrics back. One server hosts any number of concurrent sessions,
// keyed by run id.
//
// Survivability duties (PR 8): every accepted link arms the heartbeat the
// dialer's hello carries, hellos with a stale link epoch are rejected (a
// re-dispatched attempt must never be joined by a connection from a dead
// one), peer dials retry with backoff under the coordinator's budget, and
// failure reports distinguish infrastructure faults from job errors so the
// coordinator's policy can retry the former.
package squall

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"squall/internal/dataflow"
	"squall/internal/recovery"
	"squall/internal/slab"
	"squall/internal/transport"
)

// WorkerServer hosts cluster sessions on one listener.
type WorkerServer struct {
	ln net.Listener

	mu       sync.Mutex
	sessions map[string]chan peerDelivery // runID -> rendezvous for peer links
	parked   map[string][]peerDelivery    // peer links that beat their job spec
	info     map[string]*sessionInfo      // runID -> live session state for healthz
	epochs   map[string]int               // base run id -> newest link epoch seen
	active   int
	served   int64
	failed   int64
	stale    int64 // connections rejected for a stale epoch
	closed   bool
	// registry, when set, contributes a "serving" section to the health
	// snapshot — a process hosting a serving Engine next to this worker
	// exposes its query/tenant registry through the same probe endpoint.
	registry func() any
	// pressure, when set (SetMemCap), is the process-wide degradation ladder
	// (PR 10): every session's tiered arenas charge it, /healthz reports it,
	// and /readyz degrades once the ladder passes Backpressure — an external
	// balancer should stop routing new jobs here before registrations start
	// bouncing.
	pressure *slab.Pressure
}

// sessionInfo is one live session's observable state.
type sessionInfo struct {
	runID   string
	job     string
	worker  int
	attempt int
	started time.Time
	links   []*transport.Conn
}

// peerDelivery hands an accepted worker->worker connection to its session.
type peerDelivery struct {
	from int
	conn *transport.Conn
	at   time.Time
}

// NewWorkerServer wraps a listener; call Serve to start accepting.
func NewWorkerServer(ln net.Listener) *WorkerServer {
	return &WorkerServer{
		ln:       ln,
		sessions: make(map[string]chan peerDelivery),
		parked:   make(map[string][]peerDelivery),
		info:     make(map[string]*sessionInfo),
		epochs:   make(map[string]int),
	}
}

// ServeWorker accepts cluster connections on ln until it is closed. Each
// job connection runs its session on its own goroutine; the call returns
// the listener's accept error.
func ServeWorker(ln net.Listener) error { return NewWorkerServer(ln).Serve() }

// Serve runs the accept loop until the listener closes.
func (s *WorkerServer) Serve() error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return err
		}
		go s.handshake(nc)
	}
}

// Close stops the server: the listener closes (Serve returns) and every live
// session link is torn down, so in-process chaos tests and benches can kill
// a worker the way SIGKILL kills a squalld.
func (s *WorkerServer) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return err
	}
	s.closed = true
	var conns []*transport.Conn
	for _, si := range s.info {
		conns = append(conns, si.links...)
	}
	for _, ds := range s.parked {
		for _, d := range ds {
			conns = append(conns, d.conn)
		}
	}
	s.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
	return err
}

// admitEpoch records the newest link epoch seen for a base run and reports
// whether a hello at epoch is current. Older epochs are stale: their attempt
// is dead, and admitting the connection would desynchronize a newer one.
func (s *WorkerServer) admitEpoch(base string, epoch int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.epochs[base]; ok && epoch < cur {
		s.stale++
		return false
	} else if !ok && len(s.epochs) > 1<<14 {
		// A long-lived worker sees unbounded base run ids; cap the map by
		// forgetting everything (worst case: one stale link per old run
		// admitted, which the session layer then rejects as a duplicate).
		s.epochs = make(map[string]int)
	}
	if epoch > s.epochs[base] {
		s.epochs[base] = epoch
	} else if _, ok := s.epochs[base]; !ok {
		s.epochs[base] = epoch
	}
	return true
}

func (s *WorkerServer) handshake(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn := transport.NewConn(nc)
	h, err := conn.ReadHello(sessionTimeout)
	if err != nil {
		conn.Close()
		return
	}
	if h.Purpose == transport.PurposeProbe {
		conn.Close() // a liveness probe: the completed handshake is the answer
		return
	}
	if !s.admitEpoch(baseRunID(h.RunID), h.Epoch) {
		if h.Purpose == transport.PurposeJob {
			failSession(conn, fmt.Errorf("stale link epoch %d for run %s", h.Epoch, baseRunID(h.RunID)))
		} else {
			conn.Close()
		}
		return
	}
	// Arm detection symmetrically with whatever the dialer runs.
	conn.StartHeartbeat(h.HB)
	switch h.Purpose {
	case transport.PurposeJob:
		go s.runSession(conn, h)
	case transport.PurposePeer:
		s.deliverPeer(h, conn)
	default:
		conn.Close()
	}
}

// deliverPeer routes an accepted peer link to its session, parking it when
// the session's own job spec has not arrived yet (job and peer connections
// race — the coordinator fans specs out concurrently).
func (s *WorkerServer) deliverPeer(h transport.Hello, conn *transport.Conn) {
	d := peerDelivery{from: h.From, conn: conn, at: time.Now()}
	s.mu.Lock()
	if ch, ok := s.sessions[h.RunID]; ok {
		s.mu.Unlock()
		select {
		case ch <- d:
		default:
			conn.Close() // session's rendezvous full: protocol violation
		}
		return
	}
	s.parked[h.RunID] = append(s.parked[h.RunID], d)
	s.purgeParkedLocked()
	s.mu.Unlock()
}

// purgeParkedLocked drops parked peer links whose session never arrived —
// orphans of an attempt that died between the peer dial and the job spec.
func (s *WorkerServer) purgeParkedLocked() {
	cutoff := time.Now().Add(-sessionTimeout)
	for run, ds := range s.parked {
		kept := ds[:0]
		for _, d := range ds {
			if d.at.Before(cutoff) {
				d.conn.Close()
			} else {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			delete(s.parked, run)
		} else {
			s.parked[run] = kept
		}
	}
}

// openRendezvous claims the peer-delivery channel for one run, draining any
// links that arrived early.
func (s *WorkerServer) openRendezvous(runID string, capacity int) (chan peerDelivery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sessions[runID]; dup {
		return nil, fmt.Errorf("run %q already has a session here", runID)
	}
	ch := make(chan peerDelivery, capacity)
	for _, d := range s.parked[runID] {
		ch <- d
	}
	delete(s.parked, runID)
	s.sessions[runID] = ch
	s.active++
	s.served++
	return ch, nil
}

func (s *WorkerServer) closeRendezvous(runID string) {
	s.mu.Lock()
	ch := s.sessions[runID]
	delete(s.sessions, runID)
	delete(s.info, runID)
	s.active--
	s.mu.Unlock()
	if ch != nil {
		for {
			select {
			case d := <-ch:
				d.conn.Close()
			default:
				return
			}
		}
	}
}

// registerSession publishes a live session's links for health reporting.
func (s *WorkerServer) registerSession(si *sessionInfo) {
	s.mu.Lock()
	s.info[si.runID] = si
	s.mu.Unlock()
}

// SetRegistry attaches a registry snapshot source (e.g. Engine.Stats) whose
// value is embedded as the "serving" section of every health snapshot, so
// operators probing /healthz see query/tenant registry state alongside link
// liveness. fn must be safe for concurrent use.
func (s *WorkerServer) SetRegistry(fn func() any) {
	s.mu.Lock()
	s.registry = fn
	s.mu.Unlock()
}

// SetMemCap installs a process-wide resident-state budget: sessions run
// their slab state tiered against one shared pressure ladder (spill →
// throttle → reject), and the health endpoints report the ladder's stage.
// Call before Serve.
func (s *WorkerServer) SetMemCap(bytes int64) {
	s.mu.Lock()
	if bytes > 0 {
		s.pressure = slab.NewPressure(bytes)
	} else {
		s.pressure = nil
	}
	s.mu.Unlock()
}

// healthSnapshot builds the liveness + readiness report. A worker is ready
// when every heartbeat-armed link of every live session has seen traffic
// within twice its detection window; a stalled link means a wedged or
// partitioned process an external supervisor should restart. A pressure
// ladder past Backpressure also drops readiness: the node still serves its
// sessions but should not be handed new work.
func (s *WorkerServer) healthSnapshot() (map[string]any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	ready := !s.closed
	sessions := make([]map[string]any, 0, len(s.info))
	jobs := make(map[string]int)
	for _, si := range s.info {
		if si.job != "" {
			jobs[si.job]++
		}
		links := make([]map[string]any, 0, len(si.links))
		for w, c := range si.links {
			if c == nil {
				continue
			}
			age := now.Sub(c.LastRead())
			win := c.HeartbeatWindow()
			links = append(links, map[string]any{
				"worker":       w,
				"last_read_ms": age.Milliseconds(),
				"window_ms":    win.Milliseconds(),
			})
			if win > 0 && age > 2*win {
				ready = false
			}
		}
		sessions = append(sessions, map[string]any{
			"run":     si.runID,
			"job":     si.job,
			"worker":  si.worker,
			"attempt": si.attempt,
			"age_ms":  now.Sub(si.started).Milliseconds(),
			"links":   links,
		})
	}
	snap := map[string]any{
		"ok":              true,
		"ready":           ready,
		"active_sessions": s.active,
		"served_sessions": s.served,
		"failed_sessions": s.failed,
		"stale_rejected":  s.stale,
		"jobs":            jobs,
		"sessions":        sessions,
	}
	if s.registry != nil {
		snap["serving"] = s.registry()
	}
	if s.pressure != nil {
		snap["pressure"] = s.pressure.Stats()
		if s.pressure.Stage() >= slab.PressureBackpressure {
			ready = false
			snap["ready"] = false
		}
	}
	return snap, ready
}

// Healthz returns an HTTP handler reporting liveness plus per-session,
// per-link heartbeat detail — the probe target for cmd/squalld's -healthz
// listener. It always answers 200 while the process lives; readiness is the
// "ready" field (and the Readyz handler's status code).
func (s *WorkerServer) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap, _ := s.healthSnapshot()
		body, _ := json.Marshal(snap)
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
}

// Readyz returns an HTTP handler answering 200 only while every live
// session's links are seeing heartbeat traffic — 503 means wedged, and an
// external supervisor should restart the process.
func (s *WorkerServer) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap, ready := s.healthSnapshot()
		body, _ := json.Marshal(snap)
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write(body)
	})
}

// failSession reports a job-level setup error to the coordinator before the
// plane exists; failSessionInfra marks the error as infrastructure so a
// Retry/Recover coordinator re-dispatches instead of escalating.
func failSession(conn *transport.Conn, err error) { sendFailed(conn, err, false); conn.Close() }

func failSessionInfra(conn *transport.Conn, err error) { sendFailed(conn, err, true); conn.Close() }

func sendFailed(conn *transport.Conn, err error, infra bool) {
	var a int64
	if infra {
		a = 1
	}
	conn.WriteMsg(&transport.Msg{Kind: kindFailed, A: a, Payload: []byte(err.Error())})
}

// runSession executes one worker's share of a cluster run. conn is the job
// link to the coordinator; this goroutine is its only reader until the
// NetPlane takes over.
func (s *WorkerServer) runSession(conn *transport.Conn, h transport.Hello) {
	spec, err := s.readJob(conn)
	if err != nil {
		failSession(conn, err)
		return
	}
	if spec.RunID == "" {
		spec.RunID = h.RunID
	}

	build, ok := lookupClusterJob(spec.Job)
	if !ok {
		failSession(conn, fmt.Errorf("cluster job %q is not registered in this binary", spec.Job))
		return
	}
	query, opt, err := build(spec.Params)
	if err != nil {
		failSession(conn, fmt.Errorf("building cluster job %q: %w", spec.Job, err))
		return
	}
	opt.Cluster = nil // the worker runs its local share, it does not recurse
	s.mu.Lock()
	if p := s.pressure; p != nil {
		// Process-wide memory cap: this worker's share of every job runs
		// tiered against the one shared ladder.
		t := TierOptions{}
		if opt.Tier != nil {
			t = *opt.Tier
		}
		t.pressure = p
		opt.Tier = &t
	}
	s.mu.Unlock()
	if opt.NoSerialize {
		failSession(conn, fmt.Errorf("cluster job %q asks for NoSerialize", spec.Job))
		return
	}
	plan, err := query.plan(opt)
	if err != nil {
		failSession(conn, fmt.Errorf("planning cluster job %q: %w", spec.Job, err))
		return
	}

	// Assemble the links: the job connection is the coordinator link, lower
	// peers are dialed, higher peers arrive through the rendezvous.
	rdv, err := s.openRendezvous(spec.RunID, spec.Workers)
	if err != nil {
		failSession(conn, err)
		return
	}
	defer s.closeRendezvous(spec.RunID)
	hb := transport.Heartbeat{Interval: time.Duration(spec.HBInterval), Miss: spec.HBMiss}
	rp := transport.RetryPolicy{
		Attempts: spec.RetryAttempts, BaseDelay: time.Duration(spec.RetryBase),
		MaxDelay: time.Duration(spec.RetryMax), DialTimeout: sessionTimeout,
		Seed: int64(spec.Attempt)<<16 | int64(spec.Worker),
	}
	links := make([]*transport.Conn, spec.Workers)
	links[0] = conn
	closePeers := func() {
		for w := 1; w < len(links); w++ {
			if links[w] != nil {
				links[w].Close()
			}
		}
	}
	for w := 1; w < spec.Worker; w++ {
		peer, err := transport.DialRetry(spec.Addrs[w-1],
			transport.Hello{RunID: spec.RunID, From: spec.Worker, Purpose: transport.PurposePeer,
				Epoch: spec.Attempt, HB: hb},
			rp, nil)
		if err != nil {
			closePeers()
			s.countFailed()
			failSessionInfra(conn, fmt.Errorf("dialing peer worker %d: %w", w, err))
			return
		}
		peer.StartHeartbeat(hb)
		links[w] = peer
	}
	for need := spec.Workers - 1 - spec.Worker; need > 0; need-- {
		select {
		case d := <-rdv:
			if d.from <= spec.Worker || d.from >= spec.Workers || links[d.from] != nil {
				d.conn.Close()
				closePeers()
				s.countFailed()
				failSession(conn, fmt.Errorf("unexpected peer link from worker %d", d.from))
				return
			}
			links[d.from] = d.conn
		case <-time.After(sessionTimeout):
			closePeers()
			s.countFailed()
			failSessionInfra(conn, fmt.Errorf("timed out waiting for %d peer link(s)", need))
			return
		}
	}
	s.registerSession(&sessionInfo{
		runID: spec.RunID, job: spec.Job, worker: spec.Worker, attempt: spec.Attempt,
		started: time.Now(), links: links,
	})

	var store *sessionStore
	if spec.Shared && plan.dopts.Recovery != nil {
		store = newSessionStore(conn, sessionTimeout)
		rec := *plan.dopts.Recovery
		rec.Store = store
		plan.dopts.Recovery = &rec
		defer store.close()
	}

	bye := make(chan struct{}, 1)
	plane := dataflow.NewNetPlane(dataflow.NetConfig{
		Self: spec.Worker, Workers: spec.Workers, Place: spec.Place, Links: links,
		OnPeerMsg: func(from int, m transport.Msg) {
			if from != 0 {
				return
			}
			switch m.Kind {
			case kindBye:
				select {
				case bye <- struct{}{}:
				default:
				}
			case kindCkptResp:
				if store != nil {
					store.dispatch(m)
				}
			}
		},
	})
	dopts := plan.dopts
	dopts.Net = plane

	// From here every link belongs to the plane; session messages ride the
	// job link alongside data (the coordinator's OnPeerMsg sorts them out).
	if err := conn.WriteMsg(&transport.Msg{Kind: kindReady}); err != nil {
		plane.Shutdown()
		closePeers()
		conn.Close()
		return
	}

	metrics, runErr := dataflow.Run(plan.topo, dopts)
	if runErr != nil {
		s.countFailed()
		infra := errors.Is(runErr, dataflow.ErrLink) || errors.Is(runErr, transport.ErrPeerLost)
		sendFailed(conn, runErr, infra)
	} else if body, err := json.Marshal(plane.LocalSnapshot(metrics)); err != nil {
		sendFailed(conn, err, false)
	} else {
		conn.WriteMsg(&transport.Msg{Kind: kindDone, Payload: body})
	}

	// Hold the session open until the coordinator is done with the links:
	// late recovery rounds may still need this worker's replay buffers.
	if runErr == nil {
		select {
		case <-bye:
		case <-time.After(sessionTimeout):
		}
	}
	plane.Shutdown()
	closePeers()
	conn.Close()
}

func (s *WorkerServer) countFailed() {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
}

// readJob reads the job spec off a fresh job connection.
func (s *WorkerServer) readJob(conn *transport.Conn) (*jobSpec, error) {
	m, err := readSessionMsg(conn, sessionTimeout)
	if err != nil {
		return nil, fmt.Errorf("reading job spec: %w", err)
	}
	if m.Kind != kindJob {
		return nil, fmt.Errorf("expected a job spec, got kind %d", m.Kind)
	}
	var spec jobSpec
	if err := json.Unmarshal(m.Payload, &spec); err != nil {
		return nil, fmt.Errorf("decoding job spec: %w", err)
	}
	if spec.Workers < 2 || spec.Worker < 1 || spec.Worker >= spec.Workers {
		return nil, fmt.Errorf("job spec places this process at %d of %d", spec.Worker, spec.Workers)
	}
	if len(spec.Addrs) != spec.Workers-1 {
		return nil, fmt.Errorf("job spec has %d addresses for %d workers", len(spec.Addrs), spec.Workers)
	}
	return &spec, nil
}

// sessionStore is the worker-side client of the coordinator-served shared
// checkpoint store: Put/Get become request/response exchanges on the job
// link (requests from any goroutine — WriteMsg serializes; responses arrive
// through the plane's OnPeerMsg and are matched by request id).
type sessionStore struct {
	conn    *transport.Conn
	timeout time.Duration

	mu      sync.Mutex
	next    int64
	pending map[int64]chan ckptReply
	closed  chan struct{}
	done    bool
}

type ckptReply struct {
	status int64
	body   []byte
}

func newSessionStore(conn *transport.Conn, timeout time.Duration) *sessionStore {
	return &sessionStore{
		conn: conn, timeout: timeout,
		pending: make(map[int64]chan ckptReply),
		closed:  make(chan struct{}),
	}
}

func (ss *sessionStore) close() {
	ss.mu.Lock()
	if !ss.done {
		ss.done = true
		close(ss.closed)
	}
	ss.mu.Unlock()
}

// dispatch routes one kindCkptResp from the plane's read loop to its waiter.
// The payload is copied here: it aliases the connection's read buffer.
func (ss *sessionStore) dispatch(m transport.Msg) {
	ss.mu.Lock()
	ch := ss.pending[m.B]
	delete(ss.pending, m.B)
	ss.mu.Unlock()
	if ch != nil {
		ch <- ckptReply{status: m.A, body: append([]byte(nil), m.Payload...)}
	}
}

func (ss *sessionStore) call(kind byte, component string, task int, payload []byte) (ckptReply, error) {
	ch := make(chan ckptReply, 1)
	ss.mu.Lock()
	ss.next++
	id := ss.next
	ss.pending[id] = ch
	ss.mu.Unlock()
	drop := func() {
		ss.mu.Lock()
		delete(ss.pending, id)
		ss.mu.Unlock()
	}
	err := ss.conn.WriteMsg(&transport.Msg{Kind: kind, Stream: component, A: int64(task), B: id, Payload: payload})
	if err != nil {
		drop()
		return ckptReply{}, fmt.Errorf("shared store request: %w", err)
	}
	select {
	case r := <-ch:
		return r, nil
	case <-ss.closed:
		drop()
		return ckptReply{}, fmt.Errorf("shared store: session closed")
	case <-time.After(ss.timeout):
		drop()
		return ckptReply{}, fmt.Errorf("shared store: no response within %v", ss.timeout)
	}
}

func (ss *sessionStore) Put(component string, task int, ck *recovery.Checkpoint) error {
	r, err := ss.call(kindCkptPut, component, task, recovery.AppendCheckpoint(nil, ck))
	if err != nil {
		return err
	}
	if r.status != ckptOK {
		return fmt.Errorf("shared store put %s/%d: %s", component, task, r.body)
	}
	return nil
}

func (ss *sessionStore) Get(component string, task int) (*recovery.Checkpoint, bool, error) {
	r, err := ss.call(kindCkptGet, component, task, nil)
	if err != nil {
		return nil, false, err
	}
	switch r.status {
	case ckptMissing:
		return nil, false, nil
	case ckptOK:
		ck, _, err := recovery.DecodeCheckpoint(r.body)
		if err != nil {
			return nil, false, fmt.Errorf("shared store get %s/%d: %w", component, task, err)
		}
		return ck, true, nil
	default:
		return nil, false, fmt.Errorf("shared store get %s/%d: %s", component, task, r.body)
	}
}
