// Worker side of a cluster session (see cluster.go for the protocol). A
// WorkerServer accepts coordinator and peer connections, rebuilds the job's
// plan from the cluster-job registry, runs its share of the topology and
// reports metrics back. One server hosts any number of concurrent sessions,
// keyed by run id.
package squall

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"squall/internal/dataflow"
	"squall/internal/transport"
)

// WorkerServer hosts cluster sessions on one listener.
type WorkerServer struct {
	ln net.Listener

	mu       sync.Mutex
	sessions map[string]chan peerDelivery // runID -> rendezvous for peer links
	parked   map[string][]peerDelivery    // peer links that beat their job spec
	active   int
	served   int64
}

// peerDelivery hands an accepted worker->worker connection to its session.
type peerDelivery struct {
	from int
	conn *transport.Conn
}

// NewWorkerServer wraps a listener; call Serve to start accepting.
func NewWorkerServer(ln net.Listener) *WorkerServer {
	return &WorkerServer{
		ln:       ln,
		sessions: make(map[string]chan peerDelivery),
		parked:   make(map[string][]peerDelivery),
	}
}

// ServeWorker accepts cluster connections on ln until it is closed. Each
// job connection runs its session on its own goroutine; the call returns
// the listener's accept error.
func ServeWorker(ln net.Listener) error { return NewWorkerServer(ln).Serve() }

// Serve runs the accept loop until the listener closes.
func (s *WorkerServer) Serve() error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return err
		}
		go s.handshake(nc)
	}
}

func (s *WorkerServer) handshake(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn := transport.NewConn(nc)
	h, err := conn.ReadHello(sessionTimeout)
	if err != nil {
		conn.Close()
		return
	}
	switch h.Purpose {
	case transport.PurposeJob:
		go s.runSession(conn, h)
	case transport.PurposePeer:
		s.deliverPeer(h, conn)
	default:
		conn.Close()
	}
}

// deliverPeer routes an accepted peer link to its session, parking it when
// the session's own job spec has not arrived yet (job and peer connections
// race — the coordinator fans specs out concurrently).
func (s *WorkerServer) deliverPeer(h transport.Hello, conn *transport.Conn) {
	d := peerDelivery{from: h.From, conn: conn}
	s.mu.Lock()
	if ch, ok := s.sessions[h.RunID]; ok {
		s.mu.Unlock()
		select {
		case ch <- d:
		default:
			conn.Close() // session's rendezvous full: protocol violation
		}
		return
	}
	s.parked[h.RunID] = append(s.parked[h.RunID], d)
	s.mu.Unlock()
}

// openRendezvous claims the peer-delivery channel for one run, draining any
// links that arrived early.
func (s *WorkerServer) openRendezvous(runID string, capacity int) (chan peerDelivery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sessions[runID]; dup {
		return nil, fmt.Errorf("run %q already has a session here", runID)
	}
	ch := make(chan peerDelivery, capacity)
	for _, d := range s.parked[runID] {
		ch <- d
	}
	delete(s.parked, runID)
	s.sessions[runID] = ch
	s.active++
	s.served++
	return ch, nil
}

func (s *WorkerServer) closeRendezvous(runID string) {
	s.mu.Lock()
	ch := s.sessions[runID]
	delete(s.sessions, runID)
	s.active--
	s.mu.Unlock()
	if ch != nil {
		for {
			select {
			case d := <-ch:
				d.conn.Close()
			default:
				return
			}
		}
	}
}

// Healthz returns an HTTP handler reporting liveness and session counts —
// the probe target for cmd/squalld's -healthz listener.
func (s *WorkerServer) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		body, _ := json.Marshal(map[string]any{
			"ok": true, "active_sessions": s.active, "served_sessions": s.served,
		})
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
}

// failSession reports a setup error to the coordinator before the plane
// exists.
func failSession(conn *transport.Conn, err error) {
	conn.WriteMsg(&transport.Msg{Kind: kindFailed, Payload: []byte(err.Error())})
	conn.Close()
}

// runSession executes one worker's share of a cluster run. conn is the job
// link to the coordinator; this goroutine is its only reader until the
// NetPlane takes over.
func (s *WorkerServer) runSession(conn *transport.Conn, h transport.Hello) {
	spec, err := s.readJob(conn)
	if err != nil {
		failSession(conn, err)
		return
	}
	if spec.RunID == "" {
		spec.RunID = h.RunID
	}

	build, ok := lookupClusterJob(spec.Job)
	if !ok {
		failSession(conn, fmt.Errorf("cluster job %q is not registered in this binary", spec.Job))
		return
	}
	query, opt, err := build(spec.Params)
	if err != nil {
		failSession(conn, fmt.Errorf("building cluster job %q: %w", spec.Job, err))
		return
	}
	opt.Cluster = nil // the worker runs its local share, it does not recurse
	if opt.NoSerialize {
		failSession(conn, fmt.Errorf("cluster job %q asks for NoSerialize", spec.Job))
		return
	}
	plan, err := query.plan(opt)
	if err != nil {
		failSession(conn, fmt.Errorf("planning cluster job %q: %w", spec.Job, err))
		return
	}

	// Assemble the links: the job connection is the coordinator link, lower
	// peers are dialed, higher peers arrive through the rendezvous.
	rdv, err := s.openRendezvous(spec.RunID, spec.Workers)
	if err != nil {
		failSession(conn, err)
		return
	}
	defer s.closeRendezvous(spec.RunID)
	links := make([]*transport.Conn, spec.Workers)
	links[0] = conn
	closePeers := func() {
		for w := 1; w < len(links); w++ {
			if links[w] != nil {
				links[w].Close()
			}
		}
	}
	for w := 1; w < spec.Worker; w++ {
		peer, err := transport.Dial(spec.Addrs[w-1], sessionTimeout,
			transport.Hello{RunID: spec.RunID, From: spec.Worker, Purpose: transport.PurposePeer})
		if err != nil {
			closePeers()
			failSession(conn, fmt.Errorf("dialing peer worker %d: %w", w, err))
			return
		}
		links[w] = peer
	}
	for need := spec.Workers - 1 - spec.Worker; need > 0; need-- {
		select {
		case d := <-rdv:
			if d.from <= spec.Worker || d.from >= spec.Workers || links[d.from] != nil {
				d.conn.Close()
				closePeers()
				failSession(conn, fmt.Errorf("unexpected peer link from worker %d", d.from))
				return
			}
			links[d.from] = d.conn
		case <-time.After(sessionTimeout):
			closePeers()
			failSession(conn, fmt.Errorf("timed out waiting for %d peer link(s)", need))
			return
		}
	}

	bye := make(chan struct{}, 1)
	plane := dataflow.NewNetPlane(dataflow.NetConfig{
		Self: spec.Worker, Workers: spec.Workers, Place: spec.Place, Links: links,
		OnPeerMsg: func(from int, m transport.Msg) {
			if from == 0 && m.Kind == kindBye {
				select {
				case bye <- struct{}{}:
				default:
				}
			}
		},
	})
	dopts := plan.dopts
	dopts.Net = plane

	// From here every link belongs to the plane; session messages ride the
	// job link alongside data (the coordinator's OnPeerMsg sorts them out).
	if err := conn.WriteMsg(&transport.Msg{Kind: kindReady}); err != nil {
		plane.Shutdown()
		closePeers()
		conn.Close()
		return
	}

	metrics, runErr := dataflow.Run(plan.topo, dopts)
	if runErr != nil {
		conn.WriteMsg(&transport.Msg{Kind: kindFailed, Payload: []byte(runErr.Error())})
	} else if body, err := json.Marshal(plane.LocalSnapshot(metrics)); err != nil {
		conn.WriteMsg(&transport.Msg{Kind: kindFailed, Payload: []byte(err.Error())})
	} else {
		conn.WriteMsg(&transport.Msg{Kind: kindDone, Payload: body})
	}

	// Hold the session open until the coordinator is done with the links:
	// late recovery rounds may still need this worker's replay buffers.
	if runErr == nil {
		select {
		case <-bye:
		case <-time.After(sessionTimeout):
		}
	}
	plane.Shutdown()
	closePeers()
	conn.Close()
}

// readJob reads the job spec off a fresh job connection.
func (s *WorkerServer) readJob(conn *transport.Conn) (*jobSpec, error) {
	m, err := readSessionMsg(conn, sessionTimeout)
	if err != nil {
		return nil, fmt.Errorf("reading job spec: %w", err)
	}
	if m.Kind != kindJob {
		return nil, fmt.Errorf("expected a job spec, got kind %d", m.Kind)
	}
	var spec jobSpec
	if err := json.Unmarshal(m.Payload, &spec); err != nil {
		return nil, fmt.Errorf("decoding job spec: %w", err)
	}
	if spec.Workers < 2 || spec.Worker < 1 || spec.Worker >= spec.Workers {
		return nil, fmt.Errorf("job spec places this process at %d of %d", spec.Worker, spec.Workers)
	}
	if len(spec.Addrs) != spec.Workers-1 {
		return nil, fmt.Errorf("job spec has %d addresses for %d workers", len(spec.Addrs), spec.Workers)
	}
	return &spec, nil
}
