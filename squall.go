// Package squall is a Go reproduction of Squall (Vitorovic et al., PVLDB
// 9(10), 2016): a scalable online query engine running complex analytics
// with skew-resilient, adaptive operators.
//
// The public API mirrors the paper's interfaces:
//
//   - The imperative interface (JoinQuery) gives full control over the
//     physical plan: partitioning scheme (Hash-, Random- or
//     Hybrid-Hypercube), local join algorithm (traditional or DBToaster) and
//     per-component parallelism.
//   - The declarative interface (RunSQL / Compile in sql.go) parses a SQL
//     subset, builds a logical plan, and lets the optimizer pick the
//     physical plan.
//
// Execution happens on the internal dataflow engine (a Storm substitute):
// every component runs as a set of tasks, tuples are serialized across
// component boundaries, and per-task metrics (load, skew degree, replication
// factor) are reported exactly as defined in the paper's §6.
package squall

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"squall/internal/adaptive"
	"squall/internal/core"
	"squall/internal/dataflow"
	"squall/internal/dbtoaster"
	"squall/internal/expr"
	"squall/internal/ft"
	"squall/internal/ops"
	"squall/internal/recovery"
	"squall/internal/slab"
	"squall/internal/types"
	"squall/internal/wire"
)

// Re-exported aliases so applications only import this package.
type (
	// Tuple is a row of values.
	Tuple = types.Tuple
	// Value is one SQL value.
	Value = types.Value
	// Schema names and types columns.
	Schema = types.Schema
	// SchemeKind selects a hypercube partitioning scheme.
	SchemeKind = core.SchemeKind
	// LocalJoinKind selects the per-machine join algorithm.
	LocalJoinKind = ops.LocalJoinKind
	// KeySlot identifies a join-key usage for skew declarations.
	KeySlot = core.KeySlot
	// ColRef names an expression over one relation.
	ColRef = dbtoaster.ColRef
	// AggKind selects COUNT, SUM or AVG.
	AggKind = ops.AggKind
	// RunMetrics carries the per-component execution metrics.
	RunMetrics = dataflow.RunMetrics
	// FaultPlan injects one deterministic joiner-task kill (live fault
	// tolerance, §5): the task is killed at a quiesced point once it has
	// received AfterTuples tuples, then recovered from a peer or checkpoint.
	FaultPlan = dataflow.FaultPlan
	// CheckpointStore persists joiner checkpoints for the recovery subsystem.
	CheckpointStore = recovery.CheckpointStore
)

// NewMemCheckpointStore returns an in-memory checkpoint store (the default).
func NewMemCheckpointStore() CheckpointStore { return recovery.NewMemStore() }

// NewDiskCheckpointStore returns a checkpoint store persisting one file per
// joiner task under dir — the disk-recovery baseline of the paper's §5
// comparison ("network accesses are several times faster than disk").
func NewDiskCheckpointStore(dir string) (CheckpointStore, error) {
	return recovery.NewDiskStore(dir)
}

// Scheme and local-join constants, re-exported.
const (
	HashHypercube   = core.HashHypercube
	RandomHypercube = core.RandomHypercube
	HybridHypercube = core.HybridHypercube

	Traditional = ops.Traditional
	DBToaster   = ops.DBToaster

	Count = ops.Count
	Sum   = ops.Sum
	Avg   = ops.Avg
)

// Source is one input relation: a schema, a streaming generator, an
// estimated size (relative sizes drive the hypercube optimizer) and an
// optional co-located pipeline (selection/projection pushed into the data
// source component, as Squall's optimizer does).
type Source struct {
	Name   string
	Schema *Schema
	Spout  dataflow.SpoutFactory
	Size   int64
	Pre    ops.Pipeline
	// raw marks Spout as execution-ready: plan() installs it verbatim instead
	// of wrapping it in the packed/boxed adapters (and Pre is expected to be
	// already applied inside it). The serving engine sets it on the fan-out
	// taps it substitutes for shared sources, whose frames arrive
	// pre-encoded.
	raw bool
}

// AggSpec describes the final aggregation of a join query. References are
// per input relation (post-Pre schema).
type AggSpec struct {
	GroupBy []ColRef
	Kind    AggKind
	Sum     *ColRef
}

// JoinQuery is the imperative physical-plan interface: a multi-way join with
// a chosen partitioning scheme and local algorithm, optionally followed by
// an aggregation.
type JoinQuery struct {
	Sources []Source
	Graph   *expr.JoinGraph
	Scheme  SchemeKind
	// Skewed declares skewed join keys for the Hybrid-Hypercube; TopFreq
	// feeds the offline load model (§3.4).
	Skewed  map[KeySlot]bool
	TopFreq map[KeySlot]float64
	// Machines is the joiner budget (the scheme may use fewer).
	Machines int
	Local    LocalJoinKind
	Agg      *AggSpec
	// Post transforms each join result row (ignored when Agg is set).
	Post ops.Pipeline
	// ForceDeltaJoin disables the aggregate-view fast path: the joiner
	// materializes tuple-level views (DBToaster) or raw indexes
	// (Traditional) and ships delta rows to a downstream aggregation. This
	// reproduces the paper's memory behaviour — tuple-level state grows with
	// received load, so a skewed Hash-Hypercube task can exhaust its budget
	// (Figure 7's "Memory Overflow") — at the cost of shipping every delta.
	ForceDeltaJoin bool
	// AdaptiveJoin runs a 2-way join as the live Adaptive 1-Bucket operator
	// (§5): tuples route by a rows x cols matrix over the Machines budget,
	// and a runtime control plane reshapes the matrix as the observed
	// |R| : |S| ratio drifts, migrating joiner state between tasks. The
	// partitioning Scheme is bypassed on the joiner edges, and the
	// aggregate-view fast path is disabled (aggregate views cannot migrate).
	// Set via the Adaptive method; tune with Adapt.
	AdaptiveJoin bool
	// Adapt tunes the adaptive execution (nil = defaults).
	Adapt *AdaptConfig
}

// AdaptConfig tunes the live Adaptive 1-Bucket execution.
type AdaptConfig struct {
	// InitialRows x InitialCols is the starting matrix; zero means the
	// offline optimizer's choice for the declared Source sizes.
	InitialRows, InitialCols int
	// ReportEvery, MinGain, MinObserved and MaxReshapes map onto
	// dataflow.AdaptivePolicy (zero = that policy's defaults).
	ReportEvery int
	MinGain     float64
	MinObserved int64
	MaxReshapes int
	// Static freezes the initial matrix — the fixed-matrix baseline an
	// adaptive run is measured against, on identical transport.
	Static bool
}

// Adaptive toggles the live Adaptive 1-Bucket execution and returns q, so a
// query can be built as experiments.Query(...).Adaptive(true).
func (q *JoinQuery) Adaptive(on bool) *JoinQuery {
	q.AdaptiveJoin = on
	return q
}

// Options tune one execution.
type Options struct {
	// Seed drives all randomized routing (shuffle/random partitioning).
	Seed int64
	// SourcePar is the parallelism of each source component (default 1).
	SourcePar int
	// FinalPar is the parallelism of the final aggregation (default 1).
	FinalPar int
	// MemLimitPerTask aborts with a memory-overflow error when a joiner
	// task's state exceeds this many bytes (0 = unlimited).
	MemLimitPerTask int
	// CollectLimit caps collected result rows (0 = collect everything);
	// overflowing rows are counted, not stored.
	CollectLimit int
	// NoSerialize disables the per-hop wire simulation (micro-benchmarks).
	NoSerialize bool
	// ChannelBuf overrides the per-task inbox depth.
	ChannelBuf int
	// BatchSize caps tuples per transport envelope (default
	// dataflow.DefaultBatchSize; 1 = legacy per-tuple transport).
	BatchSize int
	// LegacyState opts out of the compact slab-backed operator state (PR 3)
	// and runs joins and aggregations on the pre-slab map layout — the
	// comparison baseline squallbench's `state` experiment measures against.
	// Default off: compact state is the engine default.
	LegacyState bool
	// PackedExec controls the packed-row execution path (PR 5): sources
	// encode each tuple once and selections, projections, routing, transport
	// and slab inserts all run on the encoded bytes — a tuple crossing
	// source -> select/project -> hash-route -> join/agg insert is decoded
	// zero times unless an operator needs a typed value. Default on
	// (PackedDefault == PackedOn); set PackedOff to run the legacy boxed
	// tuple pipeline, the differential/benchmark baseline. NoSerialize runs
	// and adaptive source edges always use the boxed path (there the
	// encoding either must not exist or must stay tuple-shaped for the
	// migration protocol).
	PackedExec PackedMode
	// VecExec controls the vectorized frame execution path (PR 6): producers
	// append a column-offset footer to every packed frame and frame-capable
	// operators (select/project pipelines, aggregations, merges, the sink)
	// consume whole frames with selection-vector kernels instead of row-at-a-
	// time calls. Default on whenever packed execution runs (VecDefault ==
	// VecOn); set VecOff to reproduce the PR 5 packed-row transport bit for
	// bit — the differential/benchmark baseline. Meaningless without packed
	// execution: boxed runs never carry frames.
	VecExec VecMode
	// Recovery enables the live fault-tolerance subsystem (PR 4) on the
	// joiner: periodic state checkpoints, panic capture, and kill recovery
	// by peer refetch (when the scheme replicates a relation) or checkpoint
	// + exactly-once replay. The aggregate-view fast path is disabled while
	// recovery is on (aggregate views cannot be exported per relation).
	// Panic capture requires a non-adaptive run: a reshape barrier already
	// in the panicking task's inbox cannot be reconciled with its state
	// loss, so adaptive runs surface operator panics as run errors (injected
	// kills recover on adaptive runs too — they serialize with reshapes).
	Recovery *RecoveryOptions
	// FaultPlan injects one deterministic joiner-task kill; setting it
	// enables Recovery with defaults if Recovery is nil.
	FaultPlan *FaultPlan
	// Cluster, when set, spreads the topology over squalld worker processes
	// connected by TCP: this process becomes the coordinator (worker 0) and
	// drives the run end to end (see cluster.go). The query must be
	// registered as a cluster job so every worker can rebuild the identical
	// plan. Incompatible with NoSerialize.
	Cluster *ClusterSpec
	// Tier, when set, runs the joiner's slab state tiered (PR 10): arenas
	// seal cold segments into checksummed, append-frozen blobs that spill to
	// a segment store under memory pressure and fault back in on demand, so
	// a join whose state exceeds MemCapBytes keeps running instead of
	// aborting. Ignored with LegacyState (the map layouts have no arenas)
	// and by the aggregate-view fast path.
	Tier *TierOptions
}

// TierOptions tune the tiered state layer (Options.Tier).
type TierOptions struct {
	// SegmentRows is the rows per sealed segment (default 1024; rounded to a
	// multiple of 64).
	SegmentRows int
	// CacheSegments caps how many spilled segments one arena keeps faulted
	// in at a time (default 4).
	CacheSegments int
	// MemCapBytes, when > 0, is the resident-state budget driving the
	// degradation ladder: sealed segments spill as residency approaches the
	// cap, sources throttle when spilling cannot keep up, and (under the
	// serving engine) new registrations are rejected at the cap. Unlike
	// MemLimitPerTask — which aborts — the cap degrades.
	MemCapBytes int64
	// SpillDir, when set (and Store is nil), spills segments to files in
	// this directory. With both empty, segments spill to an in-process
	// store: residency still drops, durability does not.
	SpillDir string
	// Store overrides the segment store (tests, custom media).
	Store slab.SegmentStore

	// pressure, when set, is a shared ladder injected by the serving engine
	// (EngineOptions.MemCapBytes): every query's arenas charge it instead of
	// a per-run ladder built from MemCapBytes.
	pressure *slab.Pressure
}

// PackedMode selects the execution path (Options.PackedExec).
type PackedMode uint8

const (
	// PackedDefault is the zero value: packed execution on.
	PackedDefault PackedMode = iota
	// PackedOn forces the packed-row path explicitly.
	PackedOn
	// PackedOff opts out: the boxed tuple pipeline end to end.
	PackedOff
)

// VecMode selects the vectorized frame path (Options.VecExec).
type VecMode uint8

const (
	// VecDefault is the zero value: vectorized execution on (with packed).
	VecDefault VecMode = iota
	// VecOn forces the vectorized frame path explicitly.
	VecOn
	// VecOff opts out: packed rows delivered one at a time, no footers.
	VecOff
)

// RecoveryOptions tune the fault-tolerance subsystem.
type RecoveryOptions struct {
	// CheckpointEvery is the number of applied tuples between a joiner
	// task's checkpoints (default 512).
	CheckpointEvery int
	// Store persists checkpoints; nil means an in-memory store.
	Store CheckpointStore
	// DisablePeer forces the checkpoint route even for replicated relations
	// — the disk-recovery baseline the §5 claim is measured against.
	DisablePeer bool
}

// Result of a query execution.
type Result struct {
	// Rows are the collected output rows (aggregates, or join results),
	// capped by CollectLimit.
	Rows []Tuple
	// RowCount is the total number of output rows, including uncollected.
	RowCount int64
	// Metrics are the dataflow metrics; Hypercube is the scheme used.
	Metrics   *RunMetrics
	Hypercube *core.Hypercube
	// JoinerComponent is the metrics key of the join component.
	JoinerComponent string
	// Pressure is the end-of-run snapshot of the tiered-state degradation
	// ladder (nil unless the run set Tier with a MemCapBytes): peak resident
	// bytes against the cap, spill/fault/quarantine counts and throttle
	// events. ResidentBytes reads zero here — finished tasks refund their
	// charges — so cap compliance is judged by PeakResident.
	Pressure *slab.PressureStats
}

// SortedRows returns collected rows in lexicographic order.
func (r *Result) SortedRows() []Tuple {
	rows := make([]Tuple, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
	return rows
}

// limitSink gathers up to limit rows and counts the rest.
type limitSink struct {
	mu    sync.Mutex
	rows  []Tuple
	count int64
	limit int
	// notify, when set, receives every materialized result batch as it
	// arrives — the serving engine's subscription feed. With a notify hook
	// every row is materialized (subscribers see the full delta stream) even
	// when limit caps what the sink retains. Called outside the sink lock.
	notify func(rows []Tuple)
}

// snapshot copies the retained rows (a subscription's replay prefix).
func (s *limitSink) snapshot() []Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Tuple(nil), s.rows...)
}

// rowCount reads the running output count (registry introspection).
func (s *limitSink) rowCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *limitSink) factory() dataflow.BoltFactory {
	return func(task, ntasks int) dataflow.Bolt { return sinkBolt{s} }
}

// sinkBolt collects rows on both execution paths. The packed path
// (ExecuteRow) counts encoded rows without decoding and only materializes
// the ones actually kept — with a CollectLimit, the terminal decode cost of
// a run drops to O(limit).
type sinkBolt struct{ s *limitSink }

func (b sinkBolt) Execute(in dataflow.Input, _ *dataflow.Collector) error {
	s := b.s
	s.mu.Lock()
	s.count++
	if s.limit <= 0 || len(s.rows) < s.limit {
		s.rows = append(s.rows, in.Tuple)
	}
	s.mu.Unlock()
	if s.notify != nil {
		s.notify([]Tuple{in.Tuple})
	}
	return nil
}

func (b sinkBolt) ExecuteRow(in dataflow.RowInput, _ *dataflow.Collector) error {
	s := b.s
	var tup Tuple
	s.mu.Lock()
	s.count++
	if s.limit <= 0 || len(s.rows) < s.limit {
		tup = in.Cur.Tuple(nil)
		s.rows = append(s.rows, tup)
	} else if s.notify != nil {
		tup = in.Cur.Tuple(nil)
	}
	s.mu.Unlock()
	if s.notify != nil && tup != nil {
		s.notify([]Tuple{tup})
	}
	return nil
}

// ExecuteFrame bulk-counts a whole frame under one lock and stops decoding
// the moment the collect limit is reached — a full run with a small
// CollectLimit touches O(limit) rows, not O(output).
func (b sinkBolt) ExecuteFrame(in dataflow.FrameInput, _ *dataflow.Collector) error {
	s := b.s
	s.mu.Lock()
	s.count += int64(in.Count)
	if s.notify == nil && s.limit > 0 && len(s.rows) >= s.limit {
		s.mu.Unlock()
		return nil
	}
	var batch []Tuple
	var cur wire.Cursor
	_, _, err := wire.EachRow(in.Frame, &cur, func(_ []byte) error {
		tup := cur.Tuple(nil)
		if s.notify != nil {
			batch = append(batch, tup)
		}
		if s.limit <= 0 || len(s.rows) < s.limit {
			s.rows = append(s.rows, tup)
		} else if s.notify == nil {
			return errSinkFull
		}
		return nil
	})
	s.mu.Unlock()
	if s.notify != nil && len(batch) > 0 {
		s.notify(batch)
	}
	if err == errSinkFull {
		return nil
	}
	return err
}

// errSinkFull stops the frame walk early once the collect limit is hit.
var errSinkFull = errors.New("squall: sink collect limit reached")

func (b sinkBolt) Finish(*dataflow.Collector) error { return nil }

// BuildScheme constructs the query's hypercube without running it (the
// paper's "hypercube properties" analyses).
func (q *JoinQuery) BuildScheme() (*core.Hypercube, error) {
	spec, err := q.spec()
	if err != nil {
		return nil, err
	}
	return core.BuildScheme(q.Scheme, spec, q.Machines)
}

func (q *JoinQuery) spec() (core.JoinSpec, error) {
	if q.Graph == nil {
		return core.JoinSpec{}, fmt.Errorf("squall: JoinQuery.Graph is nil")
	}
	if len(q.Sources) != q.Graph.NumRels {
		return core.JoinSpec{}, fmt.Errorf("squall: %d sources for %d relations", len(q.Sources), q.Graph.NumRels)
	}
	spec := core.JoinSpec{
		Graph:   q.Graph,
		Names:   make([]string, len(q.Sources)),
		Sizes:   make([]int64, len(q.Sources)),
		Skewed:  q.Skewed,
		TopFreq: q.TopFreq,
	}
	for i, s := range q.Sources {
		if s.Name == "" || s.Spout == nil {
			return core.JoinSpec{}, fmt.Errorf("squall: source %d needs a name and a spout", i)
		}
		spec.Names[i] = s.Name
		spec.Sizes[i] = max(s.Size, int64(1))
	}
	return spec, nil
}

// queryPlan is a fully built execution: the dataflow topology plus the
// options that run it, and the handles needed to assemble a Result
// afterwards. Building the plan is separated from running it so a cluster
// worker can rebuild the coordinator's exact execution from the query alone
// (see cluster.go).
type queryPlan struct {
	topo   *dataflow.Topology
	dopts  dataflow.Options
	sink   *limitSink
	hc     *core.Hypercube
	joiner string
	// pressure is the run's ladder (nil when untiered or uncapped), kept so
	// the Result can snapshot its counters after the run.
	pressure *slab.Pressure
	// components lists every component name in topology order — the
	// placement domain for cluster runs.
	components []string
}

// result assembles the Result for a finished run of this plan.
func (p *queryPlan) result(metrics *RunMetrics) *Result {
	r := &Result{
		Rows:            p.sink.rows,
		RowCount:        p.sink.count,
		Metrics:         metrics,
		Hypercube:       p.hc,
		JoinerComponent: p.joiner,
	}
	if p.pressure != nil {
		ps := p.pressure.Stats()
		r.Pressure = &ps
	}
	return r
}

// Run executes the query to completion and returns rows plus metrics. The
// topology is: one spout per source (with its Pre pipeline co-located), a
// joiner component partitioned by the hypercube scheme, and — when Agg is
// set — a merger component combining the joiners' partial aggregates.
// When opt.Cluster is set the same topology is spread over squalld worker
// processes instead (see cluster.go).
func (q *JoinQuery) Run(opt Options) (*Result, error) {
	if opt.Cluster != nil {
		return q.runCluster(opt)
	}
	p, err := q.plan(opt)
	if err != nil {
		return nil, err
	}
	metrics, runErr := dataflow.Run(p.topo, p.dopts)
	return p.result(metrics), runErr
}

// plan translates the query into a ready-to-run dataflow topology.
func (q *JoinQuery) plan(opt Options) (*queryPlan, error) {
	hc, err := q.BuildScheme()
	if err != nil {
		return nil, err
	}
	if opt.SourcePar <= 0 {
		opt.SourcePar = 1
	}
	if opt.FinalPar <= 0 {
		opt.FinalPar = 1
	}

	// Packed execution (PR 5): on by default, off for NoSerialize runs (the
	// encoding must not exist there). Sources stay boxed on adaptive runs —
	// the adaptive edges' coordinate buffers and migration protocol are
	// tuple-shaped, so a packed source would pay encode+decode per tuple
	// for nothing — but the joiner itself stays frame-capable.
	packed := opt.PackedExec != PackedOff && !opt.NoSerialize
	b := dataflow.NewBuilder()
	relOf := map[string]int{}
	for i, s := range q.Sources {
		spout := ops.PipedSpout(s.Spout, s.Pre)
		if s.raw {
			spout = s.Spout
		} else if packed && !q.AdaptiveJoin {
			spout = ops.PackedSpout(s.Spout, s.Pre)
		}
		b.Spout(s.Name, opt.SourcePar, spout)
		relOf[s.Name] = i
	}

	sink := &limitSink{limit: opt.CollectLimit}
	const joiner = "joiner"
	joinerPar := hc.Machines()
	var policy *dataflow.AdaptivePolicy
	if q.AdaptiveJoin {
		if policy, err = q.adaptivePolicy(joiner); err != nil {
			return nil, err
		}
		// The matrix may grow into the whole budget, so the joiner runs at
		// full parallelism rather than the static scheme's choice.
		joinerPar = q.Machines
	}
	if opt.FaultPlan != nil && opt.Recovery == nil {
		opt.Recovery = &RecoveryOptions{}
	}
	// Tiered state (PR 10): resolve the segment store and pressure ladder up
	// front; the join bolts below capture the config. CkStore is wired after
	// the recovery policy resolves its checkpoint store.
	var tier *slab.TierConfig
	var pressure *slab.Pressure
	if opt.Tier != nil && !opt.LegacyState {
		to := opt.Tier
		store := to.Store
		if store == nil && to.SpillDir != "" {
			ds, err := recovery.NewDiskStore(to.SpillDir)
			if err != nil {
				return nil, err
			}
			store = ds
		}
		if store == nil {
			store = recovery.NewMemStore()
		}
		if to.pressure != nil {
			pressure = to.pressure
		} else if to.MemCapBytes > 0 {
			pressure = slab.NewPressure(to.MemCapBytes)
		}
		tier = &slab.TierConfig{
			SegmentRows:   to.SegmentRows,
			Store:         store,
			CacheSegments: to.CacheSegments,
			Pressure:      pressure,
			KeyPrefix:     joiner,
		}
	}
	useAggViews := q.Agg != nil && q.Local == DBToaster && q.Graph.IsEquiOnly() &&
		!q.ForceDeltaJoin && !q.AdaptiveJoin && opt.Recovery == nil
	switch {
	case useAggViews:
		// HyLD with the aggregation inside the joiner (aggregate views).
		spec := dbtoaster.AggSpec{GroupBy: q.Agg.GroupBy, Kind: dbtoaster.AggCount}
		if q.Agg.Kind != Count {
			spec.Kind = dbtoaster.AggSum
			spec.Sum = q.Agg.Sum
		}
		b.Bolt(joiner, joinerPar, ops.AggJoinBolt(q.Graph, spec, relOf, false))
		b.Bolt("merge", opt.FinalPar, ops.MergeBolt(len(q.Agg.GroupBy), q.Agg.Kind, false, opt.LegacyState, packed))
		b.Bolt("sink", 1, sink.factory())
		b.Input("merge", joiner, mergeGrouping(len(q.Agg.GroupBy)))
		b.Input("sink", "merge", dataflow.Global())
	case q.Agg != nil:
		// Join emits delta rows; aggregation runs downstream.
		offsets := q.relOffsets()
		groupEs := make([]expr.Expr, len(q.Agg.GroupBy))
		groupCols := make([]int, len(q.Agg.GroupBy))
		for i, g := range q.Agg.GroupBy {
			col, ok := colOf(g.E)
			if !ok {
				return nil, fmt.Errorf("squall: downstream aggregation needs plain column refs in GROUP BY")
			}
			groupCols[i] = offsets[g.Rel] + col
			groupEs[i] = expr.C(groupCols[i])
		}
		var sumE expr.Expr
		if q.Agg.Sum != nil {
			col, ok := colOf(q.Agg.Sum.E)
			if !ok {
				return nil, fmt.Errorf("squall: downstream aggregation needs a plain column ref in SUM")
			}
			sumE = expr.C(offsets[q.Agg.Sum.Rel] + col)
		}
		b.Bolt(joiner, joinerPar, ops.JoinBolt(q.Graph, q.Local, relOf, nil, opt.LegacyState, packed, tier))
		b.Bolt("agg", opt.FinalPar, ops.AggBolt(groupEs, q.Agg.Kind, sumE, false, opt.LegacyState, packed))
		b.Bolt("sink", 1, sink.factory())
		b.Input("agg", joiner, dataflow.Fields(groupCols...))
		b.Input("sink", "agg", dataflow.Global())
	default:
		b.Bolt(joiner, joinerPar, ops.JoinBolt(q.Graph, q.Local, relOf, q.Post, opt.LegacyState, packed, tier))
		b.Bolt("sink", 1, sink.factory())
		b.Input("sink", joiner, dataflow.Global())
	}
	for i, s := range q.Sources {
		g := hc.GroupingFor(i)
		if q.AdaptiveJoin {
			// The executor routes adaptive edges by the live matrix; the
			// registered grouping is never consulted (and the static scheme
			// was built for a different parallelism anyway).
			g = dataflow.Shuffle()
		}
		b.Input(joiner, s.Name, g)
	}
	topo, err := b.Build()
	if err != nil {
		return nil, err
	}
	var recPolicy *dataflow.RecoveryPolicy
	if opt.Recovery != nil {
		recStore := opt.Recovery.Store
		if recStore == nil && tier != nil {
			// Resolve the default store here (rather than letting the policy
			// default it) so tiered checkpoints can reference segments in it.
			recStore = recovery.NewMemStore()
		}
		recPolicy = &dataflow.RecoveryPolicy{
			Component:       joiner,
			RelOf:           relOf,
			NumRels:         len(q.Sources),
			Store:           recStore,
			CheckpointEvery: opt.Recovery.CheckpointEvery,
			DisablePeer:     opt.Recovery.DisablePeer,
			Fault:           opt.FaultPlan,
		}
		if tier != nil {
			// Checkpoints go incremental when the checkpoint store can hold
			// sealed segments: spilling writes the checkpoint copy once, and
			// later manifests reference it instead of re-exporting the rows.
			if ss, ok := recStore.(slab.SegmentStore); ok {
				tier.CkStore = ss
			}
		}
		if !q.AdaptiveJoin {
			// The §5 plan made live: a relation is peer-recoverable at a
			// failed machine iff the scheme replicates it, and the peers are
			// the machines sharing the failed one's coordinates on the
			// relation's own dimensions. Adaptive runs leave PeersFor nil:
			// the engine derives peers from the live matrix instead.
			recPolicy.PeersFor = func(task, rel int) []int {
				plans, err := ft.RecoveryPlan(hc, task)
				if err != nil || plans[rel].Checkpoint {
					return nil
				}
				return plans[rel].Peers
			}
		}
	}
	components := make([]string, 0, len(q.Sources)+3)
	for _, s := range q.Sources {
		components = append(components, s.Name)
	}
	components = append(components, joiner)
	switch {
	case useAggViews:
		components = append(components, "merge", "sink")
	case q.Agg != nil:
		components = append(components, "agg", "sink")
	default:
		components = append(components, "sink")
	}
	return &queryPlan{
		topo: topo,
		dopts: dataflow.Options{
			Seed:            opt.Seed,
			ChannelBuf:      opt.ChannelBuf,
			BatchSize:       opt.BatchSize,
			MemLimitPerTask: opt.MemLimitPerTask,
			NoSerialize:     opt.NoSerialize,
			VecExec:         packed && opt.VecExec != VecOff,
			Adaptive:        policy,
			Recovery:        recPolicy,
			Pressure:        pressure,
		},
		sink:       sink,
		hc:         hc,
		joiner:     joiner,
		pressure:   pressure,
		components: components,
	}, nil
}

// adaptivePolicy translates the query's adaptive knobs into the dataflow
// control plane's policy, defaulting the initial matrix to the offline
// optimizer's choice for the declared source sizes.
func (q *JoinQuery) adaptivePolicy(joiner string) (*dataflow.AdaptivePolicy, error) {
	if len(q.Sources) != 2 {
		return nil, fmt.Errorf("squall: adaptive 1-Bucket execution needs exactly 2 sources, got %d", len(q.Sources))
	}
	if q.Machines < 1 {
		return nil, fmt.Errorf("squall: adaptive 1-Bucket execution needs Machines >= 1")
	}
	cfg := AdaptConfig{}
	if q.Adapt != nil {
		cfg = *q.Adapt
	}
	rows, cols := cfg.InitialRows, cfg.InitialCols
	if rows == 0 && cols == 0 {
		m := adaptive.OptimalMatrix(q.Machines,
			float64(max(q.Sources[0].Size, int64(1))), float64(max(q.Sources[1].Size, int64(1))))
		rows, cols = m.Rows, m.Cols
	}
	return &dataflow.AdaptivePolicy{
		Component:   joiner,
		RStream:     q.Sources[0].Name,
		SStream:     q.Sources[1].Name,
		InitialRows: rows,
		InitialCols: cols,
		ReportEvery: cfg.ReportEvery,
		MinGain:     cfg.MinGain,
		MinObserved: cfg.MinObserved,
		MaxReshapes: cfg.MaxReshapes,
		Static:      cfg.Static,
	}, nil
}

// relOffsets returns each relation's column offset in the concatenated join
// result row.
func (q *JoinQuery) relOffsets() []int {
	offsets := make([]int, len(q.Sources))
	off := 0
	for i, s := range q.Sources {
		offsets[i] = off
		off += s.Schema.Arity()
	}
	return offsets
}

func colOf(e expr.Expr) (int, bool) {
	if c, ok := e.(expr.Col); ok {
		return c.Index, true
	}
	return 0, false
}

// mergeGrouping routes partial rows by the group columns, or globally when
// there is no grouping.
func mergeGrouping(ngroup int) dataflow.Grouping {
	if ngroup == 0 {
		return dataflow.Global()
	}
	cols := make([]int, ngroup)
	for i := range cols {
		cols[i] = i
	}
	return dataflow.Fields(cols...)
}
