package squall_test

import (
	"errors"
	"testing"

	"squall"
	"squall/internal/dataflow"
	"squall/internal/datagen"
	"squall/internal/expr"
	"squall/internal/ops"
	"squall/internal/types"
)

// tpch9Query builds the TPCH9-Partial query (Lineitem ⋈ PartSupp ⋈ Part with
// the green-part filter) at a small scale.
func tpch9Query(scheme squall.SchemeKind, local squall.LocalJoinKind, zipf float64, machines int) *squall.JoinQuery {
	gen := datagen.NewTPCH(42, 60_000, zipf)
	graph := expr.MustJoinGraph(3,
		expr.EquiCol(0, 1, 1, 0), // L.partkey = PS.partkey
		expr.EquiCol(0, 2, 1, 1), // L.suppkey = PS.suppkey
		expr.EquiCol(0, 1, 2, 0), // L.partkey = P.partkey
	)
	partFilter := ops.Pipeline{ops.Select{P: expr.Cmp{Op: expr.Eq, L: expr.C(1), R: expr.S("green")}}}
	q := &squall.JoinQuery{
		Sources: []squall.Source{
			{Name: "LINEITEM", Schema: datagen.LineitemSchema, Spout: gen.LineitemSpout(), Size: gen.Lineitems},
			{Name: "PARTSUPP", Schema: datagen.PartSuppSchema, Spout: gen.PartSuppSpout(), Size: gen.PartSupps()},
			{Name: "PART", Schema: datagen.PartSchema, Spout: gen.PartSpout(), Size: gen.Parts() / 20, Pre: partFilter},
		},
		Graph:    graph,
		Scheme:   scheme,
		Machines: machines,
		Local:    local,
		Agg: &squall.AggSpec{
			GroupBy: []squall.ColRef{{Rel: 0, E: expr.C(2)}}, // L.suppkey
			Kind:    squall.Sum,
			Sum:     &squall.ColRef{Rel: 0, E: expr.C(4)}, // L.extendedprice
		},
	}
	if zipf > 0 {
		q.Skewed = map[squall.KeySlot]bool{squall.KeySlot{Rel: 0, Expr: expr.C(1).String()}: true}
		q.TopFreq = map[squall.KeySlot]float64{squall.KeySlot{Rel: 0, Expr: expr.C(1).String()}: gen.TopPartkeyFreq()}
	}
	return q
}

func runOrFail(t *testing.T, q *squall.JoinQuery, opt squall.Options) *squall.Result {
	t.Helper()
	res, err := q.Run(opt)
	if err != nil {
		t.Fatalf("%v/%v: %v", q.Scheme, q.Local, err)
	}
	return res
}

// aggRowsEqual compares aggregate rows with a relative tolerance on float
// columns: summation order differs across schemes and local joins, so exact
// bit equality is not expected.
func aggRowsEqual(t *testing.T, label string, got, want []squall.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, reference %d", label, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: arity %d vs %d", label, i, len(got[i]), len(want[i]))
		}
		for c := range got[i] {
			a, b := got[i][c], want[i][c]
			if a.Kind() == types.KindFloat || b.Kind() == types.KindFloat {
				af, _ := a.AsFloat()
				bf, _ := b.AsFloat()
				tol := 1e-9 * (1 + absf(bf))
				if d := af - bf; d > tol || d < -tol {
					t.Fatalf("%s row %d col %d: %g vs %g", label, i, c, af, bf)
				}
				continue
			}
			if !a.Equal(b) {
				t.Fatalf("%s row %d col %d: %v vs %v", label, i, c, a, b)
			}
		}
	}
}

func absf(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// TestAllSchemesAndLocalsAgree: every (scheme, local join) combination must
// produce identical aggregates — the schemes route differently but compute
// the same query.
func TestAllSchemesAndLocalsAgree(t *testing.T) {
	var reference []squall.Tuple
	for _, scheme := range []squall.SchemeKind{squall.HashHypercube, squall.RandomHypercube, squall.HybridHypercube} {
		for _, local := range []squall.LocalJoinKind{squall.Traditional, squall.DBToaster} {
			q := tpch9Query(scheme, local, 2, 8)
			res := runOrFail(t, q, squall.Options{Seed: 1, SourcePar: 2})
			rows := res.SortedRows()
			if len(rows) == 0 {
				t.Fatalf("%v/%v produced no rows", scheme, local)
			}
			if reference == nil {
				reference = rows
				continue
			}
			aggRowsEqual(t, scheme.String()+"/"+local.String(), rows, reference)
		}
	}
}

// TestSchemeMetricsOrdering reproduces the Table 1 / Table 2 relationships
// at small scale: Hash replicates least but skews hardest; Random balances
// perfectly but replicates most; Hybrid sits in between on replication and
// beats Hash on max load.
func TestSchemeMetricsOrdering(t *testing.T) {
	type row struct {
		name     string
		max, avg float64
		repl     float64
	}
	var rows []row
	for _, scheme := range []squall.SchemeKind{squall.HashHypercube, squall.RandomHypercube, squall.HybridHypercube} {
		q := tpch9Query(scheme, squall.DBToaster, 2, 8)
		res := runOrFail(t, q, squall.Options{Seed: 2})
		cm := res.Metrics.Component(res.JoinerComponent)
		rows = append(rows, row{
			name: scheme.String(),
			max:  float64(cm.MaxLoad()),
			avg:  cm.AvgLoad(),
			repl: res.Metrics.ReplicationFactor(res.JoinerComponent),
		})
	}
	hash, random, hybrid := rows[0], rows[1], rows[2]
	if !(hash.repl < hybrid.repl && hybrid.repl < random.repl) {
		t.Errorf("replication ordering violated: hash %.3f, hybrid %.3f, random %.3f",
			hash.repl, hybrid.repl, random.repl)
	}
	if hybrid.max >= hash.max {
		t.Errorf("hybrid max load %.0f must beat hash %.0f under zipf skew", hybrid.max, hash.max)
	}
	if random.max/random.avg > 1.15 {
		t.Errorf("random scheme skew degree %.3f, want ≈1 (perfect balance)", random.max/random.avg)
	}
	if hash.max/hash.avg < 2 {
		t.Errorf("hash skew degree %.3f, want >2 under zipf(2)", hash.max/hash.avg)
	}
}

// TestHashOverflowsUnderSkew reproduces Figure 7's "Memory Overflow": under
// zipf skew the Hash-Hypercube piles the heavy key's tuples onto one task,
// so a per-task budget that comfortably fits the Hybrid's balanced state
// kills the Hash run. Traditional local joins store raw tuples, making state
// proportional to received load (the paper's overflow mechanism).
func TestHashOverflowsUnderSkew(t *testing.T) {
	hybridQ := tpch9Query(squall.HybridHypercube, squall.Traditional, 2, 8)
	res := runOrFail(t, hybridQ, squall.Options{Seed: 3})
	var peak int64
	for _, tm := range res.Metrics.Component(res.JoinerComponent).Tasks {
		if m := tm.MaxMem.Load(); m > peak {
			peak = m
		}
	}
	if peak == 0 {
		t.Fatal("hybrid run recorded no memory usage")
	}
	budget := int(2 * peak) // twice the balanced scheme's worst task

	hashQ := tpch9Query(squall.HashHypercube, squall.Traditional, 2, 8)
	_, err := hashQ.Run(squall.Options{Seed: 3, MemLimitPerTask: budget})
	if !errors.Is(err, dataflow.ErrMemoryOverflow) {
		t.Fatalf("hash under skew with budget %d: expected memory overflow, got %v", budget, err)
	}
	if _, err := hybridQ.Run(squall.Options{Seed: 3, MemLimitPerTask: budget}); err != nil {
		t.Fatalf("hybrid must fit in the same budget: %v", err)
	}
}

func TestCollectLimitCapsRowsNotCount(t *testing.T) {
	q := tpch9Query(squall.HybridHypercube, squall.DBToaster, 0, 4)
	res := runOrFail(t, q, squall.Options{Seed: 4, CollectLimit: 5})
	if len(res.Rows) > 5 {
		t.Errorf("collected %d rows, limit 5", len(res.Rows))
	}
	if res.RowCount <= 5 {
		t.Errorf("RowCount = %d, want full count", res.RowCount)
	}
}

// TestVecExecAgreesWithVecOff runs the same query on the vectorized frame
// path and on the PR 5 packed-row baseline: aggregates must agree, the vec
// run must actually carry rows through whole-frame execution, and the off
// run must carry none.
func TestVecExecAgreesWithVecOff(t *testing.T) {
	for _, local := range []squall.LocalJoinKind{squall.Traditional, squall.DBToaster} {
		// ForceDeltaJoin keeps the downstream aggregation (the frame-capable
		// operator) in the plan for both locals; the DBToaster aggregate-view
		// fast path emits boxed partials and never carries frames.
		mkQuery := func() *squall.JoinQuery {
			q := tpch9Query(squall.HashHypercube, local, 0, 4)
			q.ForceDeltaJoin = true
			return q
		}
		on := runOrFail(t, mkQuery(), squall.Options{Seed: 9, VecExec: squall.VecOn})
		off := runOrFail(t, mkQuery(), squall.Options{Seed: 9, VecExec: squall.VecOff})
		aggRowsEqual(t, local.String(), on.SortedRows(), off.SortedRows())
		if on.Metrics.TotalVecRows() == 0 {
			t.Errorf("%v: VecOn run carried no rows through frame execution", local)
		}
		if n := off.Metrics.TotalVecRows(); n != 0 {
			t.Errorf("%v: VecOff run carried %d rows through frame execution", local, n)
		}
	}
}

// TestVecExecCollectLimit pins the sink's frame face: bulk counting must
// still see every output row while collection stops at the limit.
func TestVecExecCollectLimit(t *testing.T) {
	q := tpch9Query(squall.HybridHypercube, squall.DBToaster, 0, 4)
	res := runOrFail(t, q, squall.Options{Seed: 4, CollectLimit: 5, VecExec: squall.VecOn})
	if len(res.Rows) > 5 {
		t.Errorf("collected %d rows, limit 5", len(res.Rows))
	}
	if res.RowCount <= 5 {
		t.Errorf("RowCount = %d, want full count", res.RowCount)
	}
}

func TestJoinWithoutAggEmitsDeltaRows(t *testing.T) {
	gen := datagen.NewTPCH(7, 20_000, 0)
	graph := expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 1)) // C.custkey = O.custkey
	q := &squall.JoinQuery{
		Sources: []squall.Source{
			{Name: "CUSTOMER", Schema: datagen.CustomerSchema, Spout: gen.CustomerSpout(), Size: gen.Customers()},
			{Name: "ORDERS", Schema: datagen.OrdersSchema, Spout: gen.OrdersSpout(), Size: gen.Orders()},
		},
		Graph:    graph,
		Scheme:   squall.HashHypercube,
		Machines: 4,
		Local:    squall.DBToaster,
	}
	res := runOrFail(t, q, squall.Options{Seed: 5, CollectLimit: 10})
	// Every order matches exactly one customer.
	if res.RowCount != gen.Orders() {
		t.Errorf("join produced %d rows, want %d", res.RowCount, gen.Orders())
	}
	if len(res.Rows) > 0 {
		if got := len(res.Rows[0]); got != datagen.CustomerSchema.Arity()+datagen.OrdersSchema.Arity() {
			t.Errorf("delta row arity = %d", got)
		}
	}
}

func TestDownstreamAggWithTraditionalJoin(t *testing.T) {
	// Traditional local join + downstream AggBolt path (non-DBToaster).
	gen := datagen.NewTPCH(9, 20_000, 0)
	graph := expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 1))
	q := &squall.JoinQuery{
		Sources: []squall.Source{
			{Name: "CUSTOMER", Schema: datagen.CustomerSchema, Spout: gen.CustomerSpout(), Size: gen.Customers()},
			{Name: "ORDERS", Schema: datagen.OrdersSchema, Spout: gen.OrdersSpout(), Size: gen.Orders()},
		},
		Graph:    graph,
		Scheme:   squall.HashHypercube,
		Machines: 4,
		Local:    squall.Traditional,
		Agg: &squall.AggSpec{
			GroupBy: []squall.ColRef{{Rel: 0, E: expr.C(1)}}, // mktsegment
			Kind:    squall.Count,
		},
	}
	res := runOrFail(t, q, squall.Options{Seed: 6, FinalPar: 2})
	var total int64
	for _, r := range res.Rows {
		total += r[1].I
	}
	if total != gen.Orders() {
		t.Errorf("segment counts sum to %d, want %d", total, gen.Orders())
	}
	if len(res.Rows) != 5 {
		t.Errorf("expected 5 market segments, got %d", len(res.Rows))
	}
}

func TestJoinQueryValidation(t *testing.T) {
	q := &squall.JoinQuery{}
	if _, err := q.Run(squall.Options{}); err == nil {
		t.Error("nil graph must fail")
	}
	q = &squall.JoinQuery{
		Graph:   expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0)),
		Sources: []squall.Source{{Name: "only-one"}},
	}
	if _, err := q.Run(squall.Options{}); err == nil {
		t.Error("source/relation mismatch must fail")
	}
	q.Sources = []squall.Source{{Name: "a"}, {Name: "b"}}
	if _, err := q.Run(squall.Options{}); err == nil {
		t.Error("missing spouts must fail")
	}
}

func TestPrePipelineFiltersAtSource(t *testing.T) {
	rows := []types.Tuple{
		{types.Int(1), types.Str("keep")},
		{types.Int(-1), types.Str("drop")},
		{types.Int(2), types.Str("keep")},
	}
	schema := types.NewSchema("r",
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "tag", Kind: types.KindString})
	q := &squall.JoinQuery{
		Sources: []squall.Source{
			{Name: "R", Schema: schema, Spout: dataflow.SliceSpout(rows), Size: 3,
				Pre: ops.Pipeline{ops.Select{P: expr.Cmp{Op: expr.Gt, L: expr.C(0), R: expr.I(0)}}}},
			{Name: "S", Schema: schema, Spout: dataflow.SliceSpout(rows), Size: 3},
		},
		Graph:    expr.MustJoinGraph(2, expr.EquiCol(0, 0, 1, 0)),
		Scheme:   squall.HashHypercube,
		Machines: 2,
		Local:    squall.Traditional,
	}
	res := runOrFail(t, q, squall.Options{Seed: 7})
	// R keeps keys {1,2}; S has {-1,1,2}: matches (1,1), (2,2).
	if res.RowCount != 2 {
		t.Errorf("filtered join rows = %d, want 2", res.RowCount)
	}
	src := res.Metrics.Component("R")
	if src.EmittedTotal() != 2 {
		t.Errorf("source emitted %d, want 2 (selection co-located)", src.EmittedTotal())
	}
}
