// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6, §7). Each benchmark maps to one experiment of DESIGN.md's
// per-experiment index; `go test -bench=. -benchmem` prints the series, and
// `cmd/squallbench` renders the same data as paper-style tables.
//
// Scales are reduced (the paper ran 10G-80G TPC-H on a 220-thread cluster;
// we run thousandth-scale in-process) — EXPERIMENTS.md records the measured
// vs published shapes.
package squall_test

import (
	"errors"
	"fmt"
	"testing"

	"squall"
	"squall/experiments"
	"squall/internal/dataflow"
	"squall/internal/datagen"
)

// benchLineitems is the "10G" stand-in: 60k lineitems ≈ 1/1000 of 10G.
const benchLineitems = 60_000

// bigLineitems is the "80G" stand-in (1/1000 scale).
const bigLineitems = 480_000

var allSchemes = []squall.SchemeKind{squall.HashHypercube, squall.RandomHypercube, squall.HybridHypercube}

// reportJoin attaches the paper's §6 metrics to a benchmark.
func reportJoin(b *testing.B, res *squall.Result) {
	b.Helper()
	cm := res.Metrics.Component(res.JoinerComponent)
	b.ReportMetric(float64(cm.MaxLoad()), "maxload")
	b.ReportMetric(cm.AvgLoad(), "avgload")
	b.ReportMetric(cm.SkewDegree(), "skewdeg")
	b.ReportMetric(res.Metrics.ReplicationFactor(res.JoinerComponent), "replfactor")
	b.ReportMetric(res.Metrics.IntermediateNetworkFactor(), "netfactor")
}

// BenchmarkSection31_WorkedExample regenerates the §3.1 analysis: predicted
// loads for the three schemes on R ⋈ S ⋈ T with 64 machines and zipfian z
// (Hash ≈0.7H skewed max, Random 0.75H, Hybrid ≈0.365H).
func BenchmarkSection31_WorkedExample(b *testing.B) {
	for _, scheme := range allSchemes {
		b.Run(scheme.String(), func(b *testing.B) {
			var hc interface {
				PredictedMaxLoad() float64
				PredictedAvgLoad() float64
				PredictedReplicationFactor() float64
			}
			for i := 0; i < b.N; i++ {
				q := experiments.Section31Query(scheme, 1<<20)
				cube, err := q.BuildScheme()
				if err != nil {
					b.Fatal(err)
				}
				hc = cube
			}
			b.ReportMetric(hc.PredictedMaxLoad()/float64(1<<20), "maxload/H")
			b.ReportMetric(hc.PredictedAvgLoad()/float64(1<<20), "avgload/H")
			b.ReportMetric(hc.PredictedReplicationFactor(), "replfactor")
		})
	}
}

// BenchmarkFigure5_Bottleneck regenerates Figure 5: the cost decomposition
// of Customer ⋈ Orders (read, int selection, date selection, network hop,
// full join). Each stage runs at the legacy per-tuple transport (batch=1)
// and the default batched transport, so the series doubles as the PR 1
// batching speedup measurement on the engine's hottest path.
func BenchmarkFigure5_Bottleneck(b *testing.B) {
	gen := datagen.NewTPCH(42, 240_000, 0)
	for _, batch := range []int{1, dataflow.DefaultBatchSize} {
		for _, stage := range experiments.Figure5StagesBatch(gen, 4, 1, batch) {
			b.Run(fmt.Sprintf("%s/batch=%d", stage.Name, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := stage.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure6_Reachability regenerates Figure 6: 3-step reachability as
// a multi-way hypercube join vs. the pipeline of 2-way joins. The paper's
// shape: the multi-way join ships fewer tuples (132.6M vs 160.6M) and runs
// ≈1.43x faster; Hash- and Hybrid-Hypercube coincide on the uniform sample.
func BenchmarkFigure6_Reachability(b *testing.B) {
	w := datagen.NewWebGraph(3, 3000, 30000, 0)
	const machines = 8
	for _, scheme := range []squall.SchemeKind{squall.HashHypercube, squall.HybridHypercube} {
		b.Run("Multiway-"+scheme.String(), func(b *testing.B) {
			var res *squall.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.Reachability3(w, scheme, squall.DBToaster, machines).
					Run(squall.Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Metrics.TotalSent()), "sent-tuples")
			reportJoin(b, res)
		})
	}
	b.Run("Pipeline2Way", func(b *testing.B) {
		var res *experiments.PipelineResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = experiments.Reachability3Pipeline(w, squall.DBToaster, machines, 1)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.TotalSent), "sent-tuples")
	})
}

// figure7Cases are the three groups of Figure 7 (also Tables 1 and 2).
func figure7Cases() []struct {
	name     string
	machines int
	build    func(scheme squall.SchemeKind) *squall.JoinQuery
} {
	gen10 := datagen.NewTPCH(42, benchLineitems, 2)
	gen80 := datagen.NewTPCH(43, bigLineitems, 2)
	webCfg := experiments.WebAnalyticsConfig{Seed: 5, Hosts: 20000, Arcs: 60000, InS: 1.1, OutS: 1.5}
	return []struct {
		name     string
		machines int
		build    func(scheme squall.SchemeKind) *squall.JoinQuery
	}{
		{"TPCH9-10G-8J", 8, func(s squall.SchemeKind) *squall.JoinQuery {
			return experiments.TPCH9Partial(gen10, s, squall.DBToaster, 8)
		}},
		{"TPCH9-80G-100J", 100, func(s squall.SchemeKind) *squall.JoinQuery {
			return experiments.TPCH9Partial(gen80, s, squall.DBToaster, 100)
		}},
		{"WebAnalytics-40J", 40, func(s squall.SchemeKind) *squall.JoinQuery {
			return experiments.WebAnalytics(webCfg, s, squall.DBToaster, 40)
		}},
	}
}

// BenchmarkFigure7_Schemes regenerates Figure 7: runtimes of the three
// hypercube schemes on TPCH9-Partial (10G/8J, 80G/100J) and WebAnalytics.
// Expected shape: Hybrid fastest under skew; Hash worst (or overflows);
// Random pays replication.
func BenchmarkFigure7_Schemes(b *testing.B) {
	for _, c := range figure7Cases() {
		for _, scheme := range allSchemes {
			b.Run(c.name+"/"+scheme.String(), func(b *testing.B) {
				var res *squall.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = c.build(scheme).Run(squall.Options{Seed: 2})
					if err != nil {
						b.Fatal(err)
					}
				}
				reportJoin(b, res)
			})
		}
	}
}

// BenchmarkTable1_Loads regenerates Table 1 (maximum and average load per
// machine) from real runs; the per-run metrics are attached to each series.
func BenchmarkTable1_Loads(b *testing.B) {
	for _, c := range figure7Cases() {
		for _, scheme := range allSchemes {
			b.Run(c.name+"/"+scheme.String(), func(b *testing.B) {
				var maxLoad, avgLoad float64
				for i := 0; i < b.N; i++ {
					res, err := c.build(scheme).Run(squall.Options{Seed: 3})
					if err != nil {
						b.Fatal(err)
					}
					cm := res.Metrics.Component(res.JoinerComponent)
					maxLoad, avgLoad = float64(cm.MaxLoad()), cm.AvgLoad()
				}
				b.ReportMetric(maxLoad, "maxload")
				b.ReportMetric(avgLoad, "avgload")
			})
		}
	}
}

// BenchmarkTable2_Replication regenerates Table 2 (replication factors) for
// TPCH9-Partial. Paper: 10G — Hash 1, Random 1.83, Hybrid 1.01;
// 80G — Random 6.19, Hybrid 1.11.
func BenchmarkTable2_Replication(b *testing.B) {
	gens := map[string]*datagen.TPCH{
		"10G-8J":   datagen.NewTPCH(42, benchLineitems, 2),
		"80G-100J": datagen.NewTPCH(43, bigLineitems, 2),
	}
	machines := map[string]int{"10G-8J": 8, "80G-100J": 100}
	for name, gen := range gens {
		for _, scheme := range allSchemes {
			b.Run(name+"/"+scheme.String(), func(b *testing.B) {
				var rf float64
				for i := 0; i < b.N; i++ {
					res, err := experiments.TPCH9Partial(gen, scheme, squall.DBToaster, machines[name]).
						Run(squall.Options{Seed: 4})
					if err != nil {
						b.Fatal(err)
					}
					rf = res.Metrics.ReplicationFactor(res.JoinerComponent)
				}
				b.ReportMetric(rf, "replfactor")
			})
		}
	}
}

// BenchmarkFigure8_LocalJoins regenerates Figure 8: multi-way joins with
// DBToaster vs. traditional local joins on TPCH9-Partial (8a), TPC-H Q3
// (8b) and Google TaskCount (8c). Expected shape: DBToaster several times
// faster wherever heavy keys multiply fan-out (paper: ~10x on 8a/8b, 3-4x
// on 8c).
func BenchmarkFigure8_LocalJoins(b *testing.B) {
	gen := datagen.NewTPCH(42, benchLineitems, 2)
	google := &datagen.GoogleTrace{Seed: 11, TaskEvents: 120_000}
	cases := []struct {
		name  string
		build func(local squall.LocalJoinKind) *squall.JoinQuery
	}{
		{"TPCH9-10G-8J", func(l squall.LocalJoinKind) *squall.JoinQuery {
			return experiments.TPCH9Partial(gen, squall.HybridHypercube, l, 8)
		}},
		{"Q3-10G-8J", func(l squall.LocalJoinKind) *squall.JoinQuery {
			return experiments.Q3(gen, squall.HybridHypercube, l, 8)
		}},
		{"GoogleTaskCount-8J", func(l squall.LocalJoinKind) *squall.JoinQuery {
			return experiments.GoogleTaskCount(google, squall.HybridHypercube, l, 8)
		}},
		// High fan-out case: aggregate views collapse the 2-hop enumeration,
		// exhibiting the order-of-magnitude DBToaster advantage clearly.
		{"Reachability3-8J", func(l squall.LocalJoinKind) *squall.JoinQuery {
			return experiments.Reachability3(datagen.NewWebGraph(3, 3000, 30000, 0), squall.HybridHypercube, l, 8)
		}},
	}
	for _, c := range cases {
		for _, local := range []squall.LocalJoinKind{squall.DBToaster, squall.Traditional} {
			b.Run(c.name+"/"+local.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := c.build(local).Run(squall.Options{Seed: 5}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure7_MemoryOverflow reproduces the "Memory Overflow" outcome:
// the Hash-Hypercube exceeds a per-task budget that the Hybrid fits into.
func BenchmarkFigure7_MemoryOverflow(b *testing.B) {
	gen := datagen.NewTPCH(42, benchLineitems, 2)
	// Calibrate: twice the hybrid's peak task state.
	cal, err := experiments.TPCH9Partial(gen, squall.HybridHypercube, squall.Traditional, 8).
		Run(squall.Options{Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	var peak int64
	for _, tm := range cal.Metrics.Component(cal.JoinerComponent).Tasks {
		if m := tm.MaxMem.Load(); m > peak {
			peak = m
		}
	}
	budget := int(2 * peak)
	b.Run("Hash-overflows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := experiments.TPCH9Partial(gen, squall.HashHypercube, squall.Traditional, 8).
				Run(squall.Options{Seed: 6, MemLimitPerTask: budget})
			if !errors.Is(err, dataflow.ErrMemoryOverflow) {
				b.Fatalf("expected overflow, got %v", err)
			}
		}
	})
	b.Run("Hybrid-completes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.TPCH9Partial(gen, squall.HybridHypercube, squall.Traditional, 8).
				Run(squall.Options{Seed: 6, MemLimitPerTask: budget}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSection5_HashImperfection regenerates the §5 small-domain
// analysis: skew degree of hash vs round-robin key assignment for the
// distinct counts of TPC-H Q4 (5), Q12 (7) and Q5 (25) over 8 machines.
func BenchmarkSection5_HashImperfection(b *testing.B) {
	for _, d := range []int{5, 7, 15, 25} {
		b.Run(fmt.Sprintf("d=%d_p=8", d), func(b *testing.B) {
			var res experiments.ImperfectionResult
			for i := 0; i < b.N; i++ {
				res = experiments.HashImperfection(d, 8, 200)
			}
			b.ReportMetric(res.HashSkew, "hash-skewdeg")
			b.ReportMetric(res.RoundRobinSkew, "rr-skewdeg")
			b.ReportMetric(res.HashSuboptimal, "hash-subopt-frac")
		})
	}
}

// BenchmarkSection5_TemporalSkew regenerates the §5 temporal-skew analysis:
// per-burst concentration of sorted arrival under content-sensitive (hash)
// vs content-insensitive (shuffle) partitioning.
func BenchmarkSection5_TemporalSkew(b *testing.B) {
	groupings := []struct {
		name string
		g    dataflow.Grouping
	}{
		{"Hash", dataflow.Fields(0)},
		{"Shuffle", dataflow.Shuffle()},
	}
	for _, gr := range groupings {
		b.Run(gr.name, func(b *testing.B) {
			var res experiments.TemporalResult
			for i := 0; i < b.N; i++ {
				res = experiments.TemporalSkew(gr.g, 64, 2000, 8, 1)
			}
			b.ReportMetric(res.BurstSkew, "burst-skewdeg")
			b.ReportMetric(res.OverallSkew, "overall-skewdeg")
		})
	}
}
