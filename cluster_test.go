package squall_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"squall"
	"squall/internal/clusterjobs"
	"squall/internal/enginetest"
	"squall/internal/transport"
)

// startWorkers brings up n in-process WorkerServers on loopback listeners and
// returns their addresses. In-process keeps these tests fast and debuggable;
// the true multi-process dimension lives in internal/enginetest.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { ln.Close() })
		go squall.ServeWorker(ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// clusterParams is a representative workload: 3 relations, productive keys,
// batched packed transport.
func clusterParams(cfg enginetest.EngineConfig) clusterjobs.WorkloadParams {
	return clusterjobs.WorkloadParams{
		Seed: 42, NumRels: 3, RowsPerRel: 90, KeyDomain: 12, Config: cfg,
	}
}

func runClusterCase(t *testing.T, workers int, cfg enginetest.EngineConfig, place map[string]int) *squall.Result {
	t.Helper()
	params := clusterParams(cfg)
	q, opts, err := params.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	opts.Cluster = &squall.ClusterSpec{
		Workers: startWorkers(t, workers),
		Job:     clusterjobs.WorkloadJob,
		Params:  params.Marshal(),
		Place:   place,
	}
	res, err := q.Run(opts)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}

	w := enginetest.RandomWorkload(params.Seed, params.NumRels, params.RowsPerRel, params.KeyDomain, params.WithTheta)
	got := make(map[string]int, len(res.Rows))
	for _, r := range res.Rows {
		got[r.Key()]++
	}
	if diff := enginetest.DiffBags(w.ReferenceBag(), got); diff != "" {
		t.Fatalf("cluster run diverges from oracle:\n%s", diff)
	}
	return res
}

func TestClusterTwoWorkers(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 16, Machines: 6, Seed: 42,
	}
	res := runClusterCase(t, 2, cfg, nil)
	// Merged metrics must read like a single-process run: the joiner lives on
	// worker 1, so its counters only exist if the snapshot merge worked.
	joiner := res.Metrics.Components[res.JoinerComponent]
	if joiner == nil || joiner.ReceivedTotal() == 0 {
		t.Fatalf("merged metrics missing the remote joiner's counters: %+v", res.Metrics.Components)
	}
}

func TestClusterExplicitPlacement(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 8, Machines: 4, Seed: 42,
	}
	// Everything remote except the sink: sources split across both workers,
	// joiner on worker 2.
	runClusterCase(t, 2, cfg, map[string]int{
		"rel0": 1, "rel1": 2, "rel2": 1, "joiner": 2, "sink": 0,
	})
}

func TestClusterRemoteKillRecovery(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 4, Machines: 6, Seed: 42, Kill: true,
	}
	// Default placement puts the joiner on worker 1, so the injected kill
	// lands in a remote process and recovery runs over TCP.
	res := runClusterCase(t, 2, cfg, nil)
	if res.Metrics.Recovery.Kills.Load() != 1 {
		t.Fatalf("expected 1 recovered kill in merged metrics, got %d", res.Metrics.Recovery.Kills.Load())
	}
}

func TestClusterRejectsBadSpecs(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 16, Machines: 4, Seed: 42,
	}
	params := clusterParams(cfg)
	addrs := startWorkers(t, 1)

	cases := []struct {
		name    string
		mutate  func(o *squall.Options)
		wantErr string
	}{
		{"no workers", func(o *squall.Options) { o.Cluster.Workers = nil }, "at least one worker"},
		{"no job", func(o *squall.Options) { o.Cluster.Job = "" }, "job name"},
		{"noserialize", func(o *squall.Options) { o.NoSerialize = true }, "NoSerialize"},
		{"unregistered job", func(o *squall.Options) { o.Cluster.Job = "no-such-job" }, "not registered"},
		{"sink off coordinator", func(o *squall.Options) {
			o.Cluster.Place = map[string]int{"rel0": 0, "rel1": 1, "rel2": 0, "joiner": 1, "sink": 1}
		}, "sink"},
		{"missing component", func(o *squall.Options) {
			o.Cluster.Place = map[string]int{"rel0": 0, "sink": 0}
		}, "placement misses"},
		{"out of range worker", func(o *squall.Options) {
			o.Cluster.Place = map[string]int{"rel0": 0, "rel1": 5, "rel2": 0, "joiner": 1, "sink": 0}
		}, "have 2 workers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, opts, err := params.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			opts.Cluster = &squall.ClusterSpec{
				Workers: addrs, Job: clusterjobs.WorkloadJob, Params: params.Marshal(),
			}
			c.mutate(&opts)
			_, err = q.Run(opts)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("want error containing %q, got %v", c.wantErr, err)
			}
		})
	}
}

// startWorkerHandles is startWorkers with the server handles exposed, so a
// test can kill one mid-run the way SIGKILL kills a squalld.
func startWorkerHandles(t *testing.T, n int) ([]string, []*squall.WorkerServer) {
	t.Helper()
	addrs := make([]string, n)
	srvs := make([]*squall.WorkerServer, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := squall.NewWorkerServer(ln)
		t.Cleanup(func() { srv.Close() })
		go srv.Serve()
		addrs[i] = ln.Addr().String()
		srvs[i] = srv
	}
	return addrs, srvs
}

// trickledParams is clusterParams slowed down so a mid-run fault reliably
// lands while data is in flight.
func trickledParams(cfg enginetest.EngineConfig) clusterjobs.WorkloadParams {
	p := clusterParams(cfg)
	p.RowsPerRel = 420
	p.KeyDomain = 40
	p.TrickleRows = 400
	p.TrickleEveryUS = 500
	return p
}

// chaosSpec is the survivability configuration the chaos tests share: fast
// detection, a small dial budget, bounded attempts.
func chaosSpec(addrs []string, params clusterjobs.WorkloadParams, policy squall.ClusterPolicy) *squall.ClusterSpec {
	return &squall.ClusterSpec{
		Workers: addrs, Job: clusterjobs.WorkloadJob, Params: params.Marshal(),
		Policy: policy, MaxAttempts: 3,
		Heartbeat: 100 * time.Millisecond, HeartbeatMiss: 3,
		Retry: transport.RetryPolicy{Attempts: 2, BaseDelay: 20 * time.Millisecond, DialTimeout: 5 * time.Second},
	}
}

func runChaosCase(t *testing.T, params clusterjobs.WorkloadParams, spec *squall.ClusterSpec) *squall.Result {
	t.Helper()
	q, opts, err := params.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	opts.Cluster = spec
	res, err := q.Run(opts)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	w := enginetest.RandomWorkload(params.Seed, params.NumRels, params.RowsPerRel, params.KeyDomain, params.WithTheta)
	got := make(map[string]int, len(res.Rows))
	for _, r := range res.Rows {
		got[r.Key()]++
	}
	if diff := enginetest.DiffBags(w.ReferenceBag(), got); diff != "" {
		t.Fatalf("recovered run diverges from oracle:\n%s", diff)
	}
	return res
}

// Under Recover, killing a worker (here: the one hosting the joiner) mid-run
// must yield a result bag-equal to the oracle, with the dead worker's
// components reassigned to survivors.
func TestClusterPolicyRecoverWorkerLoss(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 8, Machines: 4, Seed: 42,
	}
	params := trickledParams(cfg)
	addrs, srvs := startWorkerHandles(t, 2)
	go func() {
		time.Sleep(80 * time.Millisecond)
		srvs[0].Close() // worker 1: joiner host under default placement
	}()
	res := runChaosCase(t, params, chaosSpec(addrs, params, squall.Recover))
	cm := res.Metrics.Cluster
	if cm.Attempts < 2 || cm.WorkersLost < 1 || cm.Reassigned < 1 {
		t.Fatalf("recovery not exercised: %+v", cm)
	}
	if cm.RecoveryNS <= 0 {
		t.Fatalf("recovery time not recorded: %+v", cm)
	}
}

// Under Recover with every worker dead, the coordinator absorbs the whole
// topology and finishes alone.
func TestClusterPolicyRecoverTotalLoss(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 8, Machines: 4, Seed: 42,
	}
	params := trickledParams(cfg)
	addrs, srvs := startWorkerHandles(t, 1)
	go func() {
		time.Sleep(80 * time.Millisecond)
		srvs[0].Close()
	}()
	res := runChaosCase(t, params, chaosSpec(addrs, params, squall.Recover))
	cm := res.Metrics.Cluster
	if cm.WorkersLost != 1 || cm.Attempts < 2 {
		t.Fatalf("total-loss recovery not exercised: %+v", cm)
	}
}

// Under Retry, a one-way partition (writes vanish, reads flow — only
// heartbeats can see it) must fail the first attempt in bounded time and
// succeed on a re-dispatch over fresh connections.
func TestClusterPolicyRetryPartition(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 8, Machines: 4, Seed: 42,
	}
	params := trickledParams(cfg)
	addrs, _ := startWorkerHandles(t, 1)
	spec := chaosSpec(addrs, params, squall.Retry)
	// Fault only the first coordinator-dialed connection: attempt 0 starves
	// behind the partition, attempt 1 runs clean.
	spec.Fault = &transport.FaultSpec{Seed: 3, PartitionAfter: 30, MaxConns: 1}
	res := runChaosCase(t, params, spec)
	cm := res.Metrics.Cluster
	if cm.Attempts != 2 || cm.WorkersLost != 0 {
		t.Fatalf("partition retry not exercised: %+v", cm)
	}
}

// Under FateShare the same mid-run worker loss still fails loudly — the
// differential baseline.
func TestClusterPolicyFateShareStillFails(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 8, Machines: 4, Seed: 42,
	}
	params := trickledParams(cfg)
	addrs, srvs := startWorkerHandles(t, 2)
	go func() {
		time.Sleep(80 * time.Millisecond)
		srvs[0].Close()
	}()
	q, opts, err := params.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	opts.Cluster = chaosSpec(addrs, params, squall.FateShare)
	done := make(chan error, 1)
	go func() {
		_, err := q.Run(opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("FateShare run succeeded despite a dead worker")
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("FateShare run hung after worker death")
	}
}

// A connection carrying a stale link epoch must be rejected at the
// handshake: it belongs to a dead attempt and may not join a newer one.
func TestClusterStaleEpochRejected(t *testing.T) {
	addrs, _ := startWorkerHandles(t, 1)
	fresh, err := transport.Dial(addrs[0], 5*time.Second,
		transport.Hello{RunID: "epochtest.1", From: 0, Purpose: transport.PurposeJob, Epoch: 1})
	if err != nil {
		t.Fatalf("dial epoch 1: %v", err)
	}
	defer fresh.Close()
	// Dial returns once the hello is flushed, not once the worker admitted
	// it; force a round-trip (bogus frame -> failure reply) so epoch 1 is
	// recorded before the stale dial races in.
	if err := fresh.WriteMsg(&transport.Msg{Kind: 99}); err != nil {
		t.Fatalf("writing sync frame: %v", err)
	}
	fresh.SetReadDeadline(time.Now().Add(10 * time.Second))
	var ack transport.Msg
	if err := fresh.ReadMsg(&ack); err != nil {
		t.Fatalf("reading sync reply: %v", err)
	}
	stale, err := transport.Dial(addrs[0], 5*time.Second,
		transport.Hello{RunID: "epochtest.0", From: 0, Purpose: transport.PurposeJob, Epoch: 0})
	if err != nil {
		t.Fatalf("dial epoch 0: %v", err)
	}
	defer stale.Close()
	stale.SetReadDeadline(time.Now().Add(10 * time.Second))
	var m transport.Msg
	if err := stale.ReadMsg(&m); err != nil {
		t.Fatalf("reading stale-epoch verdict: %v", err)
	}
	if !strings.Contains(string(m.Payload), "stale link epoch") {
		t.Fatalf("stale epoch not rejected: kind %d payload %q", m.Kind, m.Payload)
	}
}

// With ClusterSpec.Store set, a remote chaos kill recovers through the
// coordinator-served shared store: the worker's checkpoints must land in it.
func TestClusterSharedStoreKillRecovery(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 4, Machines: 6, Seed: 42, Kill: true,
	}
	params := clusterParams(cfg)
	q, opts, err := params.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	store := squall.NewMemCheckpointStore()
	opts.Cluster = &squall.ClusterSpec{
		Workers: startWorkers(t, 2),
		Job:     clusterjobs.WorkloadJob,
		Params:  params.Marshal(),
		Store:   store,
	}
	res, err := q.Run(opts)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if res.Metrics.Recovery.Kills.Load() != 1 {
		t.Fatalf("expected 1 recovered kill, got %d", res.Metrics.Recovery.Kills.Load())
	}
	sized, ok := store.(interface{ Bytes() int })
	if !ok {
		t.Fatalf("mem store lost its Bytes accessor")
	}
	if sized.Bytes() == 0 {
		t.Fatalf("remote kill recovered without a single checkpoint reaching the shared store")
	}
}
