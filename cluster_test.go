package squall_test

import (
	"net"
	"strings"
	"testing"

	"squall"
	"squall/internal/clusterjobs"
	"squall/internal/enginetest"
)

// startWorkers brings up n in-process WorkerServers on loopback listeners and
// returns their addresses. In-process keeps these tests fast and debuggable;
// the true multi-process dimension lives in internal/enginetest.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { ln.Close() })
		go squall.ServeWorker(ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// clusterParams is a representative workload: 3 relations, productive keys,
// batched packed transport.
func clusterParams(cfg enginetest.EngineConfig) clusterjobs.WorkloadParams {
	return clusterjobs.WorkloadParams{
		Seed: 42, NumRels: 3, RowsPerRel: 90, KeyDomain: 12, Config: cfg,
	}
}

func runClusterCase(t *testing.T, workers int, cfg enginetest.EngineConfig, place map[string]int) *squall.Result {
	t.Helper()
	params := clusterParams(cfg)
	q, opts, err := params.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	opts.Cluster = &squall.ClusterSpec{
		Workers: startWorkers(t, workers),
		Job:     clusterjobs.WorkloadJob,
		Params:  params.Marshal(),
		Place:   place,
	}
	res, err := q.Run(opts)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}

	w := enginetest.RandomWorkload(params.Seed, params.NumRels, params.RowsPerRel, params.KeyDomain, params.WithTheta)
	got := make(map[string]int, len(res.Rows))
	for _, r := range res.Rows {
		got[r.Key()]++
	}
	if diff := enginetest.DiffBags(w.ReferenceBag(), got); diff != "" {
		t.Fatalf("cluster run diverges from oracle:\n%s", diff)
	}
	return res
}

func TestClusterTwoWorkers(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 16, Machines: 6, Seed: 42,
	}
	res := runClusterCase(t, 2, cfg, nil)
	// Merged metrics must read like a single-process run: the joiner lives on
	// worker 1, so its counters only exist if the snapshot merge worked.
	joiner := res.Metrics.Components[res.JoinerComponent]
	if joiner == nil || joiner.ReceivedTotal() == 0 {
		t.Fatalf("merged metrics missing the remote joiner's counters: %+v", res.Metrics.Components)
	}
}

func TestClusterExplicitPlacement(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 8, Machines: 4, Seed: 42,
	}
	// Everything remote except the sink: sources split across both workers,
	// joiner on worker 2.
	runClusterCase(t, 2, cfg, map[string]int{
		"rel0": 1, "rel1": 2, "rel2": 1, "joiner": 2, "sink": 0,
	})
}

func TestClusterRemoteKillRecovery(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 4, Machines: 6, Seed: 42, Kill: true,
	}
	// Default placement puts the joiner on worker 1, so the injected kill
	// lands in a remote process and recovery runs over TCP.
	res := runClusterCase(t, 2, cfg, nil)
	if res.Metrics.Recovery.Kills.Load() != 1 {
		t.Fatalf("expected 1 recovered kill in merged metrics, got %d", res.Metrics.Recovery.Kills.Load())
	}
}

func TestClusterRejectsBadSpecs(t *testing.T) {
	cfg := enginetest.EngineConfig{
		Scheme: squall.HashHypercube, Local: squall.Traditional,
		BatchSize: 16, Machines: 4, Seed: 42,
	}
	params := clusterParams(cfg)
	addrs := startWorkers(t, 1)

	cases := []struct {
		name    string
		mutate  func(o *squall.Options)
		wantErr string
	}{
		{"no workers", func(o *squall.Options) { o.Cluster.Workers = nil }, "at least one worker"},
		{"no job", func(o *squall.Options) { o.Cluster.Job = "" }, "job name"},
		{"noserialize", func(o *squall.Options) { o.NoSerialize = true }, "NoSerialize"},
		{"unregistered job", func(o *squall.Options) { o.Cluster.Job = "no-such-job" }, "not registered"},
		{"sink off coordinator", func(o *squall.Options) {
			o.Cluster.Place = map[string]int{"rel0": 0, "rel1": 1, "rel2": 0, "joiner": 1, "sink": 1}
		}, "sink"},
		{"missing component", func(o *squall.Options) {
			o.Cluster.Place = map[string]int{"rel0": 0, "sink": 0}
		}, "placement misses"},
		{"out of range worker", func(o *squall.Options) {
			o.Cluster.Place = map[string]int{"rel0": 0, "rel1": 5, "rel2": 0, "joiner": 1, "sink": 0}
		}, "have 2 workers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, opts, err := params.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			opts.Cluster = &squall.ClusterSpec{
				Workers: addrs, Job: clusterjobs.WorkloadJob, Params: params.Marshal(),
			}
			c.mutate(&opts)
			_, err = q.Run(opts)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("want error containing %q, got %v", c.wantErr, err)
			}
		})
	}
}
