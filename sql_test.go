package squall_test

import (
	"strings"
	"testing"

	"squall"
	"squall/internal/datagen"
)

func googleCatalog(gen *datagen.GoogleTrace) squall.Catalog {
	return squall.Catalog{
		"job_events":     {Schema: datagen.JobEventsSchema, Spout: gen.JobEventsSpout(), Size: gen.JobEvents()},
		"task_events":    {Schema: datagen.TaskEventsSchema, Spout: gen.TaskEventsSpout(), Size: gen.TaskEvents},
		"machine_events": {Schema: datagen.MachineEventsSchema, Spout: gen.MachineEventsSpout(), Size: gen.MachineEvents()},
	}
}

// TestRunSQLGoogleTaskCount runs the paper's §7.4 query verbatim through the
// declarative interface and cross-checks it against the imperative path.
func TestRunSQLGoogleTaskCount(t *testing.T) {
	gen := &datagen.GoogleTrace{Seed: 11, TaskEvents: 20000}
	sql := `SELECT MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform, COUNT(*)
		FROM JOB_EVENTS, TASK_EVENTS, MACHINE_EVENTS
		WHERE TASK_EVENTS.eventType = 3
		AND JOB_EVENTS.jobID = TASK_EVENTS.jobID
		AND MACHINE_EVENTS.machineID = TASK_EVENTS.machineID
		GROUP BY MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform`
	res, err := squall.RunSQL(sql, googleCatalog(gen), squall.SQLOptions{Machines: 4}, squall.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount == 0 {
		t.Fatal("SQL TaskCount produced no rows")
	}
	// Reference: count FAIL task events per (machine, platform) directly.
	// Every task event joins its job's ~2 job events and its machine's ~2
	// machine events.
	type key struct {
		m int64
		p string
	}
	want := map[key]int64{}
	jobEvents := map[int64]int64{}
	for i := int64(0); i < gen.JobEvents(); i++ {
		jobEvents[gen.JobEvent(i)[0].I]++
	}
	machEvents := map[int64][]string{}
	for i := int64(0); i < gen.MachineEvents(); i++ {
		me := gen.MachineEvent(i)
		machEvents[me[0].I] = append(machEvents[me[0].I], me[1].Str)
	}
	for i := int64(0); i < gen.TaskEvents; i++ {
		te := gen.TaskEvent(i)
		if te[2].I != datagen.EventFail {
			continue
		}
		for _, plat := range machEvents[te[1].I] {
			want[key{te[1].I, plat}] += jobEvents[te[0].I]
		}
	}
	got := map[key]int64{}
	for _, r := range res.Rows {
		got[key{r[0].I, r[1].Str}] = r[2].I
	}
	if len(got) != len(want) {
		t.Fatalf("groups: got %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("group %v: got %d, want %d", k, got[k], w)
		}
	}
}

func TestCompileSQLPushesSelections(t *testing.T) {
	gen := &datagen.GoogleTrace{Seed: 2, TaskEvents: 1000}
	jq, err := squall.CompileSQL(
		`SELECT COUNT(*) FROM TASK_EVENTS, MACHINE_EVENTS
		 WHERE TASK_EVENTS.eventType = 3 AND TASK_EVENTS.machineID = MACHINE_EVENTS.machineID`,
		googleCatalog(gen), squall.SQLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jq.Sources) != 2 {
		t.Fatalf("sources = %d", len(jq.Sources))
	}
	if jq.Sources[0].Pre == nil {
		t.Error("eventType filter must be pushed into the TASK_EVENTS source")
	}
	if jq.Sources[1].Pre != nil {
		t.Error("MACHINE_EVENTS must have no filter")
	}
	if len(jq.Graph.Conjuncts) != 1 {
		t.Errorf("join conjuncts = %d", len(jq.Graph.Conjuncts))
	}
	if jq.Agg == nil || jq.Agg.Kind != squall.Count {
		t.Errorf("agg = %+v", jq.Agg)
	}
}

func TestCompileSQLSelfJoinWithAliases(t *testing.T) {
	w := datagen.NewWebGraph(3, 500, 3000, 0)
	cat := squall.Catalog{
		"webgraph": {Schema: datagen.WebGraphSchema, Spout: w.Spout(), Size: w.Arcs},
	}
	res, err := squall.RunSQL(`SELECT W1.FromUrl, COUNT(*)
		FROM WebGraph as W1, WebGraph as W2, WebGraph as W3
		WHERE W1.ToUrl = W2.FromUrl AND W2.ToUrl = W3.FromUrl
		GROUP BY W1.FromUrl`, cat, squall.SQLOptions{Machines: 4}, squall.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount == 0 {
		t.Error("3-reachability via SQL produced nothing")
	}
}

func TestCompileSQLSkewMetadataFlows(t *testing.T) {
	gen := datagen.NewTPCH(5, 30000, 2)
	cat := squall.Catalog{
		"lineitem": {Schema: datagen.LineitemSchema, Spout: gen.LineitemSpout(), Size: gen.Lineitems,
			Skewed:  map[string]bool{"partkey": true},
			TopFreq: map[string]float64{"partkey": gen.TopPartkeyFreq()}},
		"partsupp": {Schema: datagen.PartSuppSchema, Spout: gen.PartSuppSpout(), Size: gen.PartSupps()},
		"part":     {Schema: datagen.PartSchema, Spout: gen.PartSpout(), Size: gen.Parts()},
	}
	jq, err := squall.CompileSQL(`SELECT lineitem.suppkey, COUNT(*)
		FROM lineitem, partsupp, part
		WHERE lineitem.partkey = partsupp.partkey
		AND lineitem.suppkey = partsupp.suppkey
		AND lineitem.partkey = part.partkey
		GROUP BY lineitem.suppkey`, cat, squall.SQLOptions{Scheme: squall.HybridHypercube})
	if err != nil {
		t.Fatal(err)
	}
	if len(jq.Skewed) == 0 {
		t.Fatal("catalog skew declaration must flow into the plan")
	}
	hc, err := jq.BuildScheme()
	if err != nil {
		t.Fatal(err)
	}
	// The skewed L.partkey must be renamed to a random dimension (or dropped
	// to size 1); the scheme must stay content-insensitive on that key, i.e.
	// differ from the plain Hash scheme.
	jq2, _ := squall.CompileSQL(`SELECT lineitem.suppkey, COUNT(*)
		FROM lineitem, partsupp, part
		WHERE lineitem.partkey = partsupp.partkey
		AND lineitem.suppkey = partsupp.suppkey
		AND lineitem.partkey = part.partkey
		GROUP BY lineitem.suppkey`, cat, squall.SQLOptions{Scheme: squall.HashHypercube})
	hc2, err := jq2.BuildScheme()
	if err != nil {
		t.Fatal(err)
	}
	if hc.String() == hc2.String() && strings.Contains(hc.String(), "partkey(hash)") {
		t.Errorf("hybrid %v must not hash the skewed partkey (hash scheme: %v)", hc, hc2)
	}
}

func TestCompileSQLErrors(t *testing.T) {
	gen := &datagen.GoogleTrace{Seed: 2, TaskEvents: 100}
	cat := googleCatalog(gen)
	cases := []string{
		`SELECT COUNT(*) FROM nope`,
		`SELECT COUNT(*) FROM TASK_EVENTS, MACHINE_EVENTS`,     // cross product
		`SELECT machineID FROM TASK_EVENTS GROUP BY machineID`, // group without agg
		`SELECT COUNT(*), SUM(priority) FROM TASK_EVENTS`,      // two aggregates
		`SELECT COUNT(*) FROM TASK_EVENTS WHERE zzz = 1`,
		`SELECT SUM(TASK_EVENTS.priority + MACHINE_EVENTS.capacity) FROM TASK_EVENTS, MACHINE_EVENTS WHERE TASK_EVENTS.machineID = MACHINE_EVENTS.machineID`,
		`SELECT jobID FROM TASK_EVENTS, JOB_EVENTS WHERE TASK_EVENTS.jobID = JOB_EVENTS.jobID`, // ambiguous
	}
	for _, sql := range cases {
		if _, err := squall.CompileSQL(sql, cat, squall.SQLOptions{}); err == nil {
			t.Errorf("CompileSQL(%q) should fail", sql)
		}
	}
}

func TestRunSQLProjectionOnly(t *testing.T) {
	gen := &datagen.GoogleTrace{Seed: 8, TaskEvents: 500}
	res, err := squall.RunSQL(
		`SELECT MACHINE_EVENTS.platform, TASK_EVENTS.priority
		 FROM TASK_EVENTS, MACHINE_EVENTS
		 WHERE TASK_EVENTS.machineID = MACHINE_EVENTS.machineID AND TASK_EVENTS.eventType = 3`,
		googleCatalog(gen), squall.SQLOptions{Machines: 2}, squall.Options{Seed: 9, CollectLimit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount == 0 {
		t.Fatal("projection query produced nothing")
	}
	if len(res.Rows[0]) != 2 {
		t.Errorf("projected arity = %d, want 2", len(res.Rows[0]))
	}
}

// TestCatalogMixedCaseRegistration (PR 4 satellite): entries registered with
// any casing resolve through the normalized lookup — the old probe-then-scan
// fallback let a lower-cased key shadow a mixed-case one — and two entries
// colliding case-insensitively are rejected instead of resolving to either.
func TestCatalogMixedCaseRegistration(t *testing.T) {
	w := datagen.NewWebGraph(3, 200, 800, 0)
	cat := squall.Catalog{
		"WebGraph": {Schema: datagen.WebGraphSchema, Spout: w.Spout(), Size: w.Arcs},
	}
	for _, name := range []string{"WebGraph", "webgraph", "WEBGRAPH"} {
		q := `SELECT W1.FromUrl, COUNT(*) FROM ` + name + ` as W1, ` + name + ` as W2
			WHERE W1.ToUrl = W2.FromUrl GROUP BY W1.FromUrl`
		if _, err := squall.CompileSQL(q, cat, squall.SQLOptions{Machines: 4}); err != nil {
			t.Fatalf("mixed-case lookup %q failed: %v", name, err)
		}
	}
	bad := squall.Catalog{
		"WebGraph": {Schema: datagen.WebGraphSchema, Spout: w.Spout(), Size: w.Arcs},
		"webgraph": {Schema: datagen.WebGraphSchema, Spout: w.Spout(), Size: w.Arcs},
	}
	if _, err := squall.CompileSQL(`SELECT W1.FromUrl, COUNT(*) FROM WebGraph as W1, WebGraph as W2
		WHERE W1.ToUrl = W2.FromUrl GROUP BY W1.FromUrl`, bad, squall.SQLOptions{Machines: 4}); err == nil {
		t.Fatal("case-colliding catalog entries must be rejected")
	}
}
