module squall

go 1.24
